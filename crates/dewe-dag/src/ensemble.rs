//! Workflow ensembles — "a set of interrelated but independent workflow
//! applications" executed as one scientific analysis (paper §I).

use crate::ids::{JobId, WorkflowId};
use crate::workflow::Workflow;

/// Globally identifies a job within an ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnsembleJobId {
    pub workflow: WorkflowId,
    pub job: JobId,
}

impl EnsembleJobId {
    pub fn new(workflow: WorkflowId, job: JobId) -> Self {
        Self { workflow, job }
    }
}

impl std::fmt::Display for EnsembleJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.workflow, self.job)
    }
}

/// Aggregate size statistics for an ensemble, matching the quantities the
/// paper reports (e.g. 200 x 6.0-degree Montage = 1,717,200 jobs, 288,800
/// input files, 4,570,000 intermediate files, ~7 TB written).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnsembleStats {
    pub workflows: usize,
    pub jobs: usize,
    pub input_files: usize,
    pub input_bytes: u64,
    pub intermediate_files: usize,
    pub intermediate_bytes: u64,
    pub total_cpu_seconds: f64,
}

/// An ordered collection of independent workflows submitted as one analysis.
///
/// Workflows in an ensemble do not share files or dependencies — the master
/// daemon publishes their eligible jobs into *the same* dispatch topic, which
/// is how DEWE v2 executes multiple workflows in parallel on one cluster.
#[derive(Debug, Clone, Default)]
pub struct Ensemble {
    workflows: Vec<Workflow>,
}

impl Ensemble {
    /// Empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from workflows.
    pub fn from_workflows(workflows: Vec<Workflow>) -> Self {
        Self { workflows }
    }

    /// Ensemble of `n` clones of a template workflow (the paper's standard
    /// workload: *n* 6.0-degree Montage workflows). Clones are renamed
    /// `"<name>#<i>"` to stay distinguishable in logs and metrics.
    pub fn replicate(template: &Workflow, n: usize) -> Self {
        let mut workflows = Vec::with_capacity(n);
        for _ in 0..n {
            workflows.push(template.clone());
        }
        Self { workflows }
    }

    /// Append a workflow, returning its id within the ensemble.
    pub fn push(&mut self, wf: Workflow) -> WorkflowId {
        let id = WorkflowId::from_index(self.workflows.len());
        self.workflows.push(wf);
        id
    }

    /// Number of workflows.
    pub fn len(&self) -> usize {
        self.workflows.len()
    }

    /// True if the ensemble holds no workflows.
    pub fn is_empty(&self) -> bool {
        self.workflows.is_empty()
    }

    /// Workflow by id.
    pub fn workflow(&self, id: WorkflowId) -> &Workflow {
        &self.workflows[id.index()]
    }

    /// All workflows in submission order.
    pub fn workflows(&self) -> &[Workflow] {
        &self.workflows
    }

    /// Iterator over workflow ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = WorkflowId> + '_ {
        (0..self.workflows.len()).map(WorkflowId::from_index)
    }

    /// Total job count across all workflows.
    pub fn total_jobs(&self) -> usize {
        self.workflows.iter().map(|w| w.job_count()).sum()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EnsembleStats {
        let mut s = EnsembleStats { workflows: self.workflows.len(), ..Default::default() };
        for wf in &self.workflows {
            s.jobs += wf.job_count();
            s.input_files += wf.files().iter().filter(|f| f.initial).count();
            s.input_bytes += wf.input_bytes();
            s.intermediate_files += wf.produced_file_count();
            s.intermediate_bytes += wf.produced_bytes();
            s.total_cpu_seconds += wf.total_cpu_seconds();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowBuilder;

    fn tiny() -> Workflow {
        let mut b = WorkflowBuilder::new("tiny");
        let i = b.file("in", 100, true);
        let o = b.file("out", 50, false);
        b.job("a", "t", 2.0).input(i).output(o).build();
        b.finish().unwrap()
    }

    #[test]
    fn replicate_counts() {
        let e = Ensemble::replicate(&tiny(), 5);
        assert_eq!(e.len(), 5);
        assert_eq!(e.total_jobs(), 5);
        let s = e.stats();
        assert_eq!(s.workflows, 5);
        assert_eq!(s.input_files, 5);
        assert_eq!(s.input_bytes, 500);
        assert_eq!(s.intermediate_files, 5);
        assert_eq!(s.intermediate_bytes, 250);
        assert!((s.total_cpu_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut e = Ensemble::new();
        assert!(e.is_empty());
        let a = e.push(tiny());
        let b = e.push(tiny());
        assert_eq!(a, WorkflowId(0));
        assert_eq!(b, WorkflowId(1));
        assert_eq!(e.workflow(a).name(), "tiny");
    }

    #[test]
    fn ensemble_job_id_display() {
        let id = EnsembleJobId::new(WorkflowId(3), JobId(14));
        assert_eq!(id.to_string(), "3:14");
    }

    #[test]
    fn ids_iterator_matches_len() {
        let e = Ensemble::replicate(&tiny(), 3);
        let ids: Vec<_> = e.ids().collect();
        assert_eq!(ids, vec![WorkflowId(0), WorkflowId(1), WorkflowId(2)]);
    }
}
