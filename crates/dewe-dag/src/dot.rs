//! Graphviz DOT export for workflow visualization.
//!
//! Paper Fig. 1 presents Montage as a DAG drawing; [`to_dot`] produces the
//! equivalent for any workflow, with jobs colored by transformation and
//! optionally collapsed by level for very large graphs (a 6.0-degree
//! Montage has 8,586 vertices — `to_dot_collapsed` renders its 9-level
//! silhouette instead).

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::analysis::LevelProfile;
use crate::workflow::Workflow;

/// Render the full job graph as DOT. Transformations get stable fill
/// colors so Montage's stage structure is visible at a glance.
pub fn to_dot(wf: &Workflow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(wf.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontname=\"monospace\"];");
    let mut palette: HashMap<&str, usize> = HashMap::new();
    for j in wf.jobs() {
        let next = palette.len();
        let color_idx = *palette.entry(j.xform.as_str()).or_insert(next);
        let _ = writeln!(
            out,
            "  \"{}\" [fillcolor=\"{}\", label=\"{}\\n{:.1}s\"];",
            sanitize(&j.name),
            color(color_idx),
            sanitize(&j.name),
            j.cpu_seconds
        );
    }
    for jid in wf.job_ids() {
        for &c in wf.children(jid) {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                sanitize(&wf.job(jid).name),
                sanitize(&wf.job(c).name)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Render the level-collapsed silhouette: one node per (level,
/// transformation) group annotated with its job count — readable even for
/// million-job ensembles.
pub fn to_dot_collapsed(wf: &Workflow) -> String {
    let lp = LevelProfile::of(wf);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_collapsed\" {{", sanitize(wf.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontname=\"monospace\"];");

    // Group jobs per (level, xform).
    let mut group_of = vec![String::new(); wf.job_count()];
    let mut counts: HashMap<String, usize> = HashMap::new();
    for (li, level) in lp.levels.iter().enumerate() {
        for &j in level {
            let key = format!("L{li}_{}", wf.job(j).xform);
            *counts.entry(key.clone()).or_insert(0) += 1;
            group_of[j.index()] = key;
        }
    }
    let mut palette: HashMap<String, usize> = HashMap::new();
    let mut keys: Vec<&String> = counts.keys().collect();
    keys.sort();
    for key in keys {
        let xform = key.split('_').skip(1).collect::<Vec<_>>().join("_");
        let next = palette.len();
        let idx = *palette.entry(xform.clone()).or_insert(next);
        let _ = writeln!(
            out,
            "  \"{key}\" [fillcolor=\"{}\", label=\"{xform}\\nx{}\"];",
            color(idx),
            counts[key]
        );
    }
    // Distinct group edges.
    let mut edges: Vec<(String, String)> = Vec::new();
    for j in wf.job_ids() {
        for &c in wf.children(j) {
            edges.push((group_of[j.index()].clone(), group_of[c.index()].clone()));
        }
    }
    edges.sort();
    edges.dedup();
    for (a, b) in edges {
        let _ = writeln!(out, "  \"{a}\" -> \"{b}\";");
    }
    out.push_str("}\n");
    out
}

fn color(idx: usize) -> &'static str {
    const COLORS: [&str; 10] = [
        "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
        "#e31a1c", "#ff7f00",
    ];
    COLORS[idx % COLORS.len()]
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'").replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowBuilder;

    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("d");
        let a = b.job("a", "split", 1.0).build();
        let l = b.job("l", "work", 2.0).build();
        let r = b.job("r", "work", 2.0).build();
        let m = b.job("m", "merge", 1.0).build();
        b.edge(a, l);
        b.edge(a, r);
        b.edge(l, m);
        b.edge(r, m);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = to_dot(&diamond());
        assert!(dot.starts_with("digraph"));
        for n in ["\"a\"", "\"l\"", "\"r\"", "\"m\""] {
            assert!(dot.contains(n), "missing {n}");
        }
        assert!(dot.contains("\"a\" -> \"l\";"));
        assert!(dot.contains("\"r\" -> \"m\";"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn same_xform_shares_color() {
        let dot = to_dot(&diamond());
        let color_of = |name: &str| {
            let line = dot.lines().find(|l| l.contains(&format!("\"{name}\" ["))).unwrap();
            line.split("fillcolor=\"").nth(1).unwrap().split('"').next().unwrap().to_string()
        };
        assert_eq!(color_of("l"), color_of("r"));
        assert_ne!(color_of("a"), color_of("l"));
    }

    #[test]
    fn collapsed_groups_by_level_and_xform() {
        let dot = to_dot_collapsed(&diamond());
        assert!(dot.contains("\"L0_split\""));
        assert!(dot.contains("\"L1_work\""));
        assert!(dot.contains("x2"), "the two `work` jobs collapse into one node");
        assert!(dot.contains("\"L0_split\" -> \"L1_work\";"));
        // Parallel edges dedup into one.
        assert_eq!(dot.matches("\"L1_work\" -> \"L2_merge\";").count(), 1);
    }

    #[test]
    fn quotes_in_names_are_sanitized() {
        let mut b = WorkflowBuilder::new("q\"uote");
        b.job("j\"1", "t", 1.0).build();
        let dot = to_dot(&b.finish().unwrap());
        assert!(!dot.contains("j\"1"), "raw quote must not survive");
        assert!(dot.contains("j'1"));
    }
}
