//! DAGMan-style plain-text workflow format.
//!
//! DEWE v2 (like Condor DAGMan, which Pegasus plans into) describes
//! workflows in a line-oriented text file living in the workflow folder on
//! the shared file system. This module implements a self-contained dialect:
//!
//! ```text
//! # comment
//! WORKFLOW m16_6deg
//! FILE raw_001.fits 2900000 INITIAL
//! FILE proj_001.fits 1600000
//! JOB mProjectPP_001 mProjectPP CPU 1.7
//! JOB mConcatFit mConcatFit CPU 110 TIMEOUT 900
//! JOB mBgModel mBgModel CPU 130 CORES 8
//! INPUT mProjectPP_001 raw_001.fits
//! OUTPUT mProjectPP_001 proj_001.fits
//! PARENT mProjectPP_001 CHILD mConcatFit
//! ```
//!
//! * `FILE name size [INITIAL]` — data artifact; `INITIAL` marks pre-staged
//!   inputs.
//! * `JOB name xform CPU secs [CORES n] [TIMEOUT secs]` — a task.
//! * `INPUT job file...` / `OUTPUT job file...` — data flow (implies edges).
//! * `PARENT a... CHILD b...` — explicit precedence (DAGMan syntax: full
//!   bipartite product of the two lists).
//!
//! [`parse_workflow`] and [`write_workflow`] round-trip: parsing the output
//! of `write_workflow` reproduces an equivalent workflow (asserted by
//! property tests).

use crate::error::DagError;
use crate::ids::{FileId, JobId};
use crate::workflow::{Workflow, WorkflowBuilder};

/// Parse a workflow from the text format.
pub fn parse_workflow(text: &str) -> Result<Workflow, DagError> {
    let mut name = String::from("workflow");
    // Deferred statements: we must declare all FILEs/JOBs before wiring, but
    // the format allows any order. So do two passes.
    let mut decls: Vec<(usize, Vec<&str>)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        decls.push((lineno + 1, toks));
    }

    // Pass 0: pick up the workflow name first so the builder is named.
    for (line, toks) in &decls {
        if toks[0].eq_ignore_ascii_case("WORKFLOW") {
            if toks.len() != 2 {
                return Err(err(*line, "WORKFLOW takes exactly one name"));
            }
            name = toks[1].to_string();
        }
    }
    let mut b = WorkflowBuilder::new(name);

    // Pass 1: FILE and JOB declarations.
    for (line, toks) in &decls {
        match toks[0].to_ascii_uppercase().as_str() {
            "FILE" => {
                if toks.len() < 3 || toks.len() > 4 {
                    return Err(err(*line, "FILE <name> <size_bytes> [INITIAL]"));
                }
                let size: u64 =
                    toks[2].parse().map_err(|_| err(*line, &format!("bad size `{}`", toks[2])))?;
                let initial = match toks.get(3) {
                    None => false,
                    Some(t) if t.eq_ignore_ascii_case("INITIAL") => true,
                    Some(t) => return Err(err(*line, &format!("unexpected token `{t}`"))),
                };
                b.file(toks[1], size, initial);
            }
            "JOB" => {
                if toks.len() < 5 || !toks[3].eq_ignore_ascii_case("CPU") {
                    return Err(err(*line, "JOB <name> <xform> CPU <secs> [CORES n] [TIMEOUT s]"));
                }
                let cpu: f64 = toks[4]
                    .parse()
                    .map_err(|_| err(*line, &format!("bad cpu seconds `{}`", toks[4])))?;
                let mut jb = b.job(toks[1], toks[2], cpu);
                let mut i = 5;
                while i < toks.len() {
                    match toks[i].to_ascii_uppercase().as_str() {
                        "CORES" => {
                            let v = toks
                                .get(i + 1)
                                .and_then(|t| t.parse::<u32>().ok())
                                .ok_or_else(|| err(*line, "CORES needs an integer"))?;
                            jb = jb.cores(v);
                            i += 2;
                        }
                        "TIMEOUT" => {
                            let v = toks
                                .get(i + 1)
                                .and_then(|t| t.parse::<f64>().ok())
                                .ok_or_else(|| err(*line, "TIMEOUT needs seconds"))?;
                            jb = jb.timeout_secs(v);
                            i += 2;
                        }
                        other => return Err(err(*line, &format!("unexpected token `{other}`"))),
                    }
                }
                jb.build();
            }
            "WORKFLOW" | "INPUT" | "OUTPUT" | "PARENT" => {}
            other => return Err(err(*line, &format!("unknown directive `{other}`"))),
        }
    }

    // Pass 2: wiring. The builder API attaches inputs/outputs at job build
    // time, so wiring statements are recorded through a small patch list and
    // applied via a rebuilt builder. Instead, keep it simple: collect
    // (job, files) pairs here and rebuild specs below.
    let mut input_patches: Vec<(JobId, Vec<FileId>)> = Vec::new();
    let mut output_patches: Vec<(JobId, Vec<FileId>)> = Vec::new();
    let mut edges: Vec<(JobId, JobId)> = Vec::new();
    for (line, toks) in &decls {
        match toks[0].to_ascii_uppercase().as_str() {
            "INPUT" | "OUTPUT" => {
                if toks.len() < 3 {
                    return Err(err(*line, "INPUT/OUTPUT <job> <file>..."));
                }
                let job =
                    b.job_id(toks[1]).ok_or_else(|| DagError::UnknownName(toks[1].to_string()))?;
                let mut files = Vec::with_capacity(toks.len() - 2);
                for t in &toks[2..] {
                    files
                        .push(b.file_id(t).ok_or_else(|| DagError::UnknownName((*t).to_string()))?);
                }
                if toks[0].eq_ignore_ascii_case("INPUT") {
                    input_patches.push((job, files));
                } else {
                    output_patches.push((job, files));
                }
            }
            "PARENT" => {
                let child_pos = toks
                    .iter()
                    .position(|t| t.eq_ignore_ascii_case("CHILD"))
                    .ok_or_else(|| err(*line, "PARENT ... CHILD ..."))?;
                if child_pos == 1 || child_pos + 1 == toks.len() {
                    return Err(err(*line, "PARENT needs parents and children"));
                }
                let parents: Result<Vec<JobId>, DagError> = toks[1..child_pos]
                    .iter()
                    .map(|t| b.job_id(t).ok_or_else(|| DagError::UnknownName((*t).to_string())))
                    .collect();
                let children: Result<Vec<JobId>, DagError> = toks[child_pos + 1..]
                    .iter()
                    .map(|t| b.job_id(t).ok_or_else(|| DagError::UnknownName((*t).to_string())))
                    .collect();
                for &p in &parents? {
                    for &c in &children.clone()? {
                        edges.push((p, c));
                    }
                }
            }
            _ => {}
        }
    }

    for (job, files) in input_patches {
        b.patch_job_io(job, &files, true);
    }
    for (job, files) in output_patches {
        b.patch_job_io(job, &files, false);
    }
    for (p, c) in edges {
        b.edge(p, c);
    }
    b.finish()
}

/// Serialize a workflow to the text format.
pub fn write_workflow(wf: &Workflow) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# generated by dewe-dag");
    let _ = writeln!(out, "WORKFLOW {}", wf.name());
    for f in wf.files() {
        let _ = write!(out, "FILE {} {}", f.name, f.size_bytes);
        if f.initial {
            out.push_str(" INITIAL");
        }
        out.push('\n');
    }
    for j in wf.jobs() {
        let _ = write!(out, "JOB {} {} CPU {}", j.name, j.xform, j.cpu_seconds);
        if j.cores != 1 {
            let _ = write!(out, " CORES {}", j.cores);
        }
        if let Some(t) = j.timeout_secs {
            let _ = write!(out, " TIMEOUT {t}");
        }
        out.push('\n');
    }
    for (ji, j) in wf.jobs().iter().enumerate() {
        let jid = JobId::from_index(ji);
        if !j.inputs.is_empty() {
            let _ = write!(out, "INPUT {}", j.name);
            for &f in &j.inputs {
                let _ = write!(out, " {}", wf.file(f).name);
            }
            out.push('\n');
        }
        if !j.outputs.is_empty() {
            let _ = write!(out, "OUTPUT {}", j.name);
            for &f in &j.outputs {
                let _ = write!(out, " {}", wf.file(f).name);
            }
            out.push('\n');
        }
        // Emit only edges not implied by data flow to keep files compact.
        for &c in wf.children(jid) {
            let implied = wf.job(c).inputs.iter().any(|&f| wf.producer(f) == Some(jid));
            if !implied {
                let _ = writeln!(out, "PARENT {} CHILD {}", j.name, wf.job(c).name);
            }
        }
    }
    out
}

fn err(line: usize, message: &str) -> DagError {
    DagError::Parse { line, message: message.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# sample montage fragment
WORKFLOW frag
FILE raw.fits 2900000 INITIAL
FILE proj.fits 1600000
FILE fit.tbl 4096
JOB mProjectPP_0 mProjectPP CPU 1.7
JOB mDiffFit_0 mDiffFit CPU 0.9 TIMEOUT 120
JOB mConcatFit mConcatFit CPU 110 CORES 4
INPUT mProjectPP_0 raw.fits
OUTPUT mProjectPP_0 proj.fits
INPUT mDiffFit_0 proj.fits
OUTPUT mDiffFit_0 fit.tbl
PARENT mDiffFit_0 CHILD mConcatFit
"#;

    #[test]
    fn parses_sample() {
        let wf = parse_workflow(SAMPLE).unwrap();
        assert_eq!(wf.name(), "frag");
        assert_eq!(wf.job_count(), 3);
        assert_eq!(wf.file_count(), 3);
        // data edge mProjectPP_0 -> mDiffFit_0 plus explicit edge -> 2 edges
        assert_eq!(wf.edge_count(), 2);
        let diff = wf.job_by_name("mDiffFit_0").unwrap();
        assert_eq!(wf.job(diff).timeout_secs, Some(120.0));
        let cat = wf.job_by_name("mConcatFit").unwrap();
        assert_eq!(wf.job(cat).cores, 4);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let wf = parse_workflow(SAMPLE).unwrap();
        let text = write_workflow(&wf);
        let wf2 = parse_workflow(&text).unwrap();
        assert_eq!(wf.job_count(), wf2.job_count());
        assert_eq!(wf.file_count(), wf2.file_count());
        assert_eq!(wf.edge_count(), wf2.edge_count());
        for (a, b) in wf.jobs().iter().zip(wf2.jobs()) {
            assert_eq!(a, b);
        }
        for (a, b) in wf.files().iter().zip(wf2.files()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unknown_directive_errors_with_line() {
        let e = parse_workflow("BOGUS x").unwrap_err();
        match e {
            DagError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_job_in_parent_errors() {
        let e = parse_workflow("JOB a t CPU 1\nPARENT a CHILD nosuch").unwrap_err();
        assert!(matches!(e, DagError::UnknownName(_)));
    }

    #[test]
    fn unknown_file_in_input_errors() {
        let e = parse_workflow("JOB a t CPU 1\nINPUT a nosuch.fits").unwrap_err();
        assert!(matches!(e, DagError::UnknownName(_)));
    }

    #[test]
    fn bipartite_parent_child() {
        let text =
            "JOB a t CPU 1\nJOB b t CPU 1\nJOB c t CPU 1\nJOB d t CPU 1\nPARENT a b CHILD c d";
        let wf = parse_workflow(text).unwrap();
        assert_eq!(wf.edge_count(), 4);
    }

    #[test]
    fn bad_size_errors() {
        let e = parse_workflow("FILE f notanumber").unwrap_err();
        assert!(matches!(e, DagError::Parse { .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let wf = parse_workflow("# hi\n\n  \nJOB a t CPU 1\n").unwrap();
        assert_eq!(wf.job_count(), 1);
    }

    #[test]
    fn cycle_via_parent_statements_rejected() {
        let text = "JOB a t CPU 1\nJOB b t CPU 1\nPARENT a CHILD b\nPARENT b CHILD a";
        assert!(matches!(parse_workflow(text), Err(DagError::Cycle(_))));
    }
}
