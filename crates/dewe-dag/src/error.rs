//! Error type shared by DAG construction, validation and parsing.

use std::fmt;

/// Errors produced while building, validating or parsing a workflow DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The job graph contains a cycle; the offending job names are listed in
    /// an arbitrary order along the cycle.
    Cycle(Vec<String>),
    /// A job or file name was used twice within the same workflow.
    DuplicateName(String),
    /// A `PARENT ... CHILD ...` edge or file reference names an unknown entity.
    UnknownName(String),
    /// A file has more than one producing job. Scientific workflow formats
    /// (DAX, DAGMan) require single-writer files; DEWE v2 relies on this to
    /// make outputs immediately visible through the shared file system.
    MultipleProducers { file: String, first: String, second: String },
    /// A parse error with 1-based line number and message.
    Parse { line: usize, message: String },
    /// A numeric field failed validation (negative runtime, zero cores, ...).
    InvalidField { entity: String, message: String },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle(names) => {
                write!(f, "workflow graph contains a cycle involving: {}", names.join(" -> "))
            }
            DagError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            DagError::UnknownName(n) => write!(f, "reference to unknown name `{n}`"),
            DagError::MultipleProducers { file, first, second } => {
                write!(f, "file `{file}` has multiple producers: `{first}` and `{second}`")
            }
            DagError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DagError::InvalidField { entity, message } => {
                write!(f, "invalid field on `{entity}`: {message}")
            }
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_cycle() {
        let e = DagError::Cycle(vec!["a".into(), "b".into()]);
        assert_eq!(e.to_string(), "workflow graph contains a cycle involving: a -> b");
    }

    #[test]
    fn display_parse() {
        let e = DagError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn display_multiple_producers() {
        let e =
            DagError::MultipleProducers { file: "x".into(), first: "a".into(), second: "b".into() };
        assert!(e.to_string().contains("multiple producers"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DagError::DuplicateName("x".into()));
    }
}
