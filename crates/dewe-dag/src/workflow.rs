//! The immutable, validated workflow DAG and its builder.

use std::collections::HashMap;

use crate::error::DagError;
use crate::file::FileSpec;
use crate::ids::{FileId, JobId};
use crate::job::{JobBuilder, JobSpec};

/// A validated, immutable workflow DAG.
///
/// Construction goes through [`WorkflowBuilder`], which
/// 1. derives precedence edges from file producer/consumer relations
///    (a job reading file *f* depends on the job writing *f*),
/// 2. merges them with explicitly declared `PARENT -> CHILD` edges,
/// 3. rejects cycles, duplicate names, dangling references and
///    multi-producer files.
///
/// Adjacency is stored in compressed sparse row (CSR) form — two flat
/// arrays per direction — so that iterating the parents or children of a
/// job is a contiguous slice access. With 1.7 million jobs in the paper's
/// largest ensemble, per-job allocation would dominate; CSR keeps the whole
/// graph in a handful of allocations.
#[derive(Debug, Clone)]
pub struct Workflow {
    name: String,
    jobs: Vec<JobSpec>,
    files: Vec<FileSpec>,
    /// CSR offsets/data for children (successors).
    child_offsets: Vec<u32>,
    child_data: Vec<JobId>,
    /// CSR offsets/data for parents (predecessors).
    parent_offsets: Vec<u32>,
    parent_data: Vec<JobId>,
    /// Producer job for each file (None for initial inputs).
    producer: Vec<Option<JobId>>,
    /// A topological order of all jobs (fixed at validation time).
    topo_order: Vec<JobId>,
}

impl Workflow {
    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of files (inputs + produced).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Job spec by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &JobSpec {
        &self.jobs[id.index()]
    }

    /// File spec by id.
    #[inline]
    pub fn file(&self, id: FileId) -> &FileSpec {
        &self.files[id.index()]
    }

    /// All jobs in id order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// All files in id order.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// Iterator over all job ids in id order.
    pub fn job_ids(&self) -> impl ExactSizeIterator<Item = JobId> + '_ {
        (0..self.jobs.len()).map(JobId::from_index)
    }

    /// Iterator over all file ids in id order.
    pub fn file_ids(&self) -> impl ExactSizeIterator<Item = FileId> + '_ {
        (0..self.files.len()).map(FileId::from_index)
    }

    /// Successors (children) of `id`.
    #[inline]
    pub fn children(&self, id: JobId) -> &[JobId] {
        let i = id.index();
        &self.child_data[self.child_offsets[i] as usize..self.child_offsets[i + 1] as usize]
    }

    /// Predecessors (parents) of `id`.
    #[inline]
    pub fn parents(&self, id: JobId) -> &[JobId] {
        let i = id.index();
        &self.parent_data[self.parent_offsets[i] as usize..self.parent_offsets[i + 1] as usize]
    }

    /// In-degree (number of parents) of `id`.
    #[inline]
    pub fn in_degree(&self, id: JobId) -> usize {
        self.parents(id).len()
    }

    /// The job producing `file`, or `None` for initial inputs.
    #[inline]
    pub fn producer(&self, file: FileId) -> Option<JobId> {
        self.producer[file.index()]
    }

    /// A fixed topological order (parents before children).
    pub fn topo_order(&self) -> &[JobId] {
        &self.topo_order
    }

    /// Jobs with no parents (the entry frontier).
    pub fn roots(&self) -> Vec<JobId> {
        self.job_ids().filter(|&j| self.in_degree(j) == 0).collect()
    }

    /// Jobs with no children (the exit frontier).
    pub fn sinks(&self) -> Vec<JobId> {
        self.job_ids().filter(|&j| self.children(j).is_empty()).collect()
    }

    /// Total number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.child_data.len()
    }

    /// Total bytes of files flagged as initial inputs.
    pub fn input_bytes(&self) -> u64 {
        self.files.iter().filter(|f| f.initial).map(|f| f.size_bytes).sum()
    }

    /// Total bytes of files produced by jobs (intermediate + final outputs).
    pub fn produced_bytes(&self) -> u64 {
        self.files.iter().filter(|f| !f.initial).map(|f| f.size_bytes).sum()
    }

    /// Count of files produced by jobs.
    pub fn produced_file_count(&self) -> usize {
        self.files.iter().filter(|f| !f.initial).count()
    }

    /// Total CPU-seconds over all jobs.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.cpu_seconds).sum()
    }

    /// Look up a job id by name (linear scan; intended for tests/tooling).
    pub fn job_by_name(&self, name: &str) -> Option<JobId> {
        self.jobs.iter().position(|j| j.name == name).map(JobId::from_index)
    }

    /// Look up a file id by name (linear scan; intended for tests/tooling).
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.files.iter().position(|f| f.name == name).map(FileId::from_index)
    }
}

/// Builder for [`Workflow`].
///
/// See the crate-level example. Explicit edges may be added with
/// [`WorkflowBuilder::edge`]; edges implied by file data-flow are always
/// inferred at [`WorkflowBuilder::finish`] time.
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    name: String,
    jobs: Vec<JobSpec>,
    files: Vec<FileSpec>,
    explicit_edges: Vec<(JobId, JobId)>,
    job_names: HashMap<String, JobId>,
    file_names: HashMap<String, FileId>,
}

impl WorkflowBuilder {
    /// Start a new workflow with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    /// Declare a file. `initial` marks pre-staged workflow inputs.
    ///
    /// Returns the file id; declaring the same name twice is detected at
    /// [`finish`](Self::finish) time.
    pub fn file(&mut self, name: impl Into<String>, size_bytes: u64, initial: bool) -> FileId {
        let name = name.into();
        let id = FileId::from_index(self.files.len());
        // First declaration wins for the name map; duplicates reported in finish().
        self.file_names.entry(name.clone()).or_insert(id);
        self.files.push(FileSpec::new(name, size_bytes, initial));
        id
    }

    /// Start declaring a job; finish the returned builder with
    /// [`JobBuilder::build`].
    pub fn job(
        &mut self,
        name: impl Into<String>,
        xform: impl Into<String>,
        cpu_seconds: f64,
    ) -> JobBuilder<'_> {
        JobBuilder {
            owner: self,
            spec: JobSpec {
                name: name.into(),
                xform: xform.into(),
                cpu_seconds,
                cores: 1,
                inputs: Vec::new(),
                outputs: Vec::new(),
                timeout_secs: None,
            },
        }
    }

    /// Attach input or output files to an already-declared job (used by the
    /// text-format parser, which allows wiring statements in any order).
    pub(crate) fn patch_job_io(&mut self, job: JobId, files: &[FileId], is_input: bool) {
        let spec = &mut self.jobs[job.index()];
        if is_input {
            spec.inputs.extend_from_slice(files);
        } else {
            spec.outputs.extend_from_slice(files);
        }
    }

    pub(crate) fn push_job(&mut self, spec: JobSpec) -> JobId {
        let id = JobId::from_index(self.jobs.len());
        self.job_names.entry(spec.name.clone()).or_insert(id);
        self.jobs.push(spec);
        id
    }

    /// Add an explicit precedence edge `parent -> child` (DAGMan
    /// `PARENT a CHILD b`), independent of any data flow.
    pub fn edge(&mut self, parent: JobId, child: JobId) {
        self.explicit_edges.push((parent, child));
    }

    /// Number of jobs added so far.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of files added so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Look up an already-declared job by name.
    pub fn job_id(&self, name: &str) -> Option<JobId> {
        self.job_names.get(name).copied()
    }

    /// Look up an already-declared file by name.
    pub fn file_id(&self, name: &str) -> Option<FileId> {
        self.file_names.get(name).copied()
    }

    /// Validate and freeze the workflow.
    ///
    /// Errors on duplicate names, dangling ids, multi-producer files,
    /// negative CPU demand and cycles.
    pub fn finish(self) -> Result<Workflow, DagError> {
        let nj = self.jobs.len();
        let nf = self.files.len();

        // Duplicate name detection (maps only keep the first occurrence).
        if self.job_names.len() != nj {
            let dup = find_duplicate(self.jobs.iter().map(|j| j.name.as_str()));
            return Err(DagError::DuplicateName(dup.unwrap_or_default()));
        }
        if self.file_names.len() != nf {
            let dup = find_duplicate(self.files.iter().map(|f| f.name.as_str()));
            return Err(DagError::DuplicateName(dup.unwrap_or_default()));
        }

        // Field validation.
        for job in &self.jobs {
            if !job.cpu_seconds.is_finite() || job.cpu_seconds < 0.0 {
                return Err(DagError::InvalidField {
                    entity: job.name.clone(),
                    message: format!(
                        "cpu_seconds must be finite and >= 0, got {}",
                        job.cpu_seconds
                    ),
                });
            }
            if job.cores == 0 {
                return Err(DagError::InvalidField {
                    entity: job.name.clone(),
                    message: "cores must be >= 1".into(),
                });
            }
            if let Some(t) = job.timeout_secs {
                if !t.is_finite() || t <= 0.0 {
                    return Err(DagError::InvalidField {
                        entity: job.name.clone(),
                        message: format!("timeout must be finite and > 0, got {t}"),
                    });
                }
            }
            for &f in job.inputs.iter().chain(&job.outputs) {
                if f.index() >= nf {
                    return Err(DagError::UnknownName(format!("{f:?} referenced by {}", job.name)));
                }
            }
        }
        for &(p, c) in &self.explicit_edges {
            if p.index() >= nj || c.index() >= nj {
                return Err(DagError::UnknownName(format!("edge {p:?} -> {c:?}")));
            }
        }

        // Determine producers; detect multi-producer files and jobs that
        // "produce" initial files.
        let mut producer: Vec<Option<JobId>> = vec![None; nf];
        for (ji, job) in self.jobs.iter().enumerate() {
            let jid = JobId::from_index(ji);
            for &f in &job.outputs {
                match producer[f.index()] {
                    None => producer[f.index()] = Some(jid),
                    Some(prev) => {
                        return Err(DagError::MultipleProducers {
                            file: self.files[f.index()].name.clone(),
                            first: self.jobs[prev.index()].name.clone(),
                            second: job.name.clone(),
                        });
                    }
                }
            }
        }

        // Collect edges: explicit + data-flow implied; dedup.
        let mut edges: Vec<(JobId, JobId)> = self.explicit_edges.clone();
        for (ji, job) in self.jobs.iter().enumerate() {
            let jid = JobId::from_index(ji);
            for &f in &job.inputs {
                if let Some(p) = producer[f.index()] {
                    if p != jid {
                        edges.push((p, jid));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        // Build CSR adjacency (children direction), then transpose.
        let (child_offsets, child_data) = build_csr(nj, edges.iter().copied());
        let mut redges: Vec<(JobId, JobId)> = edges.iter().map(|&(p, c)| (c, p)).collect();
        redges.sort_unstable();
        let (parent_offsets, parent_data) = build_csr(nj, redges.iter().copied());

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<u32> =
            (0..nj).map(|i| parent_offsets[i + 1] - parent_offsets[i]).collect();
        let mut queue: Vec<JobId> =
            (0..nj).filter(|&i| indeg[i] == 0).map(JobId::from_index).collect();
        let mut topo = Vec::with_capacity(nj);
        let mut head = 0;
        while head < queue.len() {
            let j = queue[head];
            head += 1;
            topo.push(j);
            let s = child_offsets[j.index()] as usize;
            let e = child_offsets[j.index() + 1] as usize;
            for &c in &child_data[s..e] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != nj {
            let cyclic: Vec<String> = (0..nj)
                .filter(|&i| indeg[i] > 0)
                .take(8)
                .map(|i| self.jobs[i].name.clone())
                .collect();
            return Err(DagError::Cycle(cyclic));
        }

        Ok(Workflow {
            name: self.name,
            jobs: self.jobs,
            files: self.files,
            child_offsets,
            child_data,
            parent_offsets,
            parent_data,
            producer,
            topo_order: topo,
        })
    }
}

/// Build CSR arrays from a sorted, deduplicated edge list.
fn build_csr(
    n: usize,
    edges: impl Iterator<Item = (JobId, JobId)> + Clone,
) -> (Vec<u32>, Vec<JobId>) {
    let mut offsets = vec![0u32; n + 1];
    for (src, _) in edges.clone() {
        offsets[src.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut data = vec![JobId(0); offsets[n] as usize];
    let mut cursor = offsets.clone();
    for (src, dst) in edges {
        let slot = cursor[src.index()] as usize;
        data[slot] = dst;
        cursor[src.index()] += 1;
    }
    (offsets, data)
}

fn find_duplicate<'a>(names: impl Iterator<Item = &'a str>) -> Option<String> {
    let mut seen = std::collections::HashSet::new();
    for n in names {
        if !seen.insert(n) {
            return Some(n.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let raw = b.file("raw", 100, true);
        let l = b.file("l", 10, false);
        let r = b.file("r", 10, false);
        let o = b.file("o", 10, false);
        b.job("a", "split", 1.0).input(raw).output(l).build();
        b.job("b", "split", 1.0).input(raw).output(r).build();
        b.job("c", "join", 2.0).input(l).input(r).output(o).build();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let wf = diamond();
        assert_eq!(wf.job_count(), 3);
        assert_eq!(wf.edge_count(), 2);
        let c = wf.job_by_name("c").unwrap();
        assert_eq!(wf.parents(c).len(), 2);
        assert_eq!(wf.roots().len(), 2);
        assert_eq!(wf.sinks(), vec![c]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let wf = diamond();
        let pos: std::collections::HashMap<_, _> =
            wf.topo_order().iter().enumerate().map(|(i, &j)| (j, i)).collect();
        for j in wf.job_ids() {
            for &c in wf.children(j) {
                assert!(pos[&j] < pos[&c], "{j:?} must precede {c:?}");
            }
        }
    }

    #[test]
    fn producer_tracking() {
        let wf = diamond();
        let raw = wf.file_by_name("raw").unwrap();
        let l = wf.file_by_name("l").unwrap();
        assert_eq!(wf.producer(raw), None);
        assert_eq!(wf.producer(l), Some(wf.job_by_name("a").unwrap()));
    }

    #[test]
    fn byte_accounting() {
        let wf = diamond();
        assert_eq!(wf.input_bytes(), 100);
        assert_eq!(wf.produced_bytes(), 30);
        assert_eq!(wf.produced_file_count(), 3);
        assert_eq!(wf.total_cpu_seconds(), 4.0);
    }

    #[test]
    fn cycle_detected() {
        let mut b = WorkflowBuilder::new("cyc");
        let a = b.job("a", "t", 1.0).build();
        let c = b.job("b", "t", 1.0).build();
        b.edge(a, c);
        b.edge(c, a);
        match b.finish() {
            Err(DagError::Cycle(names)) => assert_eq!(names.len(), 2),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_via_file_is_ignored() {
        // A job that reads and writes the same file does not depend on itself.
        let mut b = WorkflowBuilder::new("s");
        let f = b.file("f", 1, true);
        b.job("a", "t", 1.0).input(f).output(f).build();
        // But a job both producing and consuming means "a" is the producer of
        // an initial file — allowed by the model (it overwrites it).
        let wf = b.finish().unwrap();
        assert_eq!(wf.edge_count(), 0);
    }

    #[test]
    fn duplicate_job_name_rejected() {
        let mut b = WorkflowBuilder::new("d");
        b.job("a", "t", 1.0).build();
        b.job("a", "t", 1.0).build();
        assert!(matches!(b.finish(), Err(DagError::DuplicateName(_))));
    }

    #[test]
    fn duplicate_file_name_rejected() {
        let mut b = WorkflowBuilder::new("d");
        b.file("f", 1, true);
        b.file("f", 2, false);
        assert!(matches!(b.finish(), Err(DagError::DuplicateName(_))));
    }

    #[test]
    fn multi_producer_rejected() {
        let mut b = WorkflowBuilder::new("m");
        let f = b.file("f", 1, false);
        b.job("a", "t", 1.0).output(f).build();
        b.job("b", "t", 1.0).output(f).build();
        assert!(matches!(b.finish(), Err(DagError::MultipleProducers { .. })));
    }

    #[test]
    fn negative_cpu_rejected() {
        let mut b = WorkflowBuilder::new("n");
        b.job("a", "t", -1.0).build();
        assert!(matches!(b.finish(), Err(DagError::InvalidField { .. })));
    }

    #[test]
    fn zero_cores_rejected_by_builder_floor() {
        // JobBuilder::cores floors at 1, so this is unreachable through the
        // fluent API; constructing a spec directly must be caught.
        let mut b = WorkflowBuilder::new("z");
        b.push_job(JobSpec {
            name: "a".into(),
            xform: "t".into(),
            cpu_seconds: 1.0,
            cores: 0,
            inputs: vec![],
            outputs: vec![],
            timeout_secs: None,
        });
        assert!(matches!(b.finish(), Err(DagError::InvalidField { .. })));
    }

    #[test]
    fn explicit_edges_merge_with_dataflow() {
        let mut b = WorkflowBuilder::new("e");
        let f = b.file("f", 1, false);
        let a = b.job("a", "t", 1.0).output(f).build();
        let c = b.job("b", "t", 1.0).input(f).build();
        b.edge(a, c); // duplicate of the data-flow edge
        let wf = b.finish().unwrap();
        assert_eq!(wf.edge_count(), 1, "edges must be deduplicated");
    }

    #[test]
    fn empty_workflow_is_valid() {
        let wf = WorkflowBuilder::new("empty").finish().unwrap();
        assert_eq!(wf.job_count(), 0);
        assert!(wf.roots().is_empty());
        assert!(wf.topo_order().is_empty());
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut b = WorkflowBuilder::new("d");
        let a = b.job("a", "t", 1.0).build();
        b.edge(a, JobId(99));
        assert!(matches!(b.finish(), Err(DagError::UnknownName(_))));
    }

    #[test]
    fn chain_of_1000_topo_sorts() {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..1000 {
            let j = b.job(format!("j{i}"), "t", 0.1).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        let wf = b.finish().unwrap();
        assert_eq!(wf.topo_order().len(), 1000);
        assert_eq!(wf.roots().len(), 1);
        assert_eq!(wf.sinks().len(), 1);
    }
}
