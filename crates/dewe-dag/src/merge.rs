//! Merging independent workflows into one namespaced DAG.
//!
//! Some engines (including DAGMan without a higher-level ensemble manager)
//! accept only one DAG per submission. [`merge`] turns an ensemble of
//! independent workflows into a single workflow whose job and file names
//! are prefixed per member (`w0/…`, `w1/…`), preserving each member's
//! internal structure exactly. Executing the merged DAG is semantically
//! identical to submitting the members separately in one batch — which the
//! tests verify through the dependency tracker.

use crate::workflow::{Workflow, WorkflowBuilder};

/// Merge independent workflows into one DAG with per-member namespacing.
///
/// Member `i`'s jobs and files are renamed `"w{i}/<name>"`. No edges are
/// added between members (ensemble members are independent by the paper's
/// definition). Returns an empty workflow for an empty input.
pub fn merge(name: impl Into<String>, members: &[&Workflow]) -> Workflow {
    let mut b = WorkflowBuilder::new(name);
    for (i, wf) in members.iter().enumerate() {
        let prefix = format!("w{i}/");
        // Files first; ids within this member are offset by the running
        // count, so record the mapping explicitly.
        let mut file_map = Vec::with_capacity(wf.file_count());
        for f in wf.files() {
            file_map.push(b.file(format!("{prefix}{}", f.name), f.size_bytes, f.initial));
        }
        let mut job_map = Vec::with_capacity(wf.job_count());
        for j in wf.jobs() {
            let mut jb =
                b.job(format!("{prefix}{}", j.name), j.xform.clone(), j.cpu_seconds).cores(j.cores);
            if let Some(t) = j.timeout_secs {
                jb = jb.timeout_secs(t);
            }
            let jb = jb
                .inputs(j.inputs.iter().map(|f| file_map[f.index()]))
                .outputs(j.outputs.iter().map(|f| file_map[f.index()]));
            job_map.push(jb.build());
        }
        for u in wf.job_ids() {
            for &v in wf.children(u) {
                let implied = wf.job(v).inputs.iter().any(|&f| wf.producer(f) == Some(u));
                if !implied {
                    b.edge(job_map[u.index()], job_map[v.index()]);
                }
            }
        }
    }
    b.finish().expect("merging valid DAGs yields a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DependencyTracker;

    fn chain(tag: &str, n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new(tag);
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("{tag}{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        b.finish().unwrap()
    }

    fn dataflow_pair() -> Workflow {
        let mut b = WorkflowBuilder::new("df");
        let i = b.file("in", 10, true);
        let m = b.file("mid", 5, false);
        b.job("a", "t", 1.0).input(i).output(m).build();
        b.job("b", "t", 1.0).input(m).build();
        b.finish().unwrap()
    }

    #[test]
    fn merged_counts_are_sums() {
        let a = chain("a", 3);
        let d = dataflow_pair();
        let merged = merge("ens", &[&a, &d]);
        assert_eq!(merged.job_count(), 5);
        assert_eq!(merged.file_count(), 2);
        assert_eq!(merged.edge_count(), a.edge_count() + d.edge_count());
    }

    #[test]
    fn members_stay_independent() {
        let a = chain("a", 2);
        let b = chain("b", 2);
        let merged = merge("ens", &[&a, &b]);
        // Both members' roots are ready immediately.
        let mut t = DependencyTracker::new(&merged);
        assert_eq!(t.take_ready().len(), 2);
        // Namespacing keeps names unique even for identical members.
        let c = chain("x", 2);
        let twice = merge("ens2", &[&c, &c]);
        assert_eq!(twice.job_count(), 4);
        assert!(twice.job_by_name("w0/x0").is_some());
        assert!(twice.job_by_name("w1/x0").is_some());
    }

    #[test]
    fn data_flow_survives_namespacing() {
        let d = dataflow_pair();
        let merged = merge("ens", &[&d]);
        let a = merged.job_by_name("w0/a").unwrap();
        let b = merged.job_by_name("w0/b").unwrap();
        assert_eq!(merged.children(a), &[b]);
        let f = merged.file_by_name("w0/mid").unwrap();
        assert_eq!(merged.producer(f), Some(a));
        assert!(merged.file_by_name("w0/in").map(|f| merged.file(f).initial).unwrap());
    }

    #[test]
    fn merged_executes_like_batch_submission() {
        let a = chain("a", 3);
        let d = dataflow_pair();
        let merged = merge("ens", &[&a, &d]);
        let mut t = DependencyTracker::new(&merged);
        let mut done = 0;
        loop {
            let ready = t.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                t.mark_running(j);
                t.complete_in(&merged, j);
                done += 1;
            }
        }
        assert_eq!(done, 5);
        assert!(t.is_complete());
    }

    #[test]
    fn empty_merge_is_empty_workflow() {
        let merged = merge("none", &[]);
        assert_eq!(merged.job_count(), 0);
    }
}
