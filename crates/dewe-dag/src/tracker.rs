//! Runtime dependency tracking — the master daemon's view of one workflow.
//!
//! [`DependencyTracker`] is a pure state machine: no clocks, no queues, no
//! I/O. The DEWE v2 master (and the Pegasus-like baseline) drive it with
//! completion events and drain the ready frontier into whatever dispatch
//! mechanism they use (message-queue topic, scheduler queue, ...).

use crate::ids::JobId;
use crate::workflow::Workflow;

/// Lifecycle of a job as seen by the master daemon (paper §III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Has unfinished parents; not yet eligible.
    Pending,
    /// All parents complete; eligible to run (published or publishable).
    Ready,
    /// Checked out by a worker; a "running" acknowledgment was received.
    Running,
    /// A "completed" acknowledgment was received.
    Completed,
    /// Dead-lettered: the job exhausted its retry budget (or an ancestor
    /// did), so it will never run. Terminal, like `Completed`, but counts
    /// against the workflow instead of toward it.
    Abandoned,
}

/// Aggregate counts maintained by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerStats {
    pub pending: usize,
    pub ready: usize,
    pub running: usize,
    pub completed: usize,
    pub abandoned: usize,
}

impl TrackerStats {
    /// Total jobs tracked.
    pub fn total(&self) -> usize {
        self.pending + self.ready + self.running + self.completed + self.abandoned
    }
}

/// Tracks dependency satisfaction and job states for one workflow instance.
#[derive(Debug, Clone)]
pub struct DependencyTracker {
    /// Remaining unfinished parents per job.
    remaining: Vec<u32>,
    state: Vec<JobState>,
    /// Jobs that became Ready and have not yet been taken by the engine.
    ready_queue: Vec<JobId>,
    /// Per-job membership flag for `ready_queue`, so resubmission of a
    /// Ready job is O(1) instead of a queue scan.
    in_ready_queue: Vec<bool>,
    stats: TrackerStats,
}

impl DependencyTracker {
    /// Initialize from a validated workflow; all root jobs start Ready.
    pub fn new(workflow: &Workflow) -> Self {
        let n = workflow.job_count();
        let mut remaining = Vec::with_capacity(n);
        let mut state = Vec::with_capacity(n);
        let mut ready_queue = Vec::new();
        let mut in_ready_queue = vec![false; n];
        for j in workflow.job_ids() {
            let deg = workflow.in_degree(j) as u32;
            remaining.push(deg);
            if deg == 0 {
                state.push(JobState::Ready);
                ready_queue.push(j);
                in_ready_queue[j.index()] = true;
            } else {
                state.push(JobState::Pending);
            }
        }
        let stats = TrackerStats {
            pending: n - ready_queue.len(),
            ready: ready_queue.len(),
            running: 0,
            completed: 0,
            abandoned: 0,
        };
        Self { remaining, state, ready_queue, in_ready_queue, stats }
    }

    /// Current state of a job.
    #[inline]
    pub fn state(&self, id: JobId) -> JobState {
        self.state[id.index()]
    }

    /// Drain jobs that became eligible since the last call.
    ///
    /// The returned jobs stay in [`JobState::Ready`] until
    /// [`mark_running`](Self::mark_running) is called — mirroring the gap
    /// between the master publishing a job to the dispatch topic and a
    /// worker's "running" acknowledgment.
    pub fn take_ready(&mut self) -> Vec<JobId> {
        for &j in &self.ready_queue {
            self.in_ready_queue[j.index()] = false;
        }
        std::mem::take(&mut self.ready_queue)
    }

    /// Drain eligible jobs into `out` without giving up the queue's buffer
    /// — the allocation-free flavor of [`take_ready`](Self::take_ready)
    /// for steady-state dispatch loops.
    pub fn drain_ready_into(&mut self, out: &mut Vec<JobId>) {
        for &j in &self.ready_queue {
            self.in_ready_queue[j.index()] = false;
        }
        out.append(&mut self.ready_queue);
    }

    /// Discard the ready queue's contents (the caller has already
    /// dispatched or otherwise accounted for those jobs).
    pub fn clear_ready(&mut self) {
        for &j in &self.ready_queue {
            self.in_ready_queue[j.index()] = false;
        }
        self.ready_queue.clear();
    }

    /// Number of jobs waiting in the ready queue (published or not).
    pub fn ready_len(&self) -> usize {
        self.ready_queue.len()
    }

    /// Record a worker's "running" acknowledgment.
    ///
    /// Idempotent for already-running jobs; ignored for completed jobs
    /// (a stale ack after a timeout-resubmit race, paper §III.B).
    pub fn mark_running(&mut self, id: JobId) {
        match self.state[id.index()] {
            JobState::Ready => {
                self.state[id.index()] = JobState::Running;
                self.stats.ready -= 1;
                self.stats.running += 1;
            }
            JobState::Pending => {
                // A worker can only have gotten the job if we published it;
                // Pending means a protocol error by the caller.
                debug_assert!(false, "mark_running on pending job {id:?}");
            }
            JobState::Running | JobState::Completed | JobState::Abandoned => {}
        }
    }

    /// Record a worker's "completed" acknowledgment *without* releasing
    /// children — use [`complete_in`](Self::complete_in) in normal operation.
    /// Duplicate completions (two workers raced on a timed-out job) are
    /// ignored.
    pub fn mark_completed(&mut self, id: JobId) {
        match self.state[id.index()] {
            // Abandoned is terminal: a late completion from a worker that
            // raced the dead-letter decision must not resurrect the job —
            // its dependents were already written off.
            JobState::Completed | JobState::Abandoned => return,
            JobState::Ready => self.stats.ready -= 1,
            JobState::Running => self.stats.running -= 1,
            JobState::Pending => {
                debug_assert!(false, "mark_completed on pending job {id:?}");
                self.stats.pending -= 1;
            }
        }
        self.state[id.index()] = JobState::Completed;
        self.stats.completed += 1;
    }

    /// Mark completed and release children onto the ready queue without
    /// allocating — newly eligible jobs are picked up by the next
    /// [`drain_ready_into`](Self::drain_ready_into) /
    /// [`take_ready`](Self::take_ready). Duplicate completions are ignored.
    pub fn complete(&mut self, workflow: &Workflow, id: JobId) {
        if matches!(self.state[id.index()], JobState::Completed | JobState::Abandoned) {
            return;
        }
        self.mark_completed(id);
        for &c in workflow.children(id) {
            let r = &mut self.remaining[c.index()];
            debug_assert!(*r > 0, "child {c:?} released more times than its in-degree");
            *r -= 1;
            if *r == 0 && self.state[c.index()] == JobState::Pending {
                // An Abandoned child (dead-lettered via another parent)
                // stays abandoned even once its last parent completes.
                self.state[c.index()] = JobState::Ready;
                self.stats.pending -= 1;
                self.stats.ready += 1;
                self.ready_queue.push(c);
                self.in_ready_queue[c.index()] = true;
            }
        }
    }

    /// Convenience: mark completed and release children, returning the
    /// newly eligible jobs (allocates; hot paths use
    /// [`complete`](Self::complete) + [`drain_ready_into`](Self::drain_ready_into)).
    pub fn complete_in(&mut self, workflow: &Workflow, id: JobId) -> Vec<JobId> {
        let before = self.ready_queue.len();
        self.complete(workflow, id);
        self.ready_queue[before..].to_vec()
    }

    /// Put a Running job back to Ready (timeout resubmission, §III.B).
    ///
    /// Returns `true` if the job was actually resubmitted (it was Running
    /// and is now queued again), `false` if it had already completed.
    pub fn resubmit(&mut self, id: JobId) -> bool {
        match self.state[id.index()] {
            JobState::Running => {
                self.state[id.index()] = JobState::Ready;
                self.stats.running -= 1;
                self.stats.ready += 1;
                self.ready_queue.push(id);
                self.in_ready_queue[id.index()] = true;
                true
            }
            JobState::Ready => {
                // Published but never picked up: republish.
                if !self.in_ready_queue[id.index()] {
                    self.ready_queue.push(id);
                    self.in_ready_queue[id.index()] = true;
                }
                true
            }
            _ => false,
        }
    }

    /// Dead-letter a job: mark it — and, transitively, every descendant,
    /// which can never become eligible — [`JobState::Abandoned`].
    ///
    /// The job itself may be in any non-terminal state (Running after a
    /// final timeout, Ready after a final failure ack). Returns the number
    /// of jobs newly abandoned (the job plus its written-off descendants);
    /// 0 if the job was already terminal.
    pub fn abandon(&mut self, workflow: &Workflow, id: JobId) -> usize {
        let mut stack = vec![id];
        let mut count = 0usize;
        while let Some(j) = stack.pop() {
            match self.state[j.index()] {
                JobState::Completed | JobState::Abandoned => continue,
                JobState::Ready => {
                    self.stats.ready -= 1;
                    if self.in_ready_queue[j.index()] {
                        // Lazy removal: leave the queue entry behind; drains
                        // skip terminal jobs via the membership flag reset.
                        self.in_ready_queue[j.index()] = false;
                        self.ready_queue.retain(|&q| q != j);
                    }
                }
                JobState::Running => self.stats.running -= 1,
                JobState::Pending => self.stats.pending -= 1,
            }
            self.state[j.index()] = JobState::Abandoned;
            self.stats.abandoned += 1;
            count += 1;
            stack.extend(workflow.children(j).iter().copied());
        }
        count
    }

    /// True once every job has completed.
    pub fn is_complete(&self) -> bool {
        self.stats.completed == self.state.len()
    }

    /// True once every job reached a terminal state (completed or
    /// abandoned): the workflow can make no further progress.
    pub fn is_settled(&self) -> bool {
        self.stats.completed + self.stats.abandoned == self.state.len()
    }

    /// Aggregate state counts.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowBuilder;

    fn chain3() -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.job("a", "t", 1.0).build();
        let c = b.job("b", "t", 1.0).build();
        let d = b.job("c", "t", 1.0).build();
        b.edge(a, c);
        b.edge(c, d);
        b.finish().unwrap()
    }

    #[test]
    fn roots_start_ready() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        assert_eq!(t.take_ready(), vec![JobId(0)]);
        assert_eq!(t.stats().ready, 1);
        assert_eq!(t.stats().pending, 2);
    }

    #[test]
    fn completion_releases_children_in_order() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        let newly = t.complete_in(&wf, JobId(0));
        assert_eq!(newly, vec![JobId(1)]);
        assert_eq!(t.state(JobId(1)), JobState::Ready);
        assert_eq!(t.state(JobId(2)), JobState::Pending);
        t.mark_running(JobId(1));
        t.complete_in(&wf, JobId(1));
        t.mark_running(JobId(2));
        t.complete_in(&wf, JobId(2));
        assert!(t.is_complete());
    }

    #[test]
    fn duplicate_completion_is_ignored() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        assert_eq!(t.complete_in(&wf, JobId(0)).len(), 1);
        assert_eq!(t.complete_in(&wf, JobId(0)).len(), 0, "second ack must be a no-op");
        assert_eq!(t.stats().completed, 1);
    }

    #[test]
    fn stale_running_ack_after_completion_ignored() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        t.complete_in(&wf, JobId(0));
        t.mark_running(JobId(0)); // late duplicate-delivery ack
        assert_eq!(t.state(JobId(0)), JobState::Completed);
    }

    #[test]
    fn resubmit_requeues_running_job() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        assert!(t.resubmit(JobId(0)));
        assert_eq!(t.state(JobId(0)), JobState::Ready);
        assert_eq!(t.take_ready(), vec![JobId(0)]);
    }

    #[test]
    fn resubmit_completed_job_is_noop() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        t.complete_in(&wf, JobId(0));
        assert!(!t.resubmit(JobId(0)));
    }

    #[test]
    fn resubmit_ready_job_does_not_duplicate_queue_entry() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        // job 0 is in the ready queue; resubmitting should not add it twice.
        assert!(t.resubmit(JobId(0)));
        assert_eq!(t.take_ready(), vec![JobId(0)]);
    }

    #[test]
    fn stats_sum_to_total() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        assert_eq!(t.stats().total(), 3);
        t.take_ready();
        t.mark_running(JobId(0));
        assert_eq!(t.stats().total(), 3);
        t.complete_in(&wf, JobId(0));
        assert_eq!(t.stats().total(), 3);
    }

    #[test]
    fn empty_workflow_is_immediately_complete() {
        let wf = WorkflowBuilder::new("e").finish().unwrap();
        let t = DependencyTracker::new(&wf);
        assert!(t.is_complete());
    }

    #[test]
    fn drain_ready_into_matches_take_ready_and_keeps_buffer() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        let mut buf = Vec::new();
        t.drain_ready_into(&mut buf);
        assert_eq!(buf, vec![JobId(0)]);
        assert_eq!(t.ready_len(), 0);
        buf.clear();
        t.mark_running(JobId(0));
        t.complete(&wf, JobId(0));
        t.drain_ready_into(&mut buf);
        assert_eq!(buf, vec![JobId(1)]);
    }

    #[test]
    fn clear_ready_resets_membership() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.clear_ready();
        assert_eq!(t.ready_len(), 0);
        // The cleared root is still Ready; resubmitting must requeue it
        // exactly once (membership flag was reset by clear_ready).
        assert!(t.resubmit(JobId(0)));
        assert!(t.resubmit(JobId(0)));
        assert_eq!(t.take_ready(), vec![JobId(0)]);
    }

    #[test]
    fn resubmit_after_take_ready_requeues() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        assert_eq!(t.take_ready(), vec![JobId(0)]);
        // Taken but never picked up by a worker: still Ready, and the
        // membership flag must have been cleared by take_ready.
        assert!(t.resubmit(JobId(0)));
        assert_eq!(t.take_ready(), vec![JobId(0)]);
    }

    #[test]
    fn complete_is_alloc_free_flavor_of_complete_in() {
        let wf = chain3();
        let mut a = DependencyTracker::new(&wf);
        let mut b = DependencyTracker::new(&wf);
        a.take_ready();
        b.take_ready();
        a.mark_running(JobId(0));
        b.mark_running(JobId(0));
        let newly = a.complete_in(&wf, JobId(0));
        b.complete(&wf, JobId(0));
        assert_eq!(newly, b.take_ready());
        assert_eq!(a.take_ready(), newly);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn abandon_running_job_writes_off_descendants() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        assert_eq!(t.abandon(&wf, JobId(0)), 3, "job + 2 descendants");
        assert_eq!(t.state(JobId(0)), JobState::Abandoned);
        assert_eq!(t.state(JobId(2)), JobState::Abandoned);
        assert!(t.is_settled());
        assert!(!t.is_complete());
        assert_eq!(t.stats().abandoned, 3);
        assert_eq!(t.stats().total(), 3);
    }

    #[test]
    fn abandon_is_idempotent_and_ignores_completed() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        t.complete_in(&wf, JobId(0));
        t.mark_running(JobId(1));
        assert_eq!(t.abandon(&wf, JobId(1)), 2, "completed parent untouched");
        assert_eq!(t.abandon(&wf, JobId(1)), 0, "second abandon is a no-op");
        assert_eq!(t.state(JobId(0)), JobState::Completed);
        assert!(t.is_settled());
    }

    #[test]
    fn late_completion_of_abandoned_job_is_ignored() {
        let wf = chain3();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(JobId(0));
        t.abandon(&wf, JobId(0));
        t.complete(&wf, JobId(0)); // straggler worker finished anyway
        assert_eq!(t.state(JobId(0)), JobState::Abandoned);
        assert_eq!(t.stats().completed, 0);
        assert_eq!(t.take_ready(), Vec::<JobId>::new(), "no children released");
        assert!(!t.resubmit(JobId(0)), "abandoned jobs never resubmit");
    }

    #[test]
    fn abandon_ready_job_purges_ready_queue() {
        let mut b = WorkflowBuilder::new("fork");
        let a = b.job("a", "t", 1.0).build();
        let l = b.job("l", "t", 1.0).build();
        let r = b.job("r", "t", 1.0).build();
        b.edge(a, l);
        b.edge(a, r);
        let wf = b.finish().unwrap();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(a);
        t.complete(&wf, a); // l, r now queued Ready
        assert_eq!(t.abandon(&wf, l), 1);
        assert_eq!(t.take_ready(), vec![r], "abandoned job left the queue");
        assert!(!t.is_settled());
        t.mark_running(r);
        t.complete(&wf, r);
        assert!(t.is_settled());
    }

    #[test]
    fn diamond_join_survivor_parent_does_not_resurrect_abandoned_child() {
        // a -> {l, r} -> d; l is dead-lettered, then r completes. d must
        // stay abandoned even though its last remaining parent finished.
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.job("a", "t", 1.0).build();
        let l = b.job("l", "t", 1.0).build();
        let r = b.job("r", "t", 1.0).build();
        let d = b.job("d", "t", 1.0).build();
        b.edge(a, l);
        b.edge(a, r);
        b.edge(l, d);
        b.edge(r, d);
        let wf = b.finish().unwrap();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(a);
        t.complete(&wf, a);
        t.take_ready();
        t.mark_running(l);
        t.mark_running(r);
        assert_eq!(t.abandon(&wf, l), 2, "l and d");
        t.complete(&wf, r);
        assert_eq!(t.state(d), JobState::Abandoned);
        assert_eq!(t.take_ready(), Vec::<JobId>::new());
        assert!(t.is_settled());
        assert_eq!(t.stats().completed, 2);
        assert_eq!(t.stats().abandoned, 2);
    }

    #[test]
    fn wide_fanout_releases_all_children() {
        let mut b = WorkflowBuilder::new("fan");
        let root = b.job("root", "t", 1.0).build();
        for i in 0..100 {
            let c = b.job(format!("c{i}"), "t", 1.0).build();
            b.edge(root, c);
        }
        let wf = b.finish().unwrap();
        let mut t = DependencyTracker::new(&wf);
        t.take_ready();
        t.mark_running(root);
        let newly = t.complete_in(&wf, root);
        assert_eq!(newly.len(), 100);
        assert_eq!(t.stats().ready, 100);
    }
}
