//! Job specifications and the fluent job builder.

use crate::ids::FileId;

/// Default timeout applied to jobs that do not declare one, in seconds.
///
/// DEWE v2 gives every job either a user-defined timeout or a system-wide
/// default; when a checked-out job is not acknowledged within its timeout the
/// master republishes it (paper §III.B).
pub const DEFAULT_TIMEOUT_SECS: f64 = 600.0;

/// A single task in a workflow.
///
/// Jobs carry a *resource profile* — CPU seconds, core demand and the byte
/// volumes implied by their input/output files — rather than an executable
/// path, so that the same specification can drive the real-time engine
/// (where a `JobRunner` maps the transformation name to actual work) and the
/// discrete-event simulator (where the profile is charged against modeled
/// resources).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique (within the workflow) job name, e.g. `mProjectPP_0017`.
    pub name: String,
    /// Transformation (job type) name, e.g. `mProjectPP`. The paper exploits
    /// the fact that most jobs are near-identical copies of few
    /// transformations; engines and provisioning group statistics by this.
    pub xform: String,
    /// Pure computation demand in CPU-seconds on one reference core.
    pub cpu_seconds: f64,
    /// Number of cores the job can exploit (1 for serial jobs; >1 models the
    /// paper's OpenMP-style parallel blocking jobs, §III.D).
    pub cores: u32,
    /// Files read before computation.
    pub inputs: Vec<FileId>,
    /// Files written after computation.
    pub outputs: Vec<FileId>,
    /// Per-job timeout override in seconds (`None` = engine default).
    pub timeout_secs: Option<f64>,
}

impl JobSpec {
    /// Effective timeout in seconds given an engine-wide default.
    #[inline]
    pub fn effective_timeout(&self, default_secs: f64) -> f64 {
        self.timeout_secs.unwrap_or(default_secs)
    }

    /// Wall-clock compute time on `cores` available cores (the job cannot
    /// use more cores than it declares).
    #[inline]
    pub fn compute_wall_seconds(&self, available_cores: u32) -> f64 {
        let used = self.cores.min(available_cores).max(1);
        self.cpu_seconds / used as f64
    }
}

/// Fluent builder returned by [`crate::WorkflowBuilder::job`].
///
/// Finish with [`JobBuilder::build`], which registers the job with the
/// owning workflow builder and returns its [`crate::JobId`].
pub struct JobBuilder<'a> {
    pub(crate) owner: &'a mut crate::workflow::WorkflowBuilder,
    pub(crate) spec: JobSpec,
}

impl<'a> JobBuilder<'a> {
    /// Add an input file dependency.
    pub fn input(mut self, file: FileId) -> Self {
        self.spec.inputs.push(file);
        self
    }

    /// Add several input files.
    pub fn inputs(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.spec.inputs.extend(files);
        self
    }

    /// Add an output file.
    pub fn output(mut self, file: FileId) -> Self {
        self.spec.outputs.push(file);
        self
    }

    /// Add several output files.
    pub fn outputs(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.spec.outputs.extend(files);
        self
    }

    /// Declare multi-core capability (OpenMP-style jobs, paper §III.D).
    pub fn cores(mut self, cores: u32) -> Self {
        self.spec.cores = cores.max(1);
        self
    }

    /// Set a per-job timeout in seconds (overrides the engine default).
    pub fn timeout_secs(mut self, secs: f64) -> Self {
        self.spec.timeout_secs = Some(secs);
        self
    }

    /// Register the job and return its id.
    pub fn build(self) -> crate::JobId {
        self.owner.push_job(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cores: u32, cpu: f64) -> JobSpec {
        JobSpec {
            name: "j".into(),
            xform: "x".into(),
            cpu_seconds: cpu,
            cores,
            inputs: vec![],
            outputs: vec![],
            timeout_secs: None,
        }
    }

    #[test]
    fn effective_timeout_prefers_override() {
        let mut s = spec(1, 1.0);
        assert_eq!(s.effective_timeout(600.0), 600.0);
        s.timeout_secs = Some(30.0);
        assert_eq!(s.effective_timeout(600.0), 30.0);
    }

    #[test]
    fn serial_job_ignores_extra_cores() {
        let s = spec(1, 120.0);
        assert_eq!(s.compute_wall_seconds(32), 120.0);
    }

    #[test]
    fn parallel_job_scales_down_to_available() {
        let s = spec(8, 80.0);
        assert_eq!(s.compute_wall_seconds(32), 10.0); // uses its 8 cores
        assert_eq!(s.compute_wall_seconds(4), 20.0); // limited by the node
    }

    #[test]
    fn compute_wall_never_divides_by_zero() {
        let s = spec(1, 5.0);
        assert_eq!(s.compute_wall_seconds(0), 5.0);
    }
}
