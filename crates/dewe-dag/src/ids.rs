//! Compact index-based identifiers.
//!
//! Jobs, files and workflows are stored in contiguous `Vec`s and referenced
//! by `u32` newtype indices. A 6.0-degree Montage ensemble of 200 workflows
//! has 1.7 million jobs; 4-byte ids keep the hot dependency-tracking
//! structures small and cache-friendly (see the type-size guidance in the
//! Rust performance literature).

use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning container.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a container index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id overflow: more than u32::MAX entities"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

index_id!(
    /// Identifies a job within a single [`crate::Workflow`].
    JobId,
    "j"
);

index_id!(
    /// Identifies a file within a single [`crate::Workflow`].
    FileId,
    "f"
);

index_id!(
    /// Identifies a workflow within an [`crate::Ensemble`] (or an engine's
    /// submission sequence).
    WorkflowId,
    "w"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let j = JobId::from_index(42);
        assert_eq!(j.index(), 42);
        assert_eq!(j, JobId(42));
    }

    #[test]
    fn debug_formatting_is_tagged() {
        assert_eq!(format!("{:?}", JobId(7)), "j7");
        assert_eq!(format!("{:?}", FileId(7)), "f7");
        assert_eq!(format!("{:?}", WorkflowId(7)), "w7");
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(JobId(9).to_string(), "9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(JobId(1) < JobId(2));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = JobId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_are_4_bytes() {
        assert_eq!(std::mem::size_of::<JobId>(), 4);
        assert_eq!(std::mem::size_of::<Option<JobId>>(), 8);
    }
}
