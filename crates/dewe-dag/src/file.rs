//! File (data artifact) specifications.

/// A data artifact consumed and/or produced by jobs.
///
/// DEWE v2 workflows are *data-driven*: a workflow folder on the shared file
/// system contains the DAG file, executables, input files and (eventually)
/// all intermediate and output files. The model records logical size so that
/// the simulator can charge disk and shared-file-system bandwidth for reads
/// and writes, and so that generators can be calibrated against the paper's
/// reported data volumes (4.0 GB input / 35 GB intermediate per 6.0-degree
/// Montage workflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSpec {
    /// Unique (within the workflow) file name.
    pub name: String,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// `true` if the file exists before the workflow starts (staged input);
    /// `false` if some job produces it.
    pub initial: bool,
}

impl FileSpec {
    /// Create a new file spec.
    pub fn new(name: impl Into<String>, size_bytes: u64, initial: bool) -> Self {
        Self { name: name.into(), size_bytes, initial }
    }

    /// Size in (binary) megabytes, for reporting.
    pub fn size_mib(&self) -> f64 {
        self.size_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let f = FileSpec::new("in.fits", 3 << 20, true);
        assert_eq!(f.name, "in.fits");
        assert!(f.initial);
        assert!((f.size_mib() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_size_is_allowed() {
        // Montage produces tiny metadata/fit files; zero is a legal size.
        let f = FileSpec::new("meta", 0, false);
        assert_eq!(f.size_bytes, 0);
        assert_eq!(f.size_mib(), 0.0);
    }
}
