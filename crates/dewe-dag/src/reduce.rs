//! Transitive reduction and workflow linting.
//!
//! Real-world DAX generators frequently emit *redundant* precedence edges
//! (an explicit `parent -> grandchild` edge alongside the implied
//! two-step path). Redundant edges are harmless for correctness but cost
//! dependency-tracking work at ensemble scale and clutter visualizations;
//! [`transitive_reduction`] rebuilds a workflow with the minimum
//! equivalent edge set.
//!
//! [`lint`] reports structural oddities that usually indicate generator
//! bugs: files nobody reads, non-initial files nobody writes, jobs with no
//! I/O at all, and redundant edges.

use std::collections::HashSet;

use crate::ids::JobId;
use crate::workflow::{Workflow, WorkflowBuilder};

/// Identify redundant *control* edges: `(parent, child)` pairs where
/// another path of length ≥ 2 from parent to child exists.
///
/// Edges implied by data flow (the child reads a file the parent writes)
/// are never reported: the data dependency is real even when the ordering
/// it imposes is transitively implied — in Montage, for example,
/// `mProjectPP -> mBackground` is implied through the background-modeling
/// chain, yet mBackground still physically reads the projected image.
pub fn redundant_edges(wf: &Workflow) -> Vec<(JobId, JobId)> {
    // For each job u (in reverse topological order), compute reachability
    // via children-of-children; an edge u->v is redundant if v is reachable
    // from some other child of u. For workflow-scale graphs a per-node DFS
    // over the children works; memoized bitsets would be overkill here
    // because fans are shallow.
    let mut redundant = Vec::new();
    for u in wf.job_ids() {
        let children: &[JobId] = wf.children(u);
        if children.len() < 2 {
            continue;
        }
        let direct: HashSet<JobId> = children.iter().copied().collect();
        // BFS from each child; any *other* direct child reached via a path
        // of length >= 1 marks that edge redundant.
        let mut flagged: HashSet<JobId> = HashSet::new();
        for &c in children {
            let mut stack: Vec<JobId> = wf.children(c).to_vec();
            let mut seen: HashSet<JobId> = HashSet::new();
            while let Some(x) = stack.pop() {
                if !seen.insert(x) {
                    continue;
                }
                if direct.contains(&x) {
                    flagged.insert(x);
                    // keep going: other children may also be reachable
                }
                stack.extend_from_slice(wf.children(x));
            }
        }
        for v in flagged {
            let data_implied = wf.job(v).inputs.iter().any(|&f| wf.producer(f) == Some(u));
            if !data_implied {
                redundant.push((u, v));
            }
        }
    }
    redundant.sort_unstable();
    redundant
}

/// Rebuild the workflow without redundant precedence edges. Data-flow
/// (file) relations are preserved untouched; only explicit edges that are
/// implied by longer paths disappear. The result executes identically.
pub fn transitive_reduction(wf: &Workflow) -> Workflow {
    let redundant: HashSet<(JobId, JobId)> = redundant_edges(wf).into_iter().collect();
    let mut b = WorkflowBuilder::new(wf.name().to_string());
    for f in wf.files() {
        b.file(f.name.clone(), f.size_bytes, f.initial);
    }
    for j in wf.jobs() {
        let mut jb = b.job(j.name.clone(), j.xform.clone(), j.cpu_seconds).cores(j.cores);
        if let Some(t) = j.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.inputs(j.inputs.iter().copied()).outputs(j.outputs.iter().copied()).build();
    }
    for u in wf.job_ids() {
        for &v in wf.children(u) {
            if redundant.contains(&(u, v)) {
                continue;
            }
            // Skip edges implied by data flow (the builder re-derives them).
            let implied = wf.job(v).inputs.iter().any(|&f| wf.producer(f) == Some(u));
            if !implied {
                b.edge(u, v);
            }
        }
    }
    b.finish().expect("reduction preserves acyclicity")
}

/// A lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintFinding {
    /// A produced file no job reads (wasted output; terminal results from
    /// sink jobs are exempt).
    UnreadFile(String),
    /// A non-initial file consumed but never produced (would block forever
    /// in a system that stages data by producer — here it parses as an
    /// implicitly initial file, almost always a generator bug).
    PhantomInput(String),
    /// A job with neither inputs nor outputs (pure side effect; legal but
    /// suspicious in a data-driven workflow).
    NoIo(String),
    /// A redundant precedence edge `parent -> child`.
    RedundantEdge(String, String),
}

/// Lint a workflow for structural oddities.
pub fn lint(wf: &Workflow) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let sink_outputs: HashSet<_> =
        wf.sinks().iter().flat_map(|&s| wf.job(s).outputs.iter().copied()).collect();
    let mut read: vec::BitsetLike = vec::BitsetLike::new(wf.file_count());
    for j in wf.jobs() {
        for &f in &j.inputs {
            read.set(f.index());
        }
    }
    for f in wf.file_ids() {
        let spec = wf.file(f);
        if !spec.initial && !read.get(f.index()) && !sink_outputs.contains(&f) {
            findings.push(LintFinding::UnreadFile(spec.name.clone()));
        }
        if !spec.initial && wf.producer(f).is_none() {
            findings.push(LintFinding::PhantomInput(spec.name.clone()));
        }
    }
    for j in wf.jobs() {
        if j.inputs.is_empty() && j.outputs.is_empty() {
            findings.push(LintFinding::NoIo(j.name.clone()));
        }
    }
    for (u, v) in redundant_edges(wf) {
        findings.push(LintFinding::RedundantEdge(wf.job(u).name.clone(), wf.job(v).name.clone()));
    }
    findings
}

/// Tiny growable bitset (avoids a HashSet per file at ensemble scale).
mod vec {
    pub struct BitsetLike {
        bits: Vec<u64>,
    }
    impl BitsetLike {
        pub fn new(n: usize) -> Self {
            Self { bits: vec![0; n.div_ceil(64)] }
        }
        pub fn set(&mut self, i: usize) {
            self.bits[i / 64] |= 1 << (i % 64);
        }
        pub fn get(&self, i: usize) -> bool {
            self.bits[i / 64] & (1 << (i % 64)) != 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> c with a redundant direct a -> c edge.
    fn triangle() -> Workflow {
        let mut b = WorkflowBuilder::new("tri");
        let a = b.job("a", "t", 1.0).build();
        let m = b.job("b", "t", 1.0).build();
        let c = b.job("c", "t", 1.0).build();
        b.edge(a, m);
        b.edge(m, c);
        b.edge(a, c); // redundant
        b.finish().unwrap()
    }

    #[test]
    fn detects_redundant_edge() {
        let wf = triangle();
        let red = redundant_edges(&wf);
        assert_eq!(red.len(), 1);
        assert_eq!(wf.job(red[0].0).name, "a");
        assert_eq!(wf.job(red[0].1).name, "c");
    }

    #[test]
    fn reduction_removes_only_redundant_edges() {
        let wf = triangle();
        assert_eq!(wf.edge_count(), 3);
        let reduced = transitive_reduction(&wf);
        assert_eq!(reduced.edge_count(), 2);
        // Execution semantics preserved: same topological constraints.
        let c = reduced.job_by_name("c").unwrap();
        let m = reduced.job_by_name("b").unwrap();
        assert_eq!(reduced.parents(c), &[m]);
    }

    #[test]
    fn reduction_is_idempotent() {
        let wf = transitive_reduction(&triangle());
        let again = transitive_reduction(&wf);
        assert_eq!(wf.edge_count(), again.edge_count());
    }

    #[test]
    fn clean_diamond_is_untouched() {
        let mut b = WorkflowBuilder::new("d");
        let a = b.job("a", "t", 1.0).build();
        let l = b.job("l", "t", 1.0).build();
        let r = b.job("r", "t", 1.0).build();
        let m = b.job("m", "t", 1.0).build();
        b.edge(a, l);
        b.edge(a, r);
        b.edge(l, m);
        b.edge(r, m);
        let wf = b.finish().unwrap();
        assert!(redundant_edges(&wf).is_empty());
        assert_eq!(transitive_reduction(&wf).edge_count(), 4);
    }

    #[test]
    fn reduction_preserves_montage_execution() {
        // Montage has no redundant edges; reduction must be a no-op that
        // still executes fully.
        let wf = dewe_montage_free_montage();
        let reduced = transitive_reduction(&wf);
        assert_eq!(reduced.edge_count(), wf.edge_count());
        let mut t = crate::DependencyTracker::new(&reduced);
        let mut done = 0;
        loop {
            let ready = t.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                t.mark_running(j);
                t.complete_in(&reduced, j);
                done += 1;
            }
        }
        assert_eq!(done, reduced.job_count());
    }

    /// Hand-rolled mini-Montage (this crate cannot depend on dewe-montage).
    fn dewe_montage_free_montage() -> Workflow {
        let mut b = WorkflowBuilder::new("mini");
        let mut projs = Vec::new();
        for i in 0..6 {
            let raw = b.file(format!("raw{i}"), 10, true);
            let p = b.file(format!("proj{i}"), 10, false);
            b.job(format!("proj{i}"), "p", 1.0).input(raw).output(p).build();
            projs.push(p);
        }
        let fit = b.file("fit", 1, false);
        b.job("concat", "c", 5.0).inputs(projs.iter().copied()).output(fit).build();
        for (i, &proj) in projs.iter().enumerate() {
            b.job(format!("bg{i}"), "b", 1.0).input(proj).input(fit).build();
        }
        b.finish().unwrap()
    }

    #[test]
    fn lint_finds_phantom_and_unread() {
        let mut b = WorkflowBuilder::new("l");
        let phantom = b.file("phantom.dat", 1, false); // consumed, never produced
        let unread = b.file("unread.dat", 1, false);
        let terminal = b.file("final.dat", 1, false);
        b.job("x", "t", 1.0).input(phantom).output(unread).build();
        b.job("sink", "t", 1.0).input(unread).output(terminal).build();
        b.job("idle", "t", 1.0).build();
        let wf = b.finish().unwrap();
        let findings = lint(&wf);
        assert!(findings.contains(&LintFinding::PhantomInput("phantom.dat".into())));
        assert!(findings.contains(&LintFinding::NoIo("idle".into())));
        // `unread.dat` IS read (by sink) and `final.dat` is a sink output:
        // neither may be flagged as unread.
        assert!(!findings.iter().any(|f| matches!(f, LintFinding::UnreadFile(_))));
    }

    #[test]
    fn lint_clean_workflow_is_empty() {
        let wf = dewe_montage_free_montage();
        assert!(lint(&wf).is_empty(), "{:?}", lint(&wf));
    }

    #[test]
    fn lint_reports_redundant_edges() {
        let findings = lint(&triangle());
        assert!(findings
            .iter()
            .any(|f| matches!(f, LintFinding::RedundantEdge(a, b) if a == "a" && b == "c")));
    }
}
