//! Pegasus DAX (abstract DAG XML) import/export.
//!
//! The paper's comparison system, Pegasus, consumes workflows as DAX
//! documents; published workflow generators (including Montage's) emit
//! them. This module reads the structural subset of DAX v3 that matters
//! for execution and writes it back, so real Pegasus workflows can be fed
//! to DEWE v2 and DEWE workflows can be handed to Pegasus tooling:
//!
//! ```xml
//! <adag name="montage">
//!   <job id="ID00001" name="mProjectPP" runtime="1.7">
//!     <uses file="raw_0.fits" link="input" size="2900000"/>
//!     <uses file="proj_0.fits" link="output" size="1600000"/>
//!   </job>
//!   <child ref="ID00002"><parent ref="ID00001"/></child>
//! </adag>
//! ```
//!
//! Supported: `adag@name`, `job@{id,name,runtime}`, nested
//! `<profile key="runtime">` (the Pegasus convention for expected
//! runtimes), `uses@{file,link,size}`, `child/parent` control edges.
//! Ignored gracefully: namespaces, `argument`, other profiles, metadata.
//! The parser is a minimal hand-rolled XML reader — sufficient for DAX's
//! regular structure, with line-accurate errors.

use std::collections::HashMap;

use crate::error::DagError;
use crate::workflow::{Workflow, WorkflowBuilder};

/// Parse a DAX document into a [`Workflow`].
///
/// File sizes default to 0 when absent; job runtimes default to 0.0 when
/// neither a `runtime` attribute nor a `pegasus::runtime` profile exists.
pub fn parse_dax(text: &str) -> Result<Workflow, DagError> {
    let tokens = tokenize(text)?;
    let mut name = String::from("dax_workflow");

    // First pass: collect jobs (with their uses) and edges.
    struct DaxJob {
        id: String,
        xform: String,
        runtime: f64,
        inputs: Vec<(String, u64)>,
        outputs: Vec<(String, u64)>,
    }
    let mut jobs: Vec<DaxJob> = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new(); // (parent id, child id)

    let mut current_job: Option<DaxJob> = None;
    let mut current_child: Option<String> = None;
    let mut in_runtime_profile = false;

    for tok in tokens {
        match tok {
            Token::Open { tag, attrs, self_closing, line } => match tag.as_str() {
                "adag" => {
                    if let Some(n) = attrs.get("name") {
                        name = n.clone();
                    }
                }
                "job" => {
                    let id = attrs
                        .get("id")
                        .cloned()
                        .ok_or_else(|| parse_err(line, "job without id"))?;
                    let xform = attrs
                        .get("name")
                        .cloned()
                        .ok_or_else(|| parse_err(line, "job without name"))?;
                    let runtime = attrs
                        .get("runtime")
                        .map(|r| r.parse::<f64>())
                        .transpose()
                        .map_err(|_| parse_err(line, "bad runtime"))?
                        .unwrap_or(0.0);
                    let job =
                        DaxJob { id, xform, runtime, inputs: Vec::new(), outputs: Vec::new() };
                    if self_closing {
                        jobs.push(job);
                    } else {
                        current_job = Some(job);
                    }
                }
                "uses" => {
                    let job =
                        current_job.as_mut().ok_or_else(|| parse_err(line, "uses outside job"))?;
                    let file = attrs
                        .get("file")
                        .or_else(|| attrs.get("name"))
                        .cloned()
                        .ok_or_else(|| parse_err(line, "uses without file"))?;
                    let size = attrs
                        .get("size")
                        .map(|s| s.parse::<u64>())
                        .transpose()
                        .map_err(|_| parse_err(line, "bad size"))?
                        .unwrap_or(0);
                    match attrs.get("link").map(String::as_str) {
                        Some("input") => job.inputs.push((file, size)),
                        Some("output") => job.outputs.push((file, size)),
                        _ => return Err(parse_err(line, "uses without link=input|output")),
                    }
                }
                "profile"
                    if attrs.get("key").map(String::as_str) == Some("runtime")
                        && current_job.is_some()
                        && !self_closing =>
                {
                    in_runtime_profile = true;
                }
                "child" => {
                    let c = attrs
                        .get("ref")
                        .cloned()
                        .ok_or_else(|| parse_err(line, "child without ref"))?;
                    current_child = Some(c);
                }
                "parent" => {
                    let p = attrs
                        .get("ref")
                        .cloned()
                        .ok_or_else(|| parse_err(line, "parent without ref"))?;
                    let c = current_child
                        .clone()
                        .ok_or_else(|| parse_err(line, "parent outside child"))?;
                    edges.push((p, c));
                }
                _ => {} // argument, metadata, executable, ... ignored
            },
            Token::Close { tag } => match tag.as_str() {
                "job" => {
                    if let Some(job) = current_job.take() {
                        jobs.push(job);
                    }
                }
                "child" => current_child = None,
                "profile" => in_runtime_profile = false,
                _ => {}
            },
            Token::Text { content, line } => {
                if in_runtime_profile {
                    if let Some(job) = current_job.as_mut() {
                        job.runtime = content
                            .trim()
                            .parse::<f64>()
                            .map_err(|_| parse_err(line, "bad runtime profile value"))?;
                    }
                }
            }
        }
    }

    // Second pass: build the workflow. Files are shared by name; sizes take
    // the maximum reported. A file never produced by a job is initial.
    let mut b = WorkflowBuilder::new(name);
    let mut file_size: HashMap<&str, u64> = HashMap::new();
    let mut produced: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for job in &jobs {
        for (f, size) in job.inputs.iter().chain(&job.outputs) {
            let e = file_size.entry(f).or_insert(0);
            *e = (*e).max(*size);
        }
        for (f, _) in &job.outputs {
            produced.insert(f);
        }
    }
    let mut file_ids = HashMap::new();
    let mut names: Vec<&&str> = file_size.keys().collect();
    names.sort();
    for fname in names {
        let id = b.file((**fname).to_string(), file_size[*fname], !produced.contains(*fname));
        file_ids.insert((**fname).to_string(), id);
    }
    let mut job_ids = HashMap::new();
    for job in &jobs {
        let mut jb = b.job(&job.id, &job.xform, job.runtime);
        for (f, _) in &job.inputs {
            jb = jb.input(file_ids[f]);
        }
        for (f, _) in &job.outputs {
            jb = jb.output(file_ids[f]);
        }
        let id = jb.build();
        job_ids.insert(job.id.clone(), id);
    }
    for (p, c) in edges {
        let &pid = job_ids.get(&p).ok_or(DagError::UnknownName(p))?;
        let &cid = job_ids.get(&c).ok_or(DagError::UnknownName(c))?;
        b.edge(pid, cid);
    }
    b.finish()
}

/// Serialize a workflow as a DAX v3-style document.
pub fn write_dax(wf: &Workflow) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(out, r#"<adag name="{}">"#, escape(wf.name()));
    for (ji, j) in wf.jobs().iter().enumerate() {
        let _ = writeln!(
            out,
            r#"  <job id="{}" name="{}" runtime="{}">"#,
            escape(&j.name),
            escape(&j.xform),
            j.cpu_seconds
        );
        for &f in &j.inputs {
            let spec = wf.file(f);
            let _ = writeln!(
                out,
                r#"    <uses file="{}" link="input" size="{}"/>"#,
                escape(&spec.name),
                spec.size_bytes
            );
        }
        for &f in &j.outputs {
            let spec = wf.file(f);
            let _ = writeln!(
                out,
                r#"    <uses file="{}" link="output" size="{}"/>"#,
                escape(&spec.name),
                spec.size_bytes
            );
        }
        let _ = writeln!(out, "  </job>");
        let _ = ji;
    }
    // Control edges not implied by data flow.
    for j in wf.job_ids() {
        let mut emitted = false;
        for &c in wf.children(j) {
            let implied = wf.job(c).inputs.iter().any(|&f| wf.producer(f) == Some(j));
            if !implied {
                if !emitted {
                    emitted = true;
                }
                let _ = writeln!(
                    out,
                    r#"  <child ref="{}"><parent ref="{}"/></child>"#,
                    escape(&wf.job(c).name),
                    escape(&wf.job(j).name)
                );
            }
        }
    }
    out.push_str("</adag>\n");
    out
}

// --------------------------------------------------------------- tokenizer

enum Token {
    Open { tag: String, attrs: HashMap<String, String>, self_closing: bool, line: usize },
    Close { tag: String },
    Text { content: String, line: usize },
}

fn parse_err(line: usize, message: &str) -> DagError {
    DagError::Parse { line, message: format!("DAX: {message}") }
}

fn tokenize(text: &str) -> Result<Vec<Token>, DagError> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut text_start = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
        }
        if bytes[i] == b'<' {
            // Flush pending text.
            let pending = text[text_start..i].trim();
            if !pending.is_empty() {
                tokens.push(Token::Text { content: pending.to_string(), line });
            }
            // Comments and declarations.
            if text[i..].starts_with("<!--") {
                match text[i..].find("-->") {
                    Some(end) => {
                        line += text[i..i + end].matches('\n').count();
                        i += end + 3;
                    }
                    None => return Err(parse_err(line, "unterminated comment")),
                }
                text_start = i;
                continue;
            }
            if text[i..].starts_with("<?") {
                match text[i..].find("?>") {
                    Some(end) => i += end + 2,
                    None => return Err(parse_err(line, "unterminated declaration")),
                }
                text_start = i;
                continue;
            }
            let close = text[i..].find('>').ok_or_else(|| parse_err(line, "unterminated tag"))?;
            let inner = &text[i + 1..i + close];
            line += inner.matches('\n').count();
            if let Some(tag) = inner.strip_prefix('/') {
                tokens.push(Token::Close { tag: tag.trim().to_string() });
            } else {
                let self_closing = inner.ends_with('/');
                let inner = inner.trim_end_matches('/');
                let (tag, attrs) = parse_tag(inner, line)?;
                tokens.push(Token::Open { tag, attrs, self_closing, line });
            }
            i += close + 1;
            text_start = i;
        } else {
            i += 1;
        }
    }
    Ok(tokens)
}

fn parse_tag(inner: &str, line: usize) -> Result<(String, HashMap<String, String>), DagError> {
    let inner = inner.trim();
    let tag_end = inner.find(char::is_whitespace).unwrap_or(inner.len());
    // Strip any namespace prefix ("pegasus:job" -> "job").
    let tag = inner[..tag_end].rsplit(':').next().unwrap_or("").to_string();
    if tag.is_empty() {
        return Err(parse_err(line, "empty tag"));
    }
    let mut attrs = HashMap::new();
    let rest = &inner[tag_end..];
    let mut chars = rest.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        // attribute name
        let eq =
            rest[start..].find('=').ok_or_else(|| parse_err(line, "attribute without value"))?;
        let key = rest[start..start + eq].trim().rsplit(':').next().unwrap_or("").to_string();
        let after = start + eq + 1;
        let quote = rest[after..]
            .chars()
            .next()
            .filter(|&q| q == '"' || q == '\'')
            .ok_or_else(|| parse_err(line, "unquoted attribute value"))?;
        let vstart = after + 1;
        let vend = rest[vstart..]
            .find(quote)
            .ok_or_else(|| parse_err(line, "unterminated attribute value"))?;
        attrs.insert(key, unescape(&rest[vstart..vstart + vend]));
        // advance iterator past the value
        let consumed_to = vstart + vend + 1;
        while let Some(&(p, _)) = chars.peek() {
            if p < consumed_to {
                chars.next();
            } else {
                break;
            }
        }
    }
    Ok((tag, attrs))
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- generated by a Montage DAX generator -->
<adag name="montage_frag" xmlns="http://pegasus.isi.edu/schema/DAX">
  <job id="proj1" name="mProjectPP" runtime="1.7">
    <uses file="raw_1.fits" link="input" size="2900000"/>
    <uses file="proj_1.fits" link="output" size="1600000"/>
  </job>
  <job id="proj2" name="mProjectPP">
    <profile namespace="pegasus" key="runtime">1.9</profile>
    <uses file="raw_2.fits" link="input" size="2900000"/>
    <uses file="proj_2.fits" link="output" size="1600000"/>
  </job>
  <job id="diff" name="mDiffFit" runtime="0.9">
    <uses file="proj_1.fits" link="input" size="1600000"/>
    <uses file="proj_2.fits" link="input" size="1600000"/>
    <uses file="fit.tbl" link="output" size="2048"/>
  </job>
  <child ref="diff">
    <parent ref="proj1"/>
    <parent ref="proj2"/>
  </child>
</adag>
"#;

    #[test]
    fn parses_sample_structure() {
        let wf = parse_dax(SAMPLE).unwrap();
        assert_eq!(wf.name(), "montage_frag");
        assert_eq!(wf.job_count(), 3);
        assert_eq!(wf.file_count(), 5);
        // raw files are initial; proj/fit are produced.
        assert_eq!(wf.files().iter().filter(|f| f.initial).count(), 2);
        // data edges + explicit control edges dedup to 2.
        assert_eq!(wf.edge_count(), 2);
        let diff = wf.job_by_name("diff").unwrap();
        assert_eq!(wf.parents(diff).len(), 2);
    }

    #[test]
    fn runtime_from_attribute_and_profile() {
        let wf = parse_dax(SAMPLE).unwrap();
        let p1 = wf.job_by_name("proj1").unwrap();
        let p2 = wf.job_by_name("proj2").unwrap();
        assert_eq!(wf.job(p1).cpu_seconds, 1.7);
        assert_eq!(wf.job(p2).cpu_seconds, 1.9, "profile value wins");
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let wf = parse_dax(SAMPLE).unwrap();
        let dax = write_dax(&wf);
        let wf2 = parse_dax(&dax).unwrap();
        assert_eq!(wf.job_count(), wf2.job_count());
        assert_eq!(wf.file_count(), wf2.file_count());
        assert_eq!(wf.edge_count(), wf2.edge_count());
        for (a, b) in wf.jobs().iter().zip(wf2.jobs()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cpu_seconds, b.cpu_seconds);
            assert_eq!(a.inputs.len(), b.inputs.len());
        }
    }

    #[test]
    fn dewe_workflow_exports_to_dax_and_back() {
        // A generated workflow exported to DAX and re-imported drives the
        // tracker identically.
        let mut b = WorkflowBuilder::new("gen");
        let f0 = b.file("a.dat", 100, true);
        let f1 = b.file("b.dat", 50, false);
        b.job("first", "t1", 2.0).input(f0).output(f1).build();
        b.job("second", "t2", 3.0).input(f1).build();
        let wf = b.finish().unwrap();
        let reparsed = parse_dax(&write_dax(&wf)).unwrap();
        assert_eq!(reparsed.job_count(), 2);
        assert_eq!(reparsed.edge_count(), 1);
        assert!(reparsed.files().iter().any(|f| f.name == "a.dat" && f.initial));
    }

    #[test]
    fn unknown_child_ref_errors() {
        let text = r#"<adag name="x">
  <job id="a" name="t" runtime="1"/>
  <child ref="nosuch"><parent ref="a"/></child>
</adag>"#;
        assert!(matches!(parse_dax(text), Err(DagError::UnknownName(_))));
    }

    #[test]
    fn uses_without_link_errors() {
        let text = r#"<adag name="x">
  <job id="a" name="t"><uses file="f"/></job>
</adag>"#;
        match parse_dax(text) {
            Err(DagError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("link"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cycles_in_dax_are_rejected() {
        let text = r#"<adag name="x">
  <job id="a" name="t" runtime="1"/>
  <job id="b" name="t" runtime="1"/>
  <child ref="a"><parent ref="b"/></child>
  <child ref="b"><parent ref="a"/></child>
</adag>"#;
        assert!(matches!(parse_dax(text), Err(DagError::Cycle(_))));
    }

    #[test]
    fn escaped_attributes_roundtrip() {
        let mut b = WorkflowBuilder::new("quo\"te");
        b.job("j<1>", "t&x", 1.0).build();
        let wf = b.finish().unwrap();
        let wf2 = parse_dax(&write_dax(&wf)).unwrap();
        assert_eq!(wf2.name(), "quo\"te");
        assert_eq!(wf2.jobs()[0].name, "j<1>");
        assert_eq!(wf2.jobs()[0].xform, "t&x");
    }

    #[test]
    fn self_closing_job_supported() {
        let wf = parse_dax(r#"<adag name="x"><job id="a" name="t" runtime="2"/></adag>"#).unwrap();
        assert_eq!(wf.job_count(), 1);
        assert_eq!(wf.jobs()[0].cpu_seconds, 2.0);
    }

    #[test]
    fn unterminated_tag_errors_with_line() {
        let err = parse_dax("<adag name=\"x\">\n  <job id=\"a\"").unwrap_err();
        assert!(matches!(err, DagError::Parse { line: 2, .. }), "{err:?}");
    }
}
