//! # dewe-dag
//!
//! Workflow DAG data model for the DEWE v2 workflow ensemble execution
//! system (reproduction of *Executing Large Scale Scientific Workflow
//! Ensembles in Public Clouds*, ICPP 2015).
//!
//! A [`Workflow`] is a directed acyclic graph whose vertices are
//! [`JobSpec`]s and whose edges are precedence constraints, primarily
//! induced by data dependencies on [`FileSpec`]s. A [`Ensemble`] is a set of
//! interrelated but independent workflows executed as one scientific
//! analysis — the unit of work the paper is about.
//!
//! The crate is deliberately free of any execution concern: engines
//! (`dewe-core`, `dewe-baseline`) consume the model through the
//! [`DependencyTracker`], a pure state machine that answers the only
//! question the DEWE v2 master daemon ever asks: *which jobs are eligible
//! to run now?*
//!
//! ## Quick example
//!
//! ```
//! use dewe_dag::{WorkflowBuilder, JobState};
//!
//! let mut b = WorkflowBuilder::new("diamond");
//! let raw = b.file("raw.dat", 1 << 20, true);
//! let l = b.file("left.dat", 1 << 10, false);
//! let r = b.file("right.dat", 1 << 10, false);
//! let out = b.file("out.dat", 1 << 10, false);
//!
//! let split_l = b.job("split_l", "split", 1.0).input(raw).output(l).build();
//! let split_r = b.job("split_r", "split", 1.0).input(raw).output(r).build();
//! let join = b.job("join", "join", 2.0).input(l).input(r).output(out).build();
//!
//! let wf = b.finish().expect("acyclic");
//! assert_eq!(wf.job_count(), 3);
//! // Data-dependencies imply split_l -> join and split_r -> join.
//! assert_eq!(wf.parents(join), &[split_l, split_r]);
//!
//! let mut tracker = dewe_dag::DependencyTracker::new(&wf);
//! let ready: Vec<_> = tracker.take_ready();
//! assert_eq!(ready, vec![split_l, split_r]);
//! tracker.complete_in(&wf, split_l);
//! tracker.complete_in(&wf, split_r);
//! assert_eq!(tracker.take_ready(), vec![join]);
//! assert_eq!(tracker.state(join), JobState::Ready);
//! # let _ = raw;
//! ```

mod analysis;
mod dax;
mod dot;
mod ensemble;
mod error;
mod file;
mod format;
mod ids;
mod job;
mod merge;
mod reduce;
mod tracker;
mod workflow;

pub use analysis::{CriticalPath, LevelProfile, WorkflowStats};
pub use dax::{parse_dax, write_dax};
pub use dot::{to_dot, to_dot_collapsed};
pub use ensemble::{Ensemble, EnsembleJobId, EnsembleStats};
pub use error::DagError;
pub use file::FileSpec;
pub use format::{parse_workflow, write_workflow};
pub use ids::{FileId, JobId, WorkflowId};
pub use job::{JobBuilder, JobSpec, DEFAULT_TIMEOUT_SECS};
pub use merge::merge;
pub use reduce::{lint, redundant_edges, transitive_reduction, LintFinding};
pub use tracker::{DependencyTracker, JobState, TrackerStats};
pub use workflow::{Workflow, WorkflowBuilder};
