//! Structural analysis: level profiles, critical paths, per-transformation
//! statistics and blocking-job detection.
//!
//! The paper's motivation section (§II) rests on two structural facts about
//! Montage: (1) the overwhelming majority of jobs are near-identical copies
//! of a few short transformations, and (2) a narrow "waist" of blocking jobs
//! (`mConcatFit`, `mBgModel`) serializes the middle of the workflow. The
//! functions here compute both facts from any DAG.

use std::collections::HashMap;

use crate::ids::JobId;
use crate::workflow::Workflow;

/// Per-transformation aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowStats {
    /// (xform, count, total cpu seconds) sorted by descending count.
    pub by_xform: Vec<(String, usize, f64)>,
    pub total_jobs: usize,
    pub total_cpu_seconds: f64,
    pub input_files: usize,
    pub input_bytes: u64,
    pub intermediate_files: usize,
    pub intermediate_bytes: u64,
    pub edges: usize,
}

impl WorkflowStats {
    /// Compute statistics for a workflow.
    pub fn of(wf: &Workflow) -> Self {
        let mut map: HashMap<&str, (usize, f64)> = HashMap::new();
        for j in wf.jobs() {
            let e = map.entry(&j.xform).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += j.cpu_seconds;
        }
        let mut by_xform: Vec<(String, usize, f64)> =
            map.into_iter().map(|(k, (c, t))| (k.to_string(), c, t)).collect();
        by_xform.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        WorkflowStats {
            by_xform,
            total_jobs: wf.job_count(),
            total_cpu_seconds: wf.total_cpu_seconds(),
            input_files: wf.files().iter().filter(|f| f.initial).count(),
            input_bytes: wf.input_bytes(),
            intermediate_files: wf.produced_file_count(),
            intermediate_bytes: wf.produced_bytes(),
            edges: wf.edge_count(),
        }
    }

    /// Fraction of jobs belonging to the `k` most numerous transformations —
    /// the paper's homogeneity argument ("the majority of these 8,586 jobs
    /// are copies of a few short-running jobs").
    pub fn homogeneity(&self, k: usize) -> f64 {
        if self.total_jobs == 0 {
            return 1.0;
        }
        let top: usize = self.by_xform.iter().take(k).map(|(_, c, _)| *c).sum();
        top as f64 / self.total_jobs as f64
    }
}

/// Jobs grouped by topological level (longest distance from any root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// `levels[l]` = jobs at level `l`.
    pub levels: Vec<Vec<JobId>>,
}

impl LevelProfile {
    /// Compute the level of every job (roots are level 0; a job's level is
    /// one more than its deepest parent).
    pub fn of(wf: &Workflow) -> Self {
        let mut level = vec![0u32; wf.job_count()];
        for &j in wf.topo_order() {
            for &c in wf.children(j) {
                level[c.index()] = level[c.index()].max(level[j.index()] + 1);
            }
        }
        let depth = level.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut levels = vec![Vec::new(); depth];
        for j in wf.job_ids() {
            levels[level[j.index()] as usize].push(j);
        }
        LevelProfile { levels }
    }

    /// Number of levels (DAG depth).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Maximum level width (peak parallelism under unlimited resources).
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Jobs sitting alone on their level — the *blocking jobs* of the paper:
    /// while such a job runs, no other job of the workflow can run
    /// (`mConcatFit` and `mBgModel` in Montage, §II).
    pub fn blocking_jobs(&self) -> Vec<JobId> {
        self.levels.iter().filter(|l| l.len() == 1).map(|l| l[0]).collect()
    }
}

/// Critical path (longest CPU-weighted root-to-sink chain).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Jobs along the path, root first.
    pub jobs: Vec<JobId>,
    /// Sum of `cpu_seconds` along the path — a lower bound on makespan with
    /// unlimited homogeneous workers and free I/O.
    pub cpu_seconds: f64,
}

impl CriticalPath {
    /// Compute the critical path of a workflow.
    pub fn of(wf: &Workflow) -> Self {
        let n = wf.job_count();
        if n == 0 {
            return CriticalPath { jobs: Vec::new(), cpu_seconds: 0.0 };
        }
        // dist[j] = weight of heaviest path ending at j (inclusive).
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<JobId>> = vec![None; n];
        for &j in wf.topo_order() {
            dist[j.index()] += wf.job(j).cpu_seconds;
            for &c in wf.children(j) {
                if dist[j.index()] > dist[c.index()] {
                    dist[c.index()] = dist[j.index()];
                    pred[c.index()] = Some(j);
                }
            }
        }
        let end = (0..n)
            .max_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap())
            .map(JobId::from_index)
            .unwrap();
        let mut jobs = vec![end];
        let mut cur = end;
        while let Some(p) = pred[cur.index()] {
            jobs.push(p);
            cur = p;
        }
        jobs.reverse();
        CriticalPath { jobs, cpu_seconds: dist[end.index()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowBuilder;

    /// fan-in / serial waist / fan-out: a miniature Montage shape.
    ///   p0 p1 p2   (parallel, 1s)
    ///     \ | /
    ///      waist1 (10s)  <- blocking
    ///      waist2 (20s)  <- blocking
    ///     / | \
    ///   b0 b1 b2   (parallel, 2s)
    fn waisted() -> Workflow {
        let mut b = WorkflowBuilder::new("waisted");
        let ps: Vec<_> = (0..3).map(|i| b.job(format!("p{i}"), "proj", 1.0).build()).collect();
        let w1 = b.job("waist1", "concat", 10.0).build();
        let w2 = b.job("waist2", "model", 20.0).build();
        for &p in &ps {
            b.edge(p, w1);
        }
        b.edge(w1, w2);
        for i in 0..3 {
            let c = b.job(format!("b{i}"), "back", 2.0).build();
            b.edge(w2, c);
        }
        b.finish().unwrap()
    }

    #[test]
    fn level_profile_depth_and_width() {
        let wf = waisted();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 4);
        assert_eq!(lp.max_width(), 3);
        assert_eq!(lp.levels[0].len(), 3);
        assert_eq!(lp.levels[1].len(), 1);
        assert_eq!(lp.levels[2].len(), 1);
        assert_eq!(lp.levels[3].len(), 3);
    }

    #[test]
    fn blocking_jobs_are_the_waist() {
        let wf = waisted();
        let lp = LevelProfile::of(&wf);
        let blocking: Vec<_> = lp.blocking_jobs().iter().map(|&j| wf.job(j).name.clone()).collect();
        assert_eq!(blocking, vec!["waist1", "waist2"]);
    }

    #[test]
    fn critical_path_goes_through_waist() {
        let wf = waisted();
        let cp = CriticalPath::of(&wf);
        // 1 (proj) + 10 + 20 + 2 (back) = 33
        assert!((cp.cpu_seconds - 33.0).abs() < 1e-9);
        assert_eq!(cp.jobs.len(), 4);
        let names: Vec<_> = cp.jobs.iter().map(|&j| wf.job(j).xform.clone()).collect();
        assert_eq!(names[1], "concat");
        assert_eq!(names[2], "model");
    }

    #[test]
    fn critical_path_empty_workflow() {
        let wf = WorkflowBuilder::new("e").finish().unwrap();
        let cp = CriticalPath::of(&wf);
        assert!(cp.jobs.is_empty());
        assert_eq!(cp.cpu_seconds, 0.0);
    }

    #[test]
    fn stats_by_xform_sorted_by_count() {
        let wf = waisted();
        let s = WorkflowStats::of(&wf);
        assert_eq!(s.total_jobs, 8);
        assert_eq!(s.by_xform[0].1, 3); // proj or back, both count 3
        assert_eq!(s.edges, 7); // 3 fan-in + 1 waist + 3 fan-out
    }

    #[test]
    fn homogeneity_of_top_2() {
        let wf = waisted();
        let s = WorkflowStats::of(&wf);
        // top-2 xforms (proj + back) = 6 of 8 jobs
        assert!((s.homogeneity(2) - 0.75).abs() < 1e-9);
        assert_eq!(s.homogeneity(usize::MAX), 1.0);
    }

    #[test]
    fn homogeneity_empty_workflow_is_one() {
        let wf = WorkflowBuilder::new("e").finish().unwrap();
        assert_eq!(WorkflowStats::of(&wf).homogeneity(3), 1.0);
    }

    #[test]
    fn single_job_profile() {
        let mut b = WorkflowBuilder::new("one");
        b.job("only", "t", 5.0).build();
        let wf = b.finish().unwrap();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 1);
        assert_eq!(lp.blocking_jobs().len(), 1);
        let cp = CriticalPath::of(&wf);
        assert_eq!(cp.cpu_seconds, 5.0);
    }
}
