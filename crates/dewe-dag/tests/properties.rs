//! Property-based tests for the DAG model.
//!
//! Strategy: generate random layered DAGs (edges only go from lower to
//! higher layers, guaranteeing acyclicity by construction) and assert the
//! structural invariants the engines rely on.

use dewe_dag::{
    parse_workflow, write_workflow, CriticalPath, DependencyTracker, JobId, JobState, LevelProfile,
    Workflow, WorkflowBuilder,
};
use proptest::prelude::*;

/// A random layered DAG description: layer sizes plus an edge-probability
/// seed. Edges are derived deterministically from the seed so shrinking is
/// well-behaved.
#[derive(Debug, Clone)]
struct RandomDag {
    layer_sizes: Vec<usize>,
    edge_seed: u64,
    edge_density: f64,
}

fn random_dag_strategy() -> impl Strategy<Value = RandomDag> {
    (prop::collection::vec(1usize..6, 1..6), any::<u64>(), 0.05f64..0.9).prop_map(
        |(layer_sizes, edge_seed, edge_density)| RandomDag { layer_sizes, edge_seed, edge_density },
    )
}

/// Cheap deterministic hash for edge selection (splitmix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn build(dag: &RandomDag) -> Workflow {
    let mut b = WorkflowBuilder::new("random");
    let mut layers: Vec<Vec<JobId>> = Vec::new();
    let mut n = 0usize;
    for (li, &size) in dag.layer_sizes.iter().enumerate() {
        let mut layer = Vec::new();
        for k in 0..size {
            let cpu = (mix(dag.edge_seed ^ (n as u64)) % 100) as f64 / 10.0;
            layer.push(b.job(format!("l{li}_{k}"), "t", cpu).build());
            n += 1;
        }
        layers.push(layer);
    }
    // Edges between consecutive layers chosen pseudo-randomly.
    for w in layers.windows(2) {
        for &p in &w[0] {
            for &c in &w[1] {
                let h = mix(dag.edge_seed ^ ((p.0 as u64) << 32) ^ c.0 as u64);
                if (h % 1000) as f64 / 1000.0 < dag.edge_density {
                    b.edge(p, c);
                }
            }
        }
    }
    b.finish().expect("layered DAGs are acyclic")
}

proptest! {
    /// Topological order places every parent before each of its children.
    #[test]
    fn topo_order_is_consistent(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let mut pos = vec![usize::MAX; wf.job_count()];
        for (i, &j) in wf.topo_order().iter().enumerate() {
            pos[j.index()] = i;
        }
        for j in wf.job_ids() {
            for &c in wf.children(j) {
                prop_assert!(pos[j.index()] < pos[c.index()]);
            }
        }
    }

    /// parents() and children() are transposes of each other.
    #[test]
    fn adjacency_is_symmetric(dag in random_dag_strategy()) {
        let wf = build(&dag);
        for j in wf.job_ids() {
            for &c in wf.children(j) {
                prop_assert!(wf.parents(c).contains(&j));
            }
            for &p in wf.parents(j) {
                prop_assert!(wf.children(p).contains(&j));
            }
        }
    }

    /// Driving the tracker to completion in any topological order visits
    /// every job exactly once and never leaves the DAG stuck.
    #[test]
    fn tracker_drains_fully(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let mut tracker = DependencyTracker::new(&wf);
        let mut executed = 0usize;
        loop {
            let ready = tracker.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                prop_assert_eq!(tracker.state(j), JobState::Ready);
                tracker.mark_running(j);
                tracker.complete_in(&wf, j);
                executed += 1;
            }
        }
        prop_assert!(tracker.is_complete(), "tracker stuck with {} of {} done",
            executed, wf.job_count());
        prop_assert_eq!(executed, wf.job_count());
    }

    /// Tracker progress is immune to timeout-resubmission churn: resubmitting
    /// every running job once before completing it changes nothing.
    #[test]
    fn tracker_survives_resubmission(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let mut tracker = DependencyTracker::new(&wf);
        let mut executed = 0usize;
        loop {
            let ready = tracker.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                tracker.mark_running(j);
                // Simulate a worker death + timeout: job goes back to Ready.
                tracker.resubmit(j);
                let requeued = tracker.take_ready();
                prop_assert!(requeued.contains(&j));
                for r in requeued {
                    tracker.mark_running(r);
                    tracker.complete_in(&wf, r);
                    executed += 1;
                }
            }
        }
        prop_assert!(tracker.is_complete());
        prop_assert_eq!(executed, wf.job_count());
    }

    /// The text format round-trips: parse(write(wf)) == wf structurally.
    #[test]
    fn format_roundtrip(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let text = write_workflow(&wf);
        let wf2 = parse_workflow(&text).unwrap();
        prop_assert_eq!(wf.job_count(), wf2.job_count());
        prop_assert_eq!(wf.edge_count(), wf2.edge_count());
        for (a, b) in wf.jobs().iter().zip(wf2.jobs()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.cpu_seconds, b.cpu_seconds);
        }
        for j in wf.job_ids() {
            prop_assert_eq!(wf.children(j), wf2.children(j));
        }
    }

    /// Critical path weight is at least the heaviest single job and at most
    /// the total CPU volume.
    #[test]
    fn critical_path_bounds(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let cp = CriticalPath::of(&wf);
        let heaviest = wf.jobs().iter().map(|j| j.cpu_seconds).fold(0.0, f64::max);
        prop_assert!(cp.cpu_seconds >= heaviest - 1e-9);
        prop_assert!(cp.cpu_seconds <= wf.total_cpu_seconds() + 1e-9);
        // The path itself must be a chain.
        for pair in cp.jobs.windows(2) {
            prop_assert!(wf.children(pair[0]).contains(&pair[1]));
        }
    }

    /// Level profile: every job appears exactly once; level of child > parent.
    #[test]
    fn level_profile_partitions_jobs(dag in random_dag_strategy()) {
        let wf = build(&dag);
        let lp = LevelProfile::of(&wf);
        let mut level_of = vec![usize::MAX; wf.job_count()];
        let mut seen = 0usize;
        for (li, level) in lp.levels.iter().enumerate() {
            for &j in level {
                prop_assert_eq!(level_of[j.index()], usize::MAX, "job in two levels");
                level_of[j.index()] = li;
                seen += 1;
            }
        }
        prop_assert_eq!(seen, wf.job_count());
        for j in wf.job_ids() {
            for &c in wf.children(j) {
                prop_assert!(level_of[c.index()] > level_of[j.index()]);
            }
        }
    }
}
