//! Property tests for every DAG-family generator.
//!
//! Each family must hold, for any seed and any in-range size:
//!
//! * **seeded determinism** — the same config builds the same workflow,
//!   job for job and edge for edge;
//! * **acyclicity / executability** — a dependency-tracker sweep
//!   completes every job (a cycle or dangling parent would stall it);
//! * **connectivity** — every non-root job has at least one parent, so
//!   the whole graph is reachable from the roots;
//! * **shape stats** — job counts match the closed-form `total_jobs`,
//!   and depth / level widths match the family's documented structure.

use dewe_montage::{
    random_layered, AdversarialConfig, AdversarialShape, CyberShakeConfig, EpigenomicsConfig,
    LigoConfig, MontageConfig, RandomDagConfig, SiphtConfig,
};

use dewe_dag::{DependencyTracker, LevelProfile, Workflow};
use proptest::prelude::*;

/// Run the workflow to completion through a dependency tracker: proves
/// acyclicity and that every job is reachable from the roots.
fn executes_fully(wf: &Workflow) {
    let mut t = DependencyTracker::new(wf);
    let mut done = 0usize;
    loop {
        let ready = t.take_ready();
        if ready.is_empty() {
            break;
        }
        for j in ready {
            t.mark_running(j);
            t.complete_in(wf, j);
            done += 1;
        }
    }
    assert_eq!(done, wf.job_count(), "{}: unreachable or cyclic jobs", wf.name());
    assert!(t.is_complete());
}

/// Every non-root job has a parent (no disconnected islands past the
/// root level).
fn connected_from_roots(wf: &Workflow) {
    let lp = LevelProfile::of(wf);
    for level in lp.levels.iter().skip(1) {
        for &j in level {
            assert!(!wf.parents(j).is_empty(), "{}: job {j:?} floats", wf.name());
        }
    }
}

fn same_workflow(a: &Workflow, b: &Workflow) {
    assert_eq!(a.job_count(), b.job_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for (x, y) in a.jobs().iter().zip(b.jobs()) {
        assert_eq!(x, y);
    }
    for j in 0..a.job_count() {
        let id = dewe_dag::JobId::from_index(j);
        assert_eq!(a.parents(id), b.parents(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn montage_properties(seed in 0u64..1024, tenths in 2u32..40) {
        let degree = f64::from(tenths) / 10.0;
        let cfg = MontageConfig::degree(degree).with_seed(seed);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.shape().total_jobs);
        same_workflow(&wf, &MontageConfig::degree(degree).with_seed(seed).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        // Montage has a global blocking waist (mConcatFit/mBgModel tail).
        let lp = LevelProfile::of(&wf);
        prop_assert!(lp.depth() >= 6, "montage depth {}", lp.depth());
    }

    #[test]
    fn cybershake_properties(seed in 0u64..1024, variations in 1usize..40) {
        let cfg = CyberShakeConfig::new(variations).with_seed(seed);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.total_jobs());
        same_workflow(&wf, &CyberShakeConfig::new(variations).with_seed(seed).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        let lp = LevelProfile::of(&wf);
        prop_assert_eq!(lp.depth(), 4);
        prop_assert_eq!(lp.levels[0].len(), 2);
        prop_assert_eq!(lp.levels[1].len(), variations);
    }

    #[test]
    fn epigenomics_properties(seed in 0u64..1024, lanes in 1usize..4, chunks in 1usize..6) {
        let cfg = EpigenomicsConfig::new(lanes, chunks).with_seed(seed);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.total_jobs());
        same_workflow(&wf, &EpigenomicsConfig::new(lanes, chunks).with_seed(seed).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        // split -> 4 chunk stages -> lane merge -> global merge -> index -> pileup
        let lp = LevelProfile::of(&wf);
        prop_assert_eq!(lp.depth(), 9);
        prop_assert_eq!(lp.levels[lp.depth() - 1].len(), 1);
    }

    #[test]
    fn ligo_properties(seed in 0u64..1024, groups in 1usize..4, banks in 1usize..6) {
        let cfg = LigoConfig::new(groups, banks).with_seed(seed);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.total_jobs());
        same_workflow(&wf, &LigoConfig::new(groups, banks).with_seed(seed).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        let lp = LevelProfile::of(&wf);
        prop_assert_eq!(lp.depth(), 6);
        // Per-group Thinca waists: the coincidence levels hold exactly
        // one job per group.
        prop_assert_eq!(lp.levels[2].len(), groups);
        prop_assert_eq!(lp.levels[5].len(), groups);
    }

    #[test]
    fn sipht_properties(seed in 0u64..1024, patser in 1usize..30) {
        let cfg = SiphtConfig::new(patser).with_seed(seed);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.total_jobs());
        same_workflow(&wf, &SiphtConfig::new(patser).with_seed(seed).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        let lp = LevelProfile::of(&wf);
        prop_assert_eq!(lp.depth(), 6);
        prop_assert_eq!(lp.levels[5].len(), 1, "annotate is the sole sink");
    }

    #[test]
    fn random_properties(seed in 0u64..1024, layers in 1usize..6, width in 1usize..10) {
        let cfg = RandomDagConfig { layers, width, seed, ..RandomDagConfig::default() };
        let wf = random_layered(&cfg);
        prop_assert_eq!(wf.job_count(), layers * width);
        same_workflow(&wf, &random_layered(&cfg));
        executes_fully(&wf);
        connected_from_roots(&wf);
        prop_assert_eq!(LevelProfile::of(&wf).depth(), layers);
    }

    #[test]
    fn adversarial_properties(seed in 0u64..1024, scale in 2usize..24) {
        let cfg = AdversarialConfig::from_seed(seed, scale);
        let wf = cfg.build();
        prop_assert_eq!(wf.job_count(), cfg.total_jobs());
        same_workflow(&wf, &AdversarialConfig::from_seed(seed, scale).build());
        executes_fully(&wf);
        connected_from_roots(&wf);
        let lp = LevelProfile::of(&wf);
        match cfg.shape {
            AdversarialShape::WideFanOut { width } => {
                prop_assert_eq!(lp.depth(), 3);
                prop_assert_eq!(lp.levels[1].len(), width);
            }
            AdversarialShape::DeepChain { depth } => {
                prop_assert_eq!(lp.depth(), depth);
                prop_assert!(lp.levels.iter().all(|l| l.len() == 1));
            }
            AdversarialShape::DiamondStorm { storms, width } => {
                prop_assert_eq!(lp.depth(), 3 * storms);
                prop_assert_eq!(lp.levels[1].len(), width);
            }
            AdversarialShape::FanInCliff { width } => {
                prop_assert_eq!(lp.depth(), 2);
                prop_assert_eq!(lp.levels[0].len(), width);
                prop_assert_eq!(lp.levels[1].len(), 1);
            }
        }
    }
}
