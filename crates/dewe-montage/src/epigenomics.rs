//! Epigenomics (USC genome-mapping) workflow generator.
//!
//! Epigenomics is one of the five canonical Pegasus-gallery workflows used
//! throughout the scientific-workflow literature the paper builds on. It
//! is a *data-parallel pipeline*: a DNA-methylation read set is split into
//! chunks, each chunk runs a fixed 4-stage per-lane pipeline, and results
//! merge into a global map-merge / pileup tail:
//!
//! ```text
//!            fastqSplit (per lane)
//!      filterContams -> sol2sanger -> fastq2bfq -> map   (per chunk)
//!            mapMerge (per lane) -> mapMerge (global)
//!            maqIndex -> pileup
//! ```
//!
//! Its character is long chains of medium-length jobs with narrow fan-in —
//! the opposite extreme from Montage's wide short-job fans — exercising an
//! engine's behaviour when the queue is mostly *empty* and per-job latency
//! dominates.

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Epigenomics-like generator.
#[derive(Debug, Clone)]
pub struct EpigenomicsConfig {
    /// Sequencer lanes (independent sub-pipelines until the global merge).
    pub lanes: usize,
    /// Chunks per lane (width of each lane's data-parallel section).
    pub chunks_per_lane: usize,
    /// Workflow name.
    pub name: String,
    /// RNG seed for runtime jitter.
    pub seed: u64,
    /// Relative runtime jitter.
    pub jitter: f64,
}

impl EpigenomicsConfig {
    /// A workflow with `lanes` lanes of `chunks_per_lane` chunks.
    pub fn new(lanes: usize, chunks_per_lane: usize) -> Self {
        assert!(lanes > 0 && chunks_per_lane > 0);
        Self {
            lanes,
            chunks_per_lane,
            name: format!("epigenomics_{lanes}x{chunks_per_lane}"),
            seed: 42,
            jitter: 0.2,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total jobs: per lane `1 + 4*chunks + 1`, plus the global
    /// `mapMerge + maqIndex + pileup` tail.
    pub fn total_jobs(&self) -> usize {
        self.lanes * (4 * self.chunks_per_lane + 2) + 3
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());
        let mut jit = |mean: f64| -> f64 {
            if self.jitter <= 0.0 {
                mean
            } else {
                mean * rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
            }
        };

        let mut lane_merged = Vec::with_capacity(self.lanes);
        for l in 0..self.lanes {
            let raw = b.file(format!("l{l}.fastq"), 2_000_000_000, true);
            // fastqSplit fans the lane into chunks.
            let mut chunk_files = Vec::with_capacity(self.chunks_per_lane);
            for c in 0..self.chunks_per_lane {
                chunk_files.push(b.file(
                    format!("l{l}_c{c}.fastq"),
                    2_000_000_000 / self.chunks_per_lane as u64,
                    false,
                ));
            }
            let split = b
                .job(format!("l{l}_fastqSplit"), "fastqSplit", jit(35.0))
                .input(raw)
                .outputs(chunk_files.iter().copied())
                .build();
            let _ = split;

            let mut mapped = Vec::with_capacity(self.chunks_per_lane);
            for (c, &chunk) in chunk_files.iter().enumerate() {
                let filtered = b.file(
                    format!("l{l}_c{c}.filtered"),
                    900_000_000 / self.chunks_per_lane as u64,
                    false,
                );
                b.job(format!("l{l}_c{c}_filterContams"), "filterContams", jit(120.0))
                    .input(chunk)
                    .output(filtered)
                    .build();
                let sanger = b.file(
                    format!("l{l}_c{c}.sanger"),
                    900_000_000 / self.chunks_per_lane as u64,
                    false,
                );
                b.job(format!("l{l}_c{c}_sol2sanger"), "sol2sanger", jit(40.0))
                    .input(filtered)
                    .output(sanger)
                    .build();
                let bfq = b.file(
                    format!("l{l}_c{c}.bfq"),
                    400_000_000 / self.chunks_per_lane as u64,
                    false,
                );
                b.job(format!("l{l}_c{c}_fastq2bfq"), "fastq2bfq", jit(25.0))
                    .input(sanger)
                    .output(bfq)
                    .build();
                let map = b.file(
                    format!("l{l}_c{c}.map"),
                    300_000_000 / self.chunks_per_lane as u64,
                    false,
                );
                b.job(format!("l{l}_c{c}_map"), "map", jit(280.0)).input(bfq).output(map).build();
                mapped.push(map);
            }
            let lane_map = b.file(format!("l{l}.map"), 300_000_000, false);
            b.job(format!("l{l}_mapMerge"), "mapMerge", jit(45.0))
                .inputs(mapped.iter().copied())
                .output(lane_map)
                .build();
            lane_merged.push(lane_map);
        }
        let global_map = b.file("global.map", 1_200_000_000, false);
        b.job("mapMergeGlobal", "mapMerge", jit(90.0))
            .inputs(lane_merged.iter().copied())
            .output(global_map)
            .build();
        let index = b.file("global.bfa", 600_000_000, false);
        b.job("maqIndex", "maqIndex", jit(140.0)).input(global_map).output(index).build();
        let pileup = b.file("pileup.txt", 200_000_000, false);
        b.job("pileup", "pileup", jit(110.0)).input(index).output(pileup).build();

        b.finish().expect("generated Epigenomics DAG must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{CriticalPath, LevelProfile};

    #[test]
    fn job_count_formula() {
        let cfg = EpigenomicsConfig::new(3, 8);
        assert_eq!(cfg.build().job_count(), cfg.total_jobs());
        assert_eq!(cfg.total_jobs(), 3 * 34 + 3);
    }

    #[test]
    fn pipeline_depth() {
        let wf = EpigenomicsConfig::new(2, 4).build();
        let lp = LevelProfile::of(&wf);
        // split -> 4 chunk stages -> lane merge -> global merge -> index -> pileup
        assert_eq!(lp.depth(), 9);
        // The global tail serializes: last three levels have width 1.
        assert_eq!(lp.levels[lp.depth() - 1].len(), 1);
        assert_eq!(lp.levels[lp.depth() - 2].len(), 1);
        assert_eq!(lp.levels[lp.depth() - 3].len(), 1);
    }

    #[test]
    fn critical_path_runs_through_map_stage() {
        let wf = EpigenomicsConfig::new(1, 4).build();
        let cp = CriticalPath::of(&wf);
        let xforms: Vec<_> = cp.jobs.iter().map(|&j| wf.job(j).xform.clone()).collect();
        assert!(xforms.contains(&"map".to_string()), "map dominates: {xforms:?}");
        assert!(xforms.last().unwrap() == "pileup");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = EpigenomicsConfig::new(2, 3).with_seed(5).build();
        let b = EpigenomicsConfig::new(2, 3).with_seed(5).build();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn executes_fully() {
        let wf = EpigenomicsConfig::new(2, 3).build();
        let mut t = dewe_dag::DependencyTracker::new(&wf);
        let mut done = 0;
        loop {
            let ready = t.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                t.mark_running(j);
                t.complete_in(&wf, j);
                done += 1;
            }
        }
        assert_eq!(done, wf.job_count());
    }
}
