//! Random layered DAG generator for fuzzing and stress tests.

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_layered`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of layers (DAG depth).
    pub layers: usize,
    /// Jobs per layer.
    pub width: usize,
    /// Probability of an edge between jobs in consecutive layers.
    pub edge_probability: f64,
    /// Mean CPU seconds per job.
    pub mean_cpu_seconds: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        Self { layers: 4, width: 8, edge_probability: 0.3, mean_cpu_seconds: 1.0, seed: 42 }
    }
}

/// Generate a random layered DAG: acyclic by construction (edges only go
/// from layer *l* to layer *l+1*), every non-root job has at least one
/// parent so the whole graph is reachable from the roots.
pub fn random_layered(cfg: &RandomDagConfig) -> Workflow {
    assert!(cfg.layers > 0 && cfg.width > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = WorkflowBuilder::new(format!("random_{}x{}", cfg.layers, cfg.width));
    let mut prev: Vec<dewe_dag::JobId> = Vec::new();
    for l in 0..cfg.layers {
        let mut layer = Vec::with_capacity(cfg.width);
        for k in 0..cfg.width {
            let cpu = cfg.mean_cpu_seconds * rng.gen_range(0.5..1.5);
            let j = b.job(format!("L{l}_{k}"), format!("xform{l}"), cpu).build();
            if l > 0 {
                let mut connected = false;
                for &p in &prev {
                    if rng.gen_bool(cfg.edge_probability) {
                        b.edge(p, j);
                        connected = true;
                    }
                }
                if !connected {
                    // guarantee reachability
                    let p = prev[rng.gen_range(0..prev.len())];
                    b.edge(p, j);
                }
            }
            layer.push(j);
        }
        prev = layer;
    }
    b.finish().expect("layered DAG is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{DependencyTracker, LevelProfile};

    #[test]
    fn shape_matches_config() {
        let cfg = RandomDagConfig { layers: 5, width: 10, ..Default::default() };
        let wf = random_layered(&cfg);
        assert_eq!(wf.job_count(), 50);
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 5);
    }

    #[test]
    fn every_nonroot_job_has_a_parent() {
        let wf = random_layered(&RandomDagConfig::default());
        let lp = LevelProfile::of(&wf);
        for level in lp.levels.iter().skip(1) {
            for &j in level {
                assert!(!wf.parents(j).is_empty());
            }
        }
    }

    #[test]
    fn fully_executable() {
        let wf = random_layered(&RandomDagConfig { layers: 6, width: 6, ..Default::default() });
        let mut t = DependencyTracker::new(&wf);
        let mut done = 0;
        loop {
            let ready = t.take_ready();
            if ready.is_empty() {
                break;
            }
            for j in ready {
                t.mark_running(j);
                t.complete_in(&wf, j);
                done += 1;
            }
        }
        assert_eq!(done, wf.job_count());
        assert!(t.is_complete());
    }

    #[test]
    fn deterministic() {
        let cfg = RandomDagConfig::default();
        let a = random_layered(&cfg);
        let b = random_layered(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
