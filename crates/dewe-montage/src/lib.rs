//! # dewe-montage
//!
//! Synthetic scientific-workflow generators calibrated against the
//! workloads of the DEWE v2 paper (*Executing Large Scale Scientific
//! Workflow Ensembles in Public Clouds*, ICPP 2015).
//!
//! The paper's sole evaluation workload is **Montage**, the astronomical
//! image mosaic engine. Its headline data point: a 6.0-degree Montage
//! workflow contains **8,586 jobs**, **1,444 input files (4.0 GB)** and
//! **22,850 intermediate files (35 GB)**. [`MontageConfig::degree`]
//! reproduces those numbers (§ "Calibration" in DESIGN.md):
//!
//! ```
//! use dewe_montage::MontageConfig;
//!
//! let wf = MontageConfig::degree(6.0).build();
//! assert_eq!(wf.job_count(), 8_586);
//! assert_eq!(wf.files().iter().filter(|f| f.initial).count(), 1_444);
//! ```
//!
//! Four further generators cover the rest of the canonical Pegasus
//! workflow gallery the scientific-workflow literature evaluates against:
//! [`LigoConfig`] (inspiral analysis, per-group synchronization),
//! [`CyberShakeConfig`] (seismic hazard, read-dominated),
//! [`EpigenomicsConfig`] (genome mapping, deep data-parallel pipelines)
//! and [`SiphtConfig`] (sRNA search, heterogeneous diamond). A
//! [`random_layered`] generator supports fuzzing, and
//! [`AdversarialConfig`] builds deliberately pathological shapes (wide
//! fan-out, deep chains, diamond storms, fan-in cliffs) for the
//! differential oracle.

mod adversarial;
mod cybershake;
mod epigenomics;
mod ligo;
mod montage;
mod random;
mod sipht;

pub use adversarial::{AdversarialConfig, AdversarialShape};
pub use cybershake::CyberShakeConfig;
pub use epigenomics::EpigenomicsConfig;
pub use ligo::LigoConfig;
pub use montage::{MontageConfig, MontageShape, GB};
pub use random::{random_layered, RandomDagConfig};
pub use sipht::SiphtConfig;
