//! SIPHT (sRNA identification) workflow generator.
//!
//! SIPHT — the bacterial small-RNA search from the Pegasus workflow
//! gallery — completes this crate's set of canonical shapes. Per candidate
//! replicon it runs a two-sided analysis that meets in a final
//! sRNA-annotation step:
//!
//! ```text
//!   Patser (xN)──┐
//!                ├─> Patser_concat ─┐
//!   Transterm ───┤                  │
//!   Findterm ────┼──> SRNA ─────────┼─> FFN_parse -> BLAST* (x5) ─┐
//!   RNAMotif ────┘                  │                             ├─> SRNA_annotate
//!   Blast_candidates ───────────────┘─────────────────────────────┘
//! ```
//!
//! Structurally it is a *moderate-width diamond with many distinct
//! transformations* — low homogeneity, the opposite of the paper's
//! Montage premise — which makes it the stress case for profiling-based
//! provisioning (per-transformation statistics get thin).

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the SIPHT-like generator.
#[derive(Debug, Clone)]
pub struct SiphtConfig {
    /// Patser fan width (transcription-factor binding-site scans).
    pub patser_jobs: usize,
    /// Workflow name.
    pub name: String,
    /// RNG seed for runtime jitter.
    pub seed: u64,
    /// Relative runtime jitter.
    pub jitter: f64,
}

impl SiphtConfig {
    /// A workflow with the given Patser fan width.
    pub fn new(patser_jobs: usize) -> Self {
        assert!(patser_jobs > 0);
        Self { patser_jobs, name: format!("sipht_{patser_jobs}"), seed: 42, jitter: 0.2 }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total jobs: patser fan + concat + 3 finders + SRNA + FFN parse +
    /// 5 BLAST variants + blast-candidates + annotate.
    pub fn total_jobs(&self) -> usize {
        self.patser_jobs + 1 + 3 + 1 + 1 + 5 + 1 + 1
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());
        let mut jit = |mean: f64| -> f64 {
            if self.jitter <= 0.0 {
                mean
            } else {
                mean * rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
            }
        };

        let genome = b.file("replicon.fasta", 15_000_000, true);
        // Patser fan.
        let mut patser_out = Vec::with_capacity(self.patser_jobs);
        for k in 0..self.patser_jobs {
            let out = b.file(format!("patser_{k}.out"), 400_000, false);
            patser_out.push(out);
            b.job(format!("Patser_{k}"), "Patser", jit(2.0)).input(genome).output(out).build();
        }
        let patser_cat = b.file("patser.concat", 2_000_000, false);
        b.job("Patser_concat", "Patser_concat", jit(1.5))
            .inputs(patser_out.iter().copied())
            .output(patser_cat)
            .build();

        // Terminator / motif finders.
        let transterm = b.file("transterm.out", 1_500_000, false);
        b.job("Transterm", "Transterm", jit(60.0)).input(genome).output(transterm).build();
        let findterm = b.file("findterm.out", 8_000_000, false);
        b.job("Findterm", "Findterm", jit(90.0)).input(genome).output(findterm).build();
        let rnamotif = b.file("rnamotif.out", 1_200_000, false);
        b.job("RNAMotif", "RNAMotif", jit(45.0)).input(genome).output(rnamotif).build();

        // Core sRNA prediction joins everything.
        let srna = b.file("srna.out", 5_000_000, false);
        b.job("SRNA", "SRNA", jit(25.0))
            .input(patser_cat)
            .input(transterm)
            .input(findterm)
            .input(rnamotif)
            .output(srna)
            .build();

        // Parse + BLAST battery.
        let ffn = b.file("srna.ffn", 2_500_000, false);
        b.job("FFN_parse", "FFN_parse", jit(4.0)).input(srna).output(ffn).build();
        let mut blast_out = Vec::new();
        for (name, secs, out_bytes) in [
            ("Blast_NT", 110.0, 9_000_000u64),
            ("Blast_synteny", 75.0, 4_000_000),
            ("Blast_candidate", 35.0, 2_000_000),
            ("Blast_QRNA", 160.0, 6_000_000),
            ("Blast_paralogues", 50.0, 3_000_000),
        ] {
            let out = b.file(format!("{name}.out"), out_bytes, false);
            blast_out.push(out);
            b.job(name, name, jit(secs)).input(ffn).output(out).build();
        }
        // Independent side input for annotation.
        let cand = b.file("candidates.out", 1_000_000, false);
        b.job("Blast_candidates", "Blast_candidates", jit(20.0)).input(genome).output(cand).build();

        let annotation = b.file("annotation.out", 3_000_000, false);
        b.job("SRNA_annotate", "SRNA_annotate", jit(12.0))
            .input(srna)
            .input(cand)
            .inputs(blast_out.iter().copied())
            .output(annotation)
            .build();

        b.finish().expect("generated SIPHT DAG must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{LevelProfile, WorkflowStats};

    #[test]
    fn job_count_formula() {
        let cfg = SiphtConfig::new(20);
        assert_eq!(cfg.build().job_count(), cfg.total_jobs());
        assert_eq!(cfg.total_jobs(), 33);
    }

    #[test]
    fn srna_is_the_join_point() {
        let wf = SiphtConfig::new(8).build();
        let srna = wf.job_by_name("SRNA").unwrap();
        // patser_concat + transterm + findterm + rnamotif
        assert_eq!(wf.parents(srna).len(), 4);
        let annotate = wf.job_by_name("SRNA_annotate").unwrap();
        // srna + candidates + 5 blasts
        assert_eq!(wf.parents(annotate).len(), 7);
        assert_eq!(wf.sinks(), vec![annotate]);
    }

    #[test]
    fn low_homogeneity_contrasts_with_montage() {
        // Only the Patser fan repeats; with a small fan the top-3
        // transformations cover far less of the workflow than Montage's
        // >99%.
        let wf = SiphtConfig::new(5).build();
        let stats = WorkflowStats::of(&wf);
        assert!(stats.homogeneity(3) < 0.65, "got {}", stats.homogeneity(3));
    }

    #[test]
    fn six_level_structure() {
        // fan -> Patser_concat -> SRNA -> FFN_parse -> BLASTs -> annotate
        let wf = SiphtConfig::new(6).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 6);
        assert_eq!(lp.levels[5].len(), 1, "annotate is the sole sink");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SiphtConfig::new(7).with_seed(3).build();
        let b = SiphtConfig::new(7).with_seed(3).build();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
    }
}
