//! Calibrated Montage workflow generator.
//!
//! Montage builds a square sky mosaic in three stages (paper Fig. 1/2):
//!
//! 1. **Reprojection** — one `mProjectPP` per input image, then one
//!    `mDiffFit` per overlapping image pair. Massively parallel,
//!    CPU-bound, seconds-long jobs.
//! 2. **Background modeling** — `mConcatFit` then `mBgModel`, two serial
//!    single-threaded *blocking jobs* during which nothing else in the
//!    workflow can run (~40% of the single-workflow makespan).
//! 3. **Background correction & assembly** — one `mBackground` per image
//!    (parallel, I/O-heavy), then `mImgTbl` → `mAdd` → `mShrink` → `mJpeg`.
//!
//! ## Calibration
//!
//! A `d`-degree workflow images a d×d degree square with
//! `n = round(6.3333 d)` images per side (d=6 → 38, n² = 1,444 matching the
//! paper's 1,444 input files). Overlap pairs are the 8-neighbourhood grid
//! adjacencies `(n−1)(4n−2)` plus a calibrated sky-geometry correction of
//! `round(0.0983 n²)` extra pairs, which lands exactly on the paper's job
//! count: 1,444 + 5,692 + 2 + 1,444 + 4 = **8,586** jobs at d=6. File sizes
//! are chosen so the d=6 totals match the paper's 4.0 GB input / 35 GB
//! intermediate volumes within a few percent (asserted by tests).

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decimal gigabyte, the unit the paper reports data volumes in.
pub const GB: f64 = 1e9;

/// Mean CPU seconds per transformation, estimated from the paper's stage
/// timings on c3.8xlarge (32 vCPUs, single 6.0° workflow ≈ 600 s makespan
/// with stage 2 ≈ 40%).
mod cpu {
    pub const M_PROJECT_PP: f64 = 1.7;
    pub const M_DIFF_FIT: f64 = 0.9;
    pub const M_CONCAT_FIT: f64 = 105.0;
    pub const M_BG_MODEL: f64 = 135.0;
    pub const M_BACKGROUND: f64 = 0.35;
    pub const M_IMG_TBL: f64 = 10.0;
    pub const M_ADD: f64 = 25.0;
    pub const M_SHRINK: f64 = 10.0;
    pub const M_JPEG: f64 = 20.0;
}

/// File sizes in bytes (calibrated to 4.0 GB inputs / 35 GB intermediates
/// at d = 6.0).
mod size {
    pub const RAW: u64 = 2_770_000; // 1,444 x 2.77 MB  = 4.0 GB
    pub const PROJ_IMG: u64 = 4_000_000; // projected image
    pub const PROJ_AREA: u64 = 4_000_000; // area map
    pub const DIFF_IMG: u64 = 2_900_000; // difference image
    pub const DIFF_AREA: u64 = 800_000;
    pub const FIT_TBL: u64 = 2_048; // plane-fit parameters
    pub const CORR_IMG: u64 = 500_000; // corrected image
    pub const CORR_AREA: u64 = 100_000;
    pub const FITS_TBL: u64 = 3_000_000; // concatenated fits
    pub const CORRECTIONS: u64 = 1_000_000;
    pub const IMAGES_TBL: u64 = 1_000_000;
    pub const MOSAIC: u64 = 1_200_000_000;
    pub const MOSAIC_AREA: u64 = 600_000_000;
    pub const SHRUNKEN: u64 = 25_000_000;
    pub const JPEG: u64 = 5_000_000;
}

/// Configuration for the Montage generator.
#[derive(Debug, Clone)]
pub struct MontageConfig {
    /// Mosaic size in degrees (the paper uses 6.0).
    pub degree: f64,
    /// Workflow name (defaults to `montage_<degree>deg`).
    pub name: String,
    /// RNG seed for per-job runtime jitter.
    pub seed: u64,
    /// Relative runtime jitter: each job's CPU time is drawn uniformly from
    /// `mean * (1 ± jitter)`. The paper's premise is near-homogeneous jobs;
    /// 0.2 keeps them "nearly identical" while avoiding lockstep artifacts.
    pub jitter: f64,
    /// Number of cores the blocking jobs can exploit (1 in the paper's
    /// stock Montage; >1 models the OpenMP variant of §III.D).
    pub blocking_job_cores: u32,
    /// Per-job timeout in seconds applied to every job (the paper's
    /// system-wide default). `None` leaves the engine default in force.
    pub timeout_secs: Option<f64>,
}

impl MontageConfig {
    /// Standard configuration for a `d`-degree mosaic.
    pub fn degree(d: f64) -> Self {
        assert!(d > 0.0 && d <= 12.0, "degree must be in (0, 12]");
        Self {
            degree: d,
            name: format!("montage_{d}deg"),
            seed: 42,
            jitter: 0.2,
            blocking_job_cores: 1,
            timeout_secs: None,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the workflow name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Model OpenMP-parallel blocking jobs (paper §III.D).
    pub fn with_blocking_job_cores(mut self, cores: u32) -> Self {
        self.blocking_job_cores = cores.max(1);
        self
    }

    /// Apply a uniform per-job timeout.
    pub fn with_timeout_secs(mut self, secs: f64) -> Self {
        self.timeout_secs = Some(secs);
        self
    }

    /// Expected structural counts without building the workflow.
    pub fn shape(&self) -> MontageShape {
        MontageShape::for_degree(self.degree)
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let shape = self.shape();
        let n = shape.n_side;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());

        let jit = |rng: &mut StdRng, mean: f64, jitter: f64| -> f64 {
            if jitter <= 0.0 {
                mean
            } else {
                mean * rng.gen_range(1.0 - jitter..=1.0 + jitter)
            }
        };

        // --- Files -------------------------------------------------------
        let idx = |r: usize, c: usize| r * n + c;
        let mut raw = Vec::with_capacity(n * n);
        let mut proj = Vec::with_capacity(n * n);
        let mut proj_area = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                raw.push(b.file(format!("raw_{r}_{c}.fits"), size::RAW, true));
                proj.push(b.file(format!("proj_{r}_{c}.fits"), size::PROJ_IMG, false));
                proj_area.push(b.file(format!("proj_area_{r}_{c}.fits"), size::PROJ_AREA, false));
            }
        }

        // --- Stage 1a: mProjectPP ---------------------------------------
        let mut project_jobs = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                let mut jb = b
                    .job(
                        format!("mProjectPP_{r}_{c}"),
                        "mProjectPP",
                        jit(&mut rng, cpu::M_PROJECT_PP, self.jitter),
                    )
                    .input(raw[i])
                    .output(proj[i])
                    .output(proj_area[i]);
                if let Some(t) = self.timeout_secs {
                    jb = jb.timeout_secs(t);
                }
                project_jobs.push(jb.build());
            }
        }

        // --- Stage 1b: mDiffFit, one per overlapping pair ----------------
        let pairs = overlap_pairs(n, shape.extra_overlaps, self.seed);
        debug_assert_eq!(pairs.len(), shape.m_diff_fit);
        let mut fit_files = Vec::with_capacity(pairs.len());
        for (k, &(a, c)) in pairs.iter().enumerate() {
            let diff = b.file(format!("diff_{k}.fits"), size::DIFF_IMG, false);
            let darea = b.file(format!("diff_area_{k}.fits"), size::DIFF_AREA, false);
            let fit = b.file(format!("fit_{k}.tbl"), size::FIT_TBL, false);
            fit_files.push(fit);
            let mut jb = b
                .job(
                    format!("mDiffFit_{k}"),
                    "mDiffFit",
                    jit(&mut rng, cpu::M_DIFF_FIT, self.jitter),
                )
                .input(proj[a])
                .input(proj[c])
                .output(diff)
                .output(darea)
                .output(fit);
            if let Some(t) = self.timeout_secs {
                jb = jb.timeout_secs(t);
            }
            jb.build();
        }

        // --- Stage 2: blocking jobs --------------------------------------
        let fits_tbl = b.file("fits.tbl", size::FITS_TBL, false);
        let mut jb = b
            .job("mConcatFit", "mConcatFit", jit(&mut rng, cpu::M_CONCAT_FIT, self.jitter))
            .inputs(fit_files.iter().copied())
            .output(fits_tbl)
            .cores(self.blocking_job_cores);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        let corrections = b.file("corrections.tbl", size::CORRECTIONS, false);
        let mut jb = b
            .job("mBgModel", "mBgModel", jit(&mut rng, cpu::M_BG_MODEL, self.jitter))
            .input(fits_tbl)
            .output(corrections)
            .cores(self.blocking_job_cores);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        // --- Stage 3: mBackground fan-out --------------------------------
        let mut corr = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                let ci = b.file(format!("corr_{r}_{c}.fits"), size::CORR_IMG, false);
                let ca = b.file(format!("corr_area_{r}_{c}.fits"), size::CORR_AREA, false);
                corr.push(ci);
                let mut jb = b
                    .job(
                        format!("mBackground_{r}_{c}"),
                        "mBackground",
                        jit(&mut rng, cpu::M_BACKGROUND, self.jitter),
                    )
                    .input(proj[i])
                    .input(proj_area[i])
                    .input(corrections)
                    .output(ci)
                    .output(ca);
                if let Some(t) = self.timeout_secs {
                    jb = jb.timeout_secs(t);
                }
                jb.build();
            }
        }

        // --- Final assembly ----------------------------------------------
        let images_tbl = b.file("newimages.tbl", size::IMAGES_TBL, false);
        let mut jb = b
            .job("mImgTbl", "mImgTbl", jit(&mut rng, cpu::M_IMG_TBL, self.jitter))
            .inputs(corr.iter().copied())
            .output(images_tbl);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        let mosaic = b.file("mosaic.fits", size::MOSAIC, false);
        let mosaic_area = b.file("mosaic_area.fits", size::MOSAIC_AREA, false);
        let mut jb = b
            .job("mAdd", "mAdd", jit(&mut rng, cpu::M_ADD, self.jitter))
            .input(images_tbl)
            .inputs(corr.iter().copied())
            .output(mosaic)
            .output(mosaic_area);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        let shrunken = b.file("shrunken.fits", size::SHRUNKEN, false);
        let mut jb = b
            .job("mShrink", "mShrink", jit(&mut rng, cpu::M_SHRINK, self.jitter))
            .input(mosaic)
            .output(shrunken);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        let jpeg = b.file("mosaic.jpg", size::JPEG, false);
        let mut jb = b
            .job("mJpeg", "mJpeg", jit(&mut rng, cpu::M_JPEG, self.jitter))
            .input(shrunken)
            .output(jpeg);
        if let Some(t) = self.timeout_secs {
            jb = jb.timeout_secs(t);
        }
        jb.build();

        b.finish().expect("generated Montage DAG must be valid")
    }
}

/// Structural counts of a Montage workflow, computable without generating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontageShape {
    /// Images per mosaic side.
    pub n_side: usize,
    /// `mProjectPP` job count (= input images = n²).
    pub m_project: usize,
    /// `mDiffFit` job count (overlap pairs).
    pub m_diff_fit: usize,
    /// Calibrated extra overlaps beyond the 8-neighbourhood grid.
    pub extra_overlaps: usize,
    /// `mBackground` job count (= n²).
    pub m_background: usize,
    /// Total jobs.
    pub total_jobs: usize,
}

impl MontageShape {
    /// Compute counts for a given mosaic degree.
    pub fn for_degree(d: f64) -> Self {
        let n = (6.3333 * d).round() as usize;
        let n = n.max(2);
        let grid_pairs = (n - 1) * (4 * n - 2);
        let extra = (0.0983 * (n * n) as f64).round() as usize;
        let m_diff_fit = grid_pairs + extra;
        let m_project = n * n;
        let m_background = n * n;
        MontageShape {
            n_side: n,
            m_project,
            m_diff_fit,
            extra_overlaps: extra,
            m_background,
            // + mConcatFit + mBgModel + mImgTbl + mAdd + mShrink + mJpeg
            total_jobs: m_project + m_diff_fit + m_background + 6,
        }
    }
}

/// Overlapping image pairs on an n×n grid: right, down, and both diagonal
/// neighbours, plus `extra` calibrated distance-2 horizontal overlaps spread
/// deterministically across the grid.
fn overlap_pairs(n: usize, extra: usize, seed: u64) -> Vec<(usize, usize)> {
    let idx = |r: usize, c: usize| r * n + c;
    let mut pairs = Vec::with_capacity((n - 1) * (4 * n - 2) + extra);
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                pairs.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < n {
                pairs.push((idx(r, c), idx(r + 1, c)));
                if c + 1 < n {
                    pairs.push((idx(r, c), idx(r + 1, c + 1)));
                }
                if c > 0 {
                    pairs.push((idx(r, c), idx(r + 1, c - 1)));
                }
            }
        }
    }
    debug_assert_eq!(pairs.len(), (n - 1) * (4 * n - 2));
    // Distance-2 horizontal overlaps, deterministically sampled.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d6f6e7461676521); // "Montage!"
    let mut added = 0;
    while added < extra {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n.saturating_sub(2).max(1));
        if c + 2 < n {
            pairs.push((idx(r, c), idx(r, c + 2)));
            added += 1;
        }
    }
    pairs
}

/// Convenience re-exports used by tests and calibration reporting.
impl MontageConfig {
    /// Paper-reported reference numbers for the 6.0-degree workflow.
    pub const PAPER_6DEG_JOBS: usize = 8_586;
    /// Paper-reported input file count at 6.0 degrees.
    pub const PAPER_6DEG_INPUT_FILES: usize = 1_444;
    /// Paper-reported input bytes at 6.0 degrees.
    pub const PAPER_6DEG_INPUT_BYTES: f64 = 4.0 * GB;
    /// Paper-reported intermediate file count at 6.0 degrees.
    pub const PAPER_6DEG_INTERMEDIATE_FILES: usize = 22_850;
    /// Paper-reported intermediate bytes at 6.0 degrees.
    pub const PAPER_6DEG_INTERMEDIATE_BYTES: f64 = 35.0 * GB;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{LevelProfile, WorkflowStats};

    #[test]
    fn shape_matches_paper_at_6_degrees() {
        let s = MontageShape::for_degree(6.0);
        assert_eq!(s.n_side, 38);
        assert_eq!(s.m_project, 1_444);
        assert_eq!(s.m_diff_fit, 5_692);
        assert_eq!(s.total_jobs, MontageConfig::PAPER_6DEG_JOBS);
    }

    #[test]
    fn six_degree_workflow_matches_paper_counts() {
        let wf = MontageConfig::degree(6.0).build();
        assert_eq!(wf.job_count(), MontageConfig::PAPER_6DEG_JOBS);
        let inputs = wf.files().iter().filter(|f| f.initial).count();
        assert_eq!(inputs, MontageConfig::PAPER_6DEG_INPUT_FILES);

        // Input bytes within 3% of 4.0 GB.
        let in_bytes = wf.input_bytes() as f64;
        assert!(
            (in_bytes - MontageConfig::PAPER_6DEG_INPUT_BYTES).abs()
                / MontageConfig::PAPER_6DEG_INPUT_BYTES
                < 0.03,
            "input bytes {in_bytes} vs paper 4.0 GB"
        );

        // Intermediate file count within 0.1% of 22,850.
        let inter = wf.produced_file_count();
        let diff = (inter as i64 - MontageConfig::PAPER_6DEG_INTERMEDIATE_FILES as i64).abs();
        assert!(diff <= 25, "intermediate files {inter} vs paper 22,850");

        // Intermediate bytes within 5% of 35 GB.
        let ib = wf.produced_bytes() as f64;
        assert!(
            (ib - MontageConfig::PAPER_6DEG_INTERMEDIATE_BYTES).abs()
                / MontageConfig::PAPER_6DEG_INTERMEDIATE_BYTES
                < 0.05,
            "intermediate bytes {:.2} GB vs paper 35 GB",
            ib / GB
        );
    }

    #[test]
    fn blocking_jobs_are_concatfit_and_bgmodel() {
        // Small degree keeps the test fast; structure is identical.
        let wf = MontageConfig::degree(0.5).build();
        let lp = LevelProfile::of(&wf);
        let blocking: Vec<String> =
            lp.blocking_jobs().iter().map(|&j| wf.job(j).name.clone()).collect();
        // mConcatFit, mBgModel, then the final serial chain.
        assert!(blocking.contains(&"mConcatFit".to_string()));
        assert!(blocking.contains(&"mBgModel".to_string()));
        assert!(blocking.contains(&"mAdd".to_string()));
    }

    #[test]
    fn three_stage_structure() {
        let wf = MontageConfig::degree(1.0).build();
        let lp = LevelProfile::of(&wf);
        // L0 = mProjectPP, L1 = mDiffFit, L2 = mConcatFit, L3 = mBgModel,
        // L4 = mBackground, L5..=7 = mImgTbl, mAdd, mShrink, mJpeg
        assert_eq!(lp.depth(), 9);
        let names_at =
            |l: usize| lp.levels[l].iter().map(|&j| wf.job(j).xform.clone()).collect::<Vec<_>>();
        assert!(names_at(0).iter().all(|x| x == "mProjectPP"));
        assert!(names_at(1).iter().all(|x| x == "mDiffFit"));
        assert_eq!(names_at(2), vec!["mConcatFit"]);
        assert_eq!(names_at(3), vec!["mBgModel"]);
        assert!(names_at(4).iter().all(|x| x == "mBackground"));
    }

    #[test]
    fn homogeneity_dominates() {
        // The paper: "The majority of these 8,586 jobs are copies of a few
        // short-running jobs (mProjectPP, mDiffFit and mBackground)."
        let wf = MontageConfig::degree(2.0).build();
        let stats = WorkflowStats::of(&wf);
        assert!(stats.homogeneity(3) > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MontageConfig::degree(1.0).with_seed(7).build();
        let b = MontageConfig::degree(1.0).with_seed(7).build();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seed_changes_runtimes_not_structure() {
        let a = MontageConfig::degree(1.0).with_seed(1).build();
        let b = MontageConfig::degree(1.0).with_seed(2).build();
        assert_eq!(a.job_count(), b.job_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let differs = a
            .jobs()
            .iter()
            .zip(b.jobs())
            .any(|(x, y)| (x.cpu_seconds - y.cpu_seconds).abs() > 1e-12);
        assert!(differs, "jitter should vary with seed");
    }

    #[test]
    fn zero_jitter_gives_mean_runtimes() {
        let mut cfg = MontageConfig::degree(0.5);
        cfg.jitter = 0.0;
        let wf = cfg.build();
        let p = wf.job_by_name("mConcatFit").unwrap();
        assert_eq!(wf.job(p).cpu_seconds, 105.0);
    }

    #[test]
    fn timeout_applies_to_all_jobs() {
        let wf = MontageConfig::degree(0.5).with_timeout_secs(300.0).build();
        assert!(wf.jobs().iter().all(|j| j.timeout_secs == Some(300.0)));
    }

    #[test]
    fn blocking_cores_config() {
        let wf = MontageConfig::degree(0.5).with_blocking_job_cores(8).build();
        let c = wf.job_by_name("mConcatFit").unwrap();
        let m = wf.job_by_name("mBgModel").unwrap();
        assert_eq!(wf.job(c).cores, 8);
        assert_eq!(wf.job(m).cores, 8);
        // Regular jobs stay serial.
        assert!(wf.jobs().iter().filter(|j| j.xform == "mProjectPP").all(|j| j.cores == 1));
    }

    #[test]
    fn scaling_with_degree_is_quadratic() {
        let s1 = MontageShape::for_degree(3.0);
        let s2 = MontageShape::for_degree(6.0);
        let ratio = s2.total_jobs as f64 / s1.total_jobs as f64;
        assert!((3.5..4.5).contains(&ratio), "jobs should scale ~4x, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "degree must be in")]
    fn zero_degree_panics() {
        let _ = MontageConfig::degree(0.0);
    }

    #[test]
    fn overlap_pairs_grid_count() {
        let pairs = overlap_pairs(5, 0, 1);
        assert_eq!(pairs.len(), 4 * (4 * 5 - 2)); // (n-1)(4n-2)
                                                  // no self-pairs, all indices in range
        for (a, b) in pairs {
            assert_ne!(a, b);
            assert!(a < 25 && b < 25);
        }
    }
}
