//! Adversarial DAG generator for the differential oracle.
//!
//! The calibrated generators in this crate reproduce *realistic*
//! ensemble shapes; this module produces the *worst* ones. Each shape
//! targets a specific engine weak spot:
//!
//! * **wide fan-out** — one root with hundreds of children stresses
//!   burst dispatch, ready-queue growth, and the ack path when every
//!   child finishes in the same scan window;
//! * **deep chain** — a maximally serial workflow stresses per-job
//!   latency, timeout bookkeeping with exactly one job in flight, and
//!   any off-by-one in dependency release;
//! * **diamond storm** — stacked fan-out/fan-in diamonds alternate
//!   between full-width and width-1 levels, hammering the
//!   blocking-job path (the paper's §III.D concern) and making any
//!   lost completion at a waist stall the whole workflow;
//! * **fan-in cliff** — many independent roots joined by a single
//!   sink: the transpose of wide fan-out, catching asymmetries between
//!   parent-count and child-count handling.
//!
//! Shapes are chosen and sized from the seed, so a single `u64` fully
//! determines the workflow — exactly what the oracle's shrinker needs.

use dewe_dag::{JobId, Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The adversarial shape families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialShape {
    /// One root, `width` children, one collector sink.
    WideFanOut {
        /// Fan width.
        width: usize,
    },
    /// A single chain of `depth` jobs.
    DeepChain {
        /// Chain length.
        depth: usize,
    },
    /// `storms` stacked diamonds, each `width` wide.
    DiamondStorm {
        /// Number of stacked diamonds.
        storms: usize,
        /// Jobs per diamond middle level.
        width: usize,
    },
    /// `width` independent roots joined by one sink.
    FanInCliff {
        /// Number of roots.
        width: usize,
    },
}

/// Configuration for [`adversarial`].
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Which pathological shape to build.
    pub shape: AdversarialShape,
    /// Workflow name.
    pub name: String,
    /// RNG seed for runtime jitter.
    pub seed: u64,
    /// Mean CPU seconds per job.
    pub mean_cpu_seconds: f64,
    /// Relative runtime jitter.
    pub jitter: f64,
}

impl AdversarialConfig {
    /// A config for an explicit shape.
    pub fn new(shape: AdversarialShape) -> Self {
        let name = match shape {
            AdversarialShape::WideFanOut { width } => format!("adv_fanout_{width}"),
            AdversarialShape::DeepChain { depth } => format!("adv_chain_{depth}"),
            AdversarialShape::DiamondStorm { storms, width } => {
                format!("adv_diamond_{storms}x{width}")
            }
            AdversarialShape::FanInCliff { width } => format!("adv_cliff_{width}"),
        };
        Self { shape, name, seed: 42, mean_cpu_seconds: 1.0, jitter: 0.2 }
    }

    /// Pick a shape and its dimensions from the seed. `scale` caps the
    /// dominant dimension (fan width / chain depth), so oracle
    /// scenarios stay small while stress tests can go wide.
    pub fn from_seed(seed: u64, scale: usize) -> Self {
        assert!(scale >= 2, "adversarial shapes need at least 2 jobs of room");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xADDE_D5EED);
        let dim = |rng: &mut StdRng, lo: usize| rng.gen_range(lo..=scale.max(lo));
        let shape = match rng.gen_range(0..4u8) {
            0 => AdversarialShape::WideFanOut { width: dim(&mut rng, 2) },
            1 => AdversarialShape::DeepChain { depth: dim(&mut rng, 2) },
            2 => AdversarialShape::DiamondStorm {
                storms: rng.gen_range(1..=3.min(scale / 2).max(1)),
                width: dim(&mut rng, 2).min(scale / 2).max(2),
            },
            _ => AdversarialShape::FanInCliff { width: dim(&mut rng, 2) },
        };
        let mut cfg = Self::new(shape);
        cfg.seed = seed;
        cfg
    }

    /// Override the RNG seed used for runtime jitter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total job count for the configured shape.
    pub fn total_jobs(&self) -> usize {
        match self.shape {
            AdversarialShape::WideFanOut { width } => 1 + width + 1,
            AdversarialShape::DeepChain { depth } => depth,
            AdversarialShape::DiamondStorm { storms, width } => storms * (width + 2),
            AdversarialShape::FanInCliff { width } => width + 1,
        }
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());
        let jit = |rng: &mut StdRng| -> f64 {
            if self.jitter <= 0.0 {
                self.mean_cpu_seconds
            } else {
                self.mean_cpu_seconds * rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
            }
        };

        match self.shape {
            AdversarialShape::WideFanOut { width } => {
                let cpu = jit(&mut rng);
                let root = b.job("root", "fan_root", cpu).build();
                let mut kids = Vec::with_capacity(width);
                for k in 0..width {
                    let cpu = jit(&mut rng);
                    let j = b.job(format!("fan_{k}"), "fan_leaf", cpu).build();
                    b.edge(root, j);
                    kids.push(j);
                }
                let cpu = jit(&mut rng);
                let sink = b.job("collect", "fan_sink", cpu).build();
                for k in kids {
                    b.edge(k, sink);
                }
            }
            AdversarialShape::DeepChain { depth } => {
                let mut prev: Option<JobId> = None;
                for d in 0..depth {
                    let cpu = jit(&mut rng);
                    let j = b.job(format!("link_{d}"), "chain", cpu).build();
                    if let Some(p) = prev {
                        b.edge(p, j);
                    }
                    prev = Some(j);
                }
            }
            AdversarialShape::DiamondStorm { storms, width } => {
                let mut prev_waist: Option<JobId> = None;
                for s in 0..storms {
                    let cpu = jit(&mut rng);
                    let open = b.job(format!("d{s}_open"), "diamond_open", cpu).build();
                    if let Some(w) = prev_waist {
                        b.edge(w, open);
                    }
                    let mut mids = Vec::with_capacity(width);
                    for k in 0..width {
                        let cpu = jit(&mut rng);
                        let j = b.job(format!("d{s}_m{k}"), "diamond_mid", cpu).build();
                        b.edge(open, j);
                        mids.push(j);
                    }
                    let cpu = jit(&mut rng);
                    let close = b.job(format!("d{s}_close"), "diamond_close", cpu).build();
                    for m in mids {
                        b.edge(m, close);
                    }
                    prev_waist = Some(close);
                }
            }
            AdversarialShape::FanInCliff { width } => {
                let mut roots = Vec::with_capacity(width);
                for k in 0..width {
                    let cpu = jit(&mut rng);
                    roots.push(b.job(format!("src_{k}"), "cliff_src", cpu).build());
                }
                let cpu = jit(&mut rng);
                let sink = b.job("cliff", "cliff_sink", cpu).build();
                for r in roots {
                    b.edge(r, sink);
                }
            }
        }
        b.finish().expect("adversarial DAG is acyclic by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::LevelProfile;

    #[test]
    fn job_count_matches_formula_for_every_shape() {
        for shape in [
            AdversarialShape::WideFanOut { width: 17 },
            AdversarialShape::DeepChain { depth: 23 },
            AdversarialShape::DiamondStorm { storms: 3, width: 6 },
            AdversarialShape::FanInCliff { width: 11 },
        ] {
            let cfg = AdversarialConfig::new(shape);
            assert_eq!(cfg.build().job_count(), cfg.total_jobs(), "{shape:?}");
        }
    }

    #[test]
    fn wide_fanout_has_three_levels() {
        let wf = AdversarialConfig::new(AdversarialShape::WideFanOut { width: 30 }).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 3);
        assert_eq!(lp.levels[1].len(), 30);
    }

    #[test]
    fn deep_chain_is_fully_serial() {
        let wf = AdversarialConfig::new(AdversarialShape::DeepChain { depth: 40 }).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 40);
        assert!(lp.levels.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn diamond_storm_alternates_waists() {
        let wf =
            AdversarialConfig::new(AdversarialShape::DiamondStorm { storms: 3, width: 5 }).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 9); // 3 diamonds x (open, mids, close)
        for s in 0..3 {
            assert_eq!(lp.levels[3 * s].len(), 1);
            assert_eq!(lp.levels[3 * s + 1].len(), 5);
            assert_eq!(lp.levels[3 * s + 2].len(), 1);
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_bounded() {
        for seed in 0..64u64 {
            let a = AdversarialConfig::from_seed(seed, 12);
            let b = AdversarialConfig::from_seed(seed, 12);
            assert_eq!(a.shape, b.shape, "seed {seed}");
            let wf = a.build();
            assert_eq!(wf.job_count(), a.total_jobs());
            assert!(wf.job_count() <= 12 * (12 + 2), "seed {seed}: {}", wf.job_count());
        }
    }

    #[test]
    fn every_seeded_shape_appears() {
        let mut kinds = [false; 4];
        for seed in 0..64u64 {
            match AdversarialConfig::from_seed(seed, 8).shape {
                AdversarialShape::WideFanOut { .. } => kinds[0] = true,
                AdversarialShape::DeepChain { .. } => kinds[1] = true,
                AdversarialShape::DiamondStorm { .. } => kinds[2] = true,
                AdversarialShape::FanInCliff { .. } => kinds[3] = true,
            }
        }
        assert!(kinds.iter().all(|&k| k), "64 seeds must cover all shapes: {kinds:?}");
    }
}
