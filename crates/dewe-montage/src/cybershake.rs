//! CyberShake-like seismic hazard workflow generator.
//!
//! CyberShake (cited in the paper's introduction) computes probabilistic
//! seismic hazard curves per geographic site:
//!
//! ```text
//!             ExtractSGT (x2, huge reads)
//!            /      |         \
//!   SeismogramSynthesis (x variations, short)   — wide fan-out
//!            \      |         /
//!        PeakValCalc (x variations, very short)
//!            \      |         /
//!          ZipSeis + ZipPSA (2 collectors)
//! ```
//!
//! CyberShake is the *opposite* of Montage in I/O character: its dominant
//! cost is reading multi-GB strain Green tensor (SGT) files, which stresses
//! the shared-file-system read path rather than the write path.

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the CyberShake-like generator.
#[derive(Debug, Clone)]
pub struct CyberShakeConfig {
    /// Number of rupture variations (width of the fan-out).
    pub variations: usize,
    /// Workflow name.
    pub name: String,
    /// RNG seed for runtime jitter.
    pub seed: u64,
    /// Relative runtime jitter.
    pub jitter: f64,
}

impl CyberShakeConfig {
    /// A workflow with the given fan-out width.
    pub fn new(variations: usize) -> Self {
        assert!(variations > 0);
        Self { variations, name: format!("cybershake_{variations}"), seed: 42, jitter: 0.2 }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total job count: 2 extract + 2*variations + 2 zips.
    pub fn total_jobs(&self) -> usize {
        2 + 2 * self.variations + 2
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());
        let mut jit = |mean: f64| -> f64 {
            if self.jitter <= 0.0 {
                mean
            } else {
                mean * rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
            }
        };

        // Two SGT extractions (X and Y components), each reading a huge file.
        let sgt_x = b.file("sgt_x.bin", 12_000_000_000, true);
        let sgt_y = b.file("sgt_y.bin", 12_000_000_000, true);
        let sub_x = b.file("sub_x.bin", 500_000_000, false);
        let sub_y = b.file("sub_y.bin", 500_000_000, false);
        b.job("ExtractSGT_x", "ExtractSGT", jit(95.0)).input(sgt_x).output(sub_x).build();
        b.job("ExtractSGT_y", "ExtractSGT", jit(95.0)).input(sgt_y).output(sub_y).build();

        let mut seis_files = Vec::with_capacity(self.variations);
        let mut psa_files = Vec::with_capacity(self.variations);
        for v in 0..self.variations {
            let seis = b.file(format!("seis_{v}.grm"), 30_000_000, false);
            seis_files.push(seis);
            b.job(format!("SeisSynth_{v}"), "SeismogramSynthesis", jit(25.0))
                .input(sub_x)
                .input(sub_y)
                .output(seis)
                .build();
            let psa = b.file(format!("psa_{v}.bsa"), 200_000, false);
            psa_files.push(psa);
            b.job(format!("PeakValCalc_{v}"), "PeakValCalc", jit(0.7))
                .input(seis)
                .output(psa)
                .build();
        }

        let zip_seis = b.file("seis.zip", 1_000_000_000, false);
        b.job("ZipSeis", "ZipSeis", jit(40.0))
            .inputs(seis_files.iter().copied())
            .output(zip_seis)
            .build();
        let zip_psa = b.file("psa.zip", 50_000_000, false);
        b.job("ZipPSA", "ZipPSA", jit(6.0))
            .inputs(psa_files.iter().copied())
            .output(zip_psa)
            .build();

        b.finish().expect("generated CyberShake DAG must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::LevelProfile;

    #[test]
    fn job_count_formula() {
        let cfg = CyberShakeConfig::new(50);
        assert_eq!(cfg.build().job_count(), cfg.total_jobs());
    }

    #[test]
    fn read_dominated_profile() {
        let wf = CyberShakeConfig::new(10).build();
        // Input (read) volume dwarfs produced volume — opposite of Montage.
        assert!(wf.input_bytes() > wf.produced_bytes());
    }

    #[test]
    fn four_level_structure() {
        let wf = CyberShakeConfig::new(8).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 4);
        assert_eq!(lp.levels[0].len(), 2); // two extracts
        assert_eq!(lp.levels[1].len(), 8); // fan-out
        assert_eq!(lp.levels[2].len(), 8 + 1); // peak calcs + ZipSeis
        assert_eq!(lp.levels[3].len(), 1); // ZipPSA
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CyberShakeConfig::new(5).with_seed(3).build();
        let b = CyberShakeConfig::new(5).with_seed(3).build();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
    }
}
