//! LIGO inspiral-analysis workflow generator.
//!
//! The paper's introduction cites LIGO (gravitational-wave search) as a
//! second large-scale workflow application. The inspiral analysis DAG is a
//! multi-group pipeline, per detector-data group:
//!
//! ```text
//! TmpltBank ──> Inspiral ──> Thinca ──> TrigBank ──> Inspiral2 ──> Thinca2
//!  (xN)          (xN)          (1/group)   (xN)        (xN)         (1/group)
//! ```
//!
//! Unlike Montage's single global waist, LIGO has *per-group* synchronization
//! points (the Thinca coincidence steps), which exercises the engine's
//! ability to keep unrelated branches busy while one branch blocks.

use dewe_dag::{Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the LIGO-like generator.
#[derive(Debug, Clone)]
pub struct LigoConfig {
    /// Number of independent analysis groups.
    pub groups: usize,
    /// Template banks (and hence inspiral branches) per group.
    pub banks_per_group: usize,
    /// Workflow name.
    pub name: String,
    /// RNG seed for runtime jitter.
    pub seed: u64,
    /// Relative runtime jitter.
    pub jitter: f64,
}

impl LigoConfig {
    /// A workflow with `groups` groups of `banks_per_group` branches.
    pub fn new(groups: usize, banks_per_group: usize) -> Self {
        assert!(groups > 0 && banks_per_group > 0);
        Self {
            groups,
            banks_per_group,
            name: format!("ligo_{groups}x{banks_per_group}"),
            seed: 42,
            jitter: 0.2,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total job count: per group `4*banks + 2`.
    pub fn total_jobs(&self) -> usize {
        self.groups * (4 * self.banks_per_group + 2)
    }

    /// Generate the workflow.
    pub fn build(&self) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = WorkflowBuilder::new(self.name.clone());
        let mut jit = |mean: f64| -> f64 {
            if self.jitter <= 0.0 {
                mean
            } else {
                mean * rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
            }
        };

        for g in 0..self.groups {
            let frame = b.file(format!("g{g}_frames.gwf"), 200_000_000, true);
            let mut insp_out = Vec::new();
            let mut bank_files = Vec::new();
            for k in 0..self.banks_per_group {
                let bank = b.file(format!("g{g}_bank{k}.xml"), 2_000_000, false);
                bank_files.push(bank);
                b.job(format!("g{g}_TmpltBank_{k}"), "TmpltBank", jit(180.0))
                    .input(frame)
                    .output(bank)
                    .build();
                let trig = b.file(format!("g{g}_insp{k}.xml"), 5_000_000, false);
                insp_out.push(trig);
                b.job(format!("g{g}_Inspiral_{k}"), "Inspiral", jit(460.0))
                    .input(frame)
                    .input(bank)
                    .output(trig)
                    .build();
            }
            let coinc = b.file(format!("g{g}_thinca.xml"), 3_000_000, false);
            b.job(format!("g{g}_Thinca"), "Thinca", jit(5.0))
                .inputs(insp_out.iter().copied())
                .output(coinc)
                .build();
            let mut insp2_out = Vec::new();
            for k in 0..self.banks_per_group {
                let tb = b.file(format!("g{g}_trigbank{k}.xml"), 1_000_000, false);
                b.job(format!("g{g}_TrigBank_{k}"), "TrigBank", jit(10.0))
                    .input(coinc)
                    .output(tb)
                    .build();
                let out = b.file(format!("g{g}_insp2_{k}.xml"), 5_000_000, false);
                insp2_out.push(out);
                b.job(format!("g{g}_Inspiral2_{k}"), "Inspiral2", jit(440.0))
                    .input(frame)
                    .input(tb)
                    .output(out)
                    .build();
            }
            let final_out = b.file(format!("g{g}_final.xml"), 3_000_000, false);
            b.job(format!("g{g}_Thinca2"), "Thinca2", jit(5.0))
                .inputs(insp2_out.iter().copied())
                .output(final_out)
                .build();
        }
        b.finish().expect("generated LIGO DAG must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::LevelProfile;

    #[test]
    fn job_count_formula() {
        let cfg = LigoConfig::new(3, 5);
        let wf = cfg.build();
        assert_eq!(wf.job_count(), cfg.total_jobs());
        assert_eq!(wf.job_count(), 3 * 22);
    }

    #[test]
    fn six_level_pipeline() {
        let wf = LigoConfig::new(1, 4).build();
        let lp = LevelProfile::of(&wf);
        assert_eq!(lp.depth(), 6);
        // Thinca levels have width 1 (per-group waist).
        assert_eq!(lp.levels[2].len(), 1);
        assert_eq!(lp.levels[5].len(), 1);
    }

    #[test]
    fn groups_are_independent() {
        // With 2 groups there is no path between group 0 and group 1 jobs.
        let wf = LigoConfig::new(2, 2).build();
        let t0 = wf.job_by_name("g0_Thinca").unwrap();
        let reach1 = wf.children(t0).iter().all(|&c| wf.job(c).name.starts_with("g0_"));
        assert!(reach1);
        // Per-group Thinca is NOT a global blocking job when groups > 1.
        let lp = LevelProfile::of(&wf);
        assert!(lp.blocking_jobs().is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LigoConfig::new(2, 3).with_seed(9).build();
        let b = LigoConfig::new(2, 3).with_seed(9).build();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
    }
}
