//! Property-based tests for the simulator's physical invariants.

use dewe_simcloud::{
    ClusterConfig, ExecSim, FairShare, JobProfile, ReadCache, SimEvent, SimTime, StorageConfig,
    WriteBucket, C3_8XLARGE,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- FairShare

proptest! {
    /// Conservation: total bytes delivered equals the sum of all flow
    /// sizes, and equals capacity x busy time, for any arrival pattern.
    #[test]
    fn fairshare_conserves_bytes(
        capacity in 1e3f64..1e9,
        flows in prop::collection::vec((1.0f64..1e7, 0u64..5_000_000), 1..40),
    ) {
        let mut r = FairShare::new(capacity);
        let mut clock = SimTime::ZERO;
        let mut expected = 0.0;
        for (i, &(bytes, gap_us)) in flows.iter().enumerate() {
            clock += SimTime(gap_us);
            r.start(clock, bytes, i as u64);
            expected += bytes;
        }
        let mut done = 0;
        while let Some(at) = r.next_completion(clock) {
            prop_assert!(at >= clock, "completions never in the past");
            clock = at;
            done += r.pop_completed(clock).len();
        }
        prop_assert_eq!(done, flows.len());
        prop_assert!((r.completed_bytes() - expected).abs() <= 1e-6 * expected.max(1.0),
            "delivered {} vs submitted {}", r.completed_bytes(), expected);
    }

    /// With prompt harvesting (all flows started together, completions
    /// popped as they occur), delivered bytes equal capacity x busy time.
    #[test]
    fn fairshare_busy_time_identity(
        capacity in 1e3f64..1e9,
        flows in prop::collection::vec(1.0f64..1e7, 1..40),
    ) {
        let mut r = FairShare::new(capacity);
        for (i, &bytes) in flows.iter().enumerate() {
            r.start(SimTime::ZERO, bytes, i as u64);
        }
        let mut clock = SimTime::ZERO;
        while let Some(at) = r.next_completion(clock) {
            clock = at;
            r.pop_completed(clock);
        }
        let expected: f64 = flows.iter().sum();
        // Completion events round up to the next microsecond; allow ~5 us
        // of busy-time slack per flow.
        let rounding_slack = r.capacity() * 5e-6 * flows.len() as f64;
        let via_busy = r.capacity() * r.busy_secs();
        prop_assert!((via_busy - expected).abs() <= 1e-3 * expected.max(1.0) + rounding_slack,
            "capacity x busy {} vs {}", via_busy, expected);
    }

    /// Completion order follows virtual finish: a strictly smaller flow
    /// started at the same instant never finishes after a larger one.
    #[test]
    fn fairshare_smaller_flow_finishes_first(
        a in 1.0f64..1e6,
        delta in 1.0f64..1e6,
    ) {
        let mut r = FairShare::new(1e6);
        r.start(SimTime::ZERO, a, 1);
        r.start(SimTime::ZERO, a + delta, 2);
        let t1 = r.next_completion(SimTime::ZERO).unwrap();
        let first = r.pop_completed(t1);
        prop_assert_eq!(first, vec![1]);
    }
}

// --------------------------------------------------------------- WriteBucket

proptest! {
    /// Monotonicity: completion times never precede submission, dirty
    /// never exceeds the budget, and the drained total is nondecreasing.
    #[test]
    fn bucket_invariants(
        drain in 1e3f64..1e9,
        limit in 0.0f64..1e9,
        writes in prop::collection::vec((0.0f64..1e8, 0u64..2_000_000), 1..50),
    ) {
        let mut b = WriteBucket::new(drain, limit, 3e9);
        let mut clock = SimTime::ZERO;
        let mut last_drained = 0.0;
        let mut submitted = 0.0;
        for &(bytes, gap_us) in &writes {
            clock += SimTime(gap_us);
            let done = b.submit(clock, bytes);
            submitted += bytes;
            prop_assert!(done >= clock);
            let dirty = b.dirty(clock);
            prop_assert!(dirty <= limit + 1e-6, "dirty {dirty} > limit {limit}");
            let drained = b.drained_total(clock);
            prop_assert!(drained >= last_drained - 1e-6, "drained went backwards");
            prop_assert!(drained <= submitted + 1e-6, "drained more than written");
            last_drained = drained;
        }
        // Everything eventually drains.
        let end = b.drained_at(clock);
        let final_drained = b.drained_total(end + SimTime(1));
        prop_assert!((final_drained - submitted).abs() < 1e-3 * submitted.max(1.0) + 1e-3);
    }
}

// ----------------------------------------------------------------- ReadCache

proptest! {
    /// The cache never holds more than its capacity and hit/miss counts
    /// always sum to the number of lookups.
    #[test]
    fn cache_respects_budget(
        capacity in 0.0f64..1e6,
        ops in prop::collection::vec((0u64..50, 1.0f64..2e5, prop::bool::ANY), 1..200),
    ) {
        let mut c = ReadCache::new(capacity);
        let mut lookups = 0;
        for &(key, bytes, is_insert) in &ops {
            if is_insert {
                c.insert(key, bytes);
            } else {
                c.lookup(key, bytes);
                lookups += 1;
            }
            prop_assert!(c.used() <= capacity + 1e-9, "used {} > cap {}", c.used(), capacity);
        }
        let (h, m) = c.counters();
        prop_assert_eq!(h + m, lookups);
    }

    /// Reading immediately after inserting (with room) always hits.
    #[test]
    fn cache_read_after_write_hits(key in 0u64..1000, bytes in 1.0f64..1e4) {
        let mut c = ReadCache::new(1e6);
        c.insert(key, bytes);
        prop_assert!(c.lookup(key, bytes));
    }
}

// ------------------------------------------------------------------- ExecSim

proptest! {
    /// Every submitted job finishes exactly once (no faults), regardless
    /// of profile mix, and phase timestamps are ordered. Submission
    /// respects the engine contract: a node's busy cores never exceed its
    /// vCPUs (DEWE workers stop pulling at one thread per vCPU), so
    /// submissions throttle on a per-node core budget like a real engine.
    #[test]
    fn execsim_completes_everything(
        jobs in prop::collection::vec(
            (0.0f64..20.0, 0.0f64..5e7, 0.0f64..5e7, 1u32..4), 1..60),
    ) {
        let mut sim = ExecSim::new(ClusterConfig {
            instance: C3_8XLARGE,
            nodes: 2,
            storage: StorageConfig::LocalDisk,
        });
        let vcpus = C3_8XLARGE.vcpus;
        let mut free = [vcpus, vcpus];
        let mut node_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut cores_of: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut next = 0usize;
        while next < jobs.len() || seen.len() < jobs.len() {
            // Submit everything that fits right now.
            while next < jobs.len() {
                let (cpu, rd, wr, cores) = jobs[next];
                let node = if free[0] >= free[1] { 0 } else { 1 };
                if free[node] < cores {
                    break;
                }
                let profile = JobProfile {
                    reads: if rd > 0.0 { vec![(next as u64, rd)] } else { vec![] },
                    cpu_seconds: cpu,
                    cores,
                    writes: if wr > 0.0 { vec![(1000 + next as u64, wr)] } else { vec![] },
                };
                free[node] -= cores;
                node_of.insert(next as u64, node);
                cores_of.insert(next as u64, cores);
                sim.submit_job(next as u64, node, &profile);
                next += 1;
            }
            match sim.next() {
                Some(SimEvent::JobFinished { token, timings, .. }) => {
                    prop_assert!(seen.insert(token), "token {token} finished twice");
                    prop_assert!(timings.submitted <= timings.read_done);
                    prop_assert!(timings.read_done <= timings.compute_done);
                    prop_assert!(timings.compute_done <= timings.finished);
                    free[node_of[&token]] += cores_of[&token];
                }
                Some(_) => {}
                None => break,
            }
        }
        prop_assert_eq!(seen.len(), jobs.len());
        prop_assert_eq!(sim.running_jobs(), 0);
        // Thread accounting returned to zero on both nodes.
        prop_assert_eq!(sim.node_counters(0).threads_running, 0);
        prop_assert_eq!(sim.node_counters(1).threads_running, 0);
    }

    /// CPU accounting: total busy core-seconds equals the submitted CPU
    /// demand (jobs get exactly what they ask for, cores x wall).
    #[test]
    fn execsim_cpu_accounting_exact(
        jobs in prop::collection::vec(0.1f64..30.0, 1..40),
    ) {
        let mut sim = ExecSim::new(ClusterConfig {
            instance: C3_8XLARGE,
            nodes: 1,
            storage: StorageConfig::LocalDisk,
        });
        // Paper model: the engine never oversubscribes; submit in waves of
        // at most 32.
        let mut submitted = 0usize;
        let mut expected_cpu = 0.0;
        let mut inflight = 0;
        let mut next = 0usize;
        while submitted < jobs.len() || inflight > 0 {
            while next < jobs.len() && inflight < 32 {
                sim.submit_job(next as u64, 0, &JobProfile::compute(jobs[next]));
                expected_cpu += jobs[next];
                next += 1;
                submitted += 1;
                inflight += 1;
            }
            match sim.next() {
                Some(SimEvent::JobFinished { .. }) => inflight -= 1,
                Some(_) => {}
                None => break,
            }
        }
        let measured = sim.node_counters(0).cpu_busy_core_secs;
        prop_assert!((measured - expected_cpu).abs() < 1e-6 * expected_cpu.max(1.0) + 1e-6,
            "cpu {measured} vs expected {expected_cpu}");
    }
}
