//! Phased job execution on a simulated cluster.
//!
//! [`ExecSim`] is the contract between *coordination engines* (the DEWE v2
//! master/worker logic in `dewe-core`, the Pegasus-like scheduler in
//! `dewe-baseline`) and the simulated hardware. Engines decide **which job
//! runs on which node and when** — the paper's entire argument is about
//! that decision — and `ExecSim` simulates what the hardware does with it:
//!
//! 1. **Read phase**: the job's input files are looked up in the backend's
//!    read cache; hits are serviced at memory speed, misses coalesce into
//!    one fair-share flow on the backend's disk/FS read channel.
//! 2. **Compute phase**: `cores` cores busy for `cpu_seconds / cores`.
//! 3. **Write phase**: each output goes through the backend's page-cache
//!    write bucket; the job finishes when its last write is admitted.
//!
//! Engines receive [`SimEvent::JobFinished`] with per-phase
//! [`JobTimings`] (the data behind the paper's Fig. 2 gantt view) and may
//! schedule [`SimEvent::Wake`] timers for their own protocol logic (timeout
//! scans, submission intervals, sampling ticks).

use crate::cluster::{Cluster, ClusterConfig, NodeCounters, NodeId};
use crate::fairshare::FlowId;
use crate::hash::TokenMap;
use crate::kernel::{EventId, EventQueue};
use crate::storage::Storage;
use crate::time::SimTime;

/// Resource demands of one job.
#[derive(Debug, Clone, Default)]
pub struct JobProfile {
    /// Input files: (opaque file key, bytes). Keys identify files across
    /// jobs so the cache can recognize re-reads.
    pub reads: Vec<(u64, f64)>,
    /// Pure compute demand in CPU-seconds.
    pub cpu_seconds: f64,
    /// Cores the job can exploit (≥ 1).
    pub cores: u32,
    /// Output files: (opaque file key, bytes).
    pub writes: Vec<(u64, f64)>,
}

impl JobProfile {
    /// A compute-only job.
    pub fn compute(cpu_seconds: f64) -> Self {
        Self { reads: Vec::new(), cpu_seconds, cores: 1, writes: Vec::new() }
    }
}

/// Wall-clock milestones of one executed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTimings {
    /// When the engine submitted the job to the node.
    pub submitted: SimTime,
    /// When all input reads were serviced.
    pub read_done: SimTime,
    /// When the compute phase finished.
    pub compute_done: SimTime,
    /// When the last output write was admitted (job completion).
    pub finished: SimTime,
}

impl JobTimings {
    /// Seconds spent on data staging (read + write phases) — the
    /// "communication time" of the paper's Fig. 2.
    pub fn staging_secs(&self) -> f64 {
        self.read_done.secs_since(self.submitted) + self.finished.secs_since(self.compute_done)
    }

    /// Seconds spent computing.
    pub fn compute_secs(&self) -> f64 {
        self.compute_done.secs_since(self.read_done)
    }

    /// Total wall seconds.
    pub fn total_secs(&self) -> f64 {
        self.finished.secs_since(self.submitted)
    }
}

/// Events delivered to the engine.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A submitted job ran to completion.
    JobFinished {
        /// The engine's token from [`ExecSim::submit_job`].
        token: u64,
        /// The node it ran on.
        node: NodeId,
        /// Phase milestones.
        timings: JobTimings,
    },
    /// A timer scheduled with [`ExecSim::schedule_wake`] fired.
    Wake {
        /// The engine's token.
        token: u64,
    },
}

enum Ev {
    ReadWake(usize),
    ComputeDone(u64),
    WriteDone(u64),
    Wake(u64),
}

enum Phase {
    Reading { flow: FlowId, backend: usize },
    Computing { event: EventId, cores: u32 },
    Writing { event: EventId },
}

struct RunningJob {
    token: u64,
    node: NodeId,
    phase: Phase,
    /// Missed input files to insert into cache when the read completes.
    missed: Vec<(u64, f64)>,
    miss_bytes: f64,
    hit_secs: f64,
    cpu_wall_secs: f64,
    cores_used: u32,
    writes: Vec<(u64, f64)>,
    timings: JobTimings,
}

struct JobSlot {
    gen: u32,
    job: Option<RunningJob>,
}

/// The execution simulator: a cluster, an event queue, and in-flight jobs.
pub struct ExecSim {
    queue: EventQueue<Ev>,
    cluster: Cluster,
    /// In-flight jobs in a generation slab. A job id encodes
    /// `(generation << 32) | slot`, so ids stay globally unique (required —
    /// they double as fair-share flow tags) while every per-event job
    /// access is a vector index instead of a hash lookup.
    jobs: Vec<JobSlot>,
    free_jobs: Vec<u32>,
    running: usize,
    next_wake: u64,
    wakes: TokenMap<(u64, EventId)>, // wake id -> (token, event)
    read_events: Vec<Option<EventId>>,
    /// Reusable buffer for harvesting completed read flows.
    read_done_scratch: Vec<u64>,
    /// Recycled `(key, bytes)` buffers for jobs' miss/write lists, so the
    /// steady state allocates nothing per job.
    buf_pool: Vec<Vec<(u64, f64)>>,
    out: std::collections::VecDeque<SimEvent>,
    finished_jobs: u64,
}

/// Handle for cancelling a scheduled wake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WakeId(u64);

impl ExecSim {
    /// Build a simulator over a fresh cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let cluster = Cluster::new(config);
        let read_events = vec![None; cluster.storage().backend_count()];
        Self {
            queue: EventQueue::new(),
            cluster,
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            running: 0,
            next_wake: 0,
            wakes: TokenMap::default(),
            read_events,
            read_done_scratch: Vec::new(),
            buf_pool: Vec::new(),
            out: std::collections::VecDeque::new(),
            finished_jobs: 0,
        }
    }

    /// The id the next [`Self::alloc_job`] call will hand out; events and
    /// flow tags referencing the job can be created before it is inserted.
    fn peek_jid(&self) -> u64 {
        let slot = self.free_jobs.last().copied().unwrap_or(self.jobs.len() as u32);
        let gen = self.jobs.get(slot as usize).map_or(0, |s| s.gen);
        ((gen as u64) << 32) | slot as u64
    }

    fn alloc_job(&mut self, job: RunningJob) -> u64 {
        let slot = match self.free_jobs.pop() {
            Some(slot) => {
                self.jobs[slot as usize].job = Some(job);
                slot
            }
            None => {
                self.jobs.push(JobSlot { gen: 0, job: Some(job) });
                (self.jobs.len() - 1) as u32
            }
        };
        self.running += 1;
        ((self.jobs[slot as usize].gen as u64) << 32) | slot as u64
    }

    fn job_mut(&mut self, jid: u64) -> Option<&mut RunningJob> {
        let (gen, slot) = ((jid >> 32) as u32, jid as u32);
        let entry = self.jobs.get_mut(slot as usize)?;
        if entry.gen != gen {
            return None;
        }
        entry.job.as_mut()
    }

    fn remove_job(&mut self, jid: u64) -> Option<RunningJob> {
        let (gen, slot) = ((jid >> 32) as u32, jid as u32);
        let entry = self.jobs.get_mut(slot as usize)?;
        if entry.gen != gen {
            return None;
        }
        let job = entry.job.take()?;
        entry.gen = entry.gen.wrapping_add(1);
        self.free_jobs.push(slot);
        self.running -= 1;
        Some(job)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The simulated cluster (counters, cost model, instance data).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (dynamic provisioning).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The storage substrate (cache statistics, byte totals).
    pub fn storage(&self) -> &Storage {
        self.cluster.storage()
    }

    /// Jobs currently in flight.
    pub fn running_jobs(&self) -> usize {
        self.running
    }

    /// Jobs finished so far.
    pub fn finished_jobs(&self) -> u64 {
        self.finished_jobs
    }

    /// Node counters integrated up to the current time.
    pub fn node_counters(&mut self, node: NodeId) -> NodeCounters {
        let now = self.queue.now();
        self.cluster.counters(node, now)
    }

    /// Submit a job to a node. The engine is responsible for respecting the
    /// node's concurrency limit (DEWE v2 workers stop pulling at one thread
    /// per vCPU, §III.D).
    pub fn submit_job(&mut self, token: u64, node: NodeId, profile: &JobProfile) {
        let now = self.queue.now();
        let jid = self.peek_jid();

        self.cluster.thread_started(node);

        // Read phase: classify hits and misses in one cache pass.
        let mut missed = self.buf_pool.pop().unwrap_or_default();
        let (hit_bytes, miss_bytes) =
            self.cluster.storage_mut().classify_reads(node, &profile.reads, &mut missed);
        let hit_secs = Storage::hit_secs(hit_bytes);
        let cores_used = profile.cores.clamp(1, self.cluster.vcpus());
        // Heterogeneity: a slow node stretches compute time (speed 1.0 on
        // the paper's homogeneous clusters).
        let cpu_wall_secs =
            profile.cpu_seconds / cores_used as f64 / self.cluster.speed_factor(node);

        let timings =
            JobTimings { submitted: now, read_done: now, compute_done: now, finished: now };

        let phase = if miss_bytes > 0.0 {
            let backend = self.cluster.storage().backend_of(node);
            let flow = self.cluster.storage_mut().begin_read(node, now, miss_bytes, jid);
            Phase::Reading { flow, backend }
        } else {
            // Straight to compute.
            self.cluster.start_compute(node, cores_used, now);
            let event = self.queue.schedule_in(hit_secs + cpu_wall_secs, Ev::ComputeDone(jid));
            Phase::Computing { event, cores: cores_used }
        };
        let reading = matches!(phase, Phase::Reading { .. });
        let mut writes = self.buf_pool.pop().unwrap_or_default();
        writes.extend_from_slice(&profile.writes);
        let assigned = self.alloc_job(RunningJob {
            token,
            node,
            phase,
            missed,
            miss_bytes,
            hit_secs,
            cpu_wall_secs,
            cores_used,
            writes,
            timings,
        });
        debug_assert_eq!(assigned, jid, "flow tag and job id must agree");
        if reading {
            let backend = self.cluster.storage().backend_of(node);
            self.resched_backend(backend);
        }
    }

    /// Schedule a wake for the engine after `delay_secs`.
    pub fn schedule_wake(&mut self, delay_secs: f64, token: u64) -> WakeId {
        let wid = self.next_wake;
        self.next_wake += 1;
        let event = self.queue.schedule_in(delay_secs, Ev::Wake(wid));
        self.wakes.insert(wid, (token, event));
        WakeId(wid)
    }

    /// Cancel a pending wake. Idempotent.
    pub fn cancel_wake(&mut self, id: WakeId) {
        if let Some((_, event)) = self.wakes.remove(&id.0) {
            self.queue.cancel(event);
        }
    }

    /// Kill all jobs currently running on `node` (worker-daemon failure,
    /// paper §V.A.3). Returns the engine tokens of the killed jobs. Their
    /// partial reads/writes are charged; no completion events fire.
    pub fn kill_jobs_on(&mut self, node: NodeId) -> Vec<u64> {
        let now = self.queue.now();
        let victims: Vec<u64> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.job.as_ref().is_some_and(|j| j.node == node))
            .map(|(slot, s)| ((s.gen as u64) << 32) | slot as u64)
            .collect();
        let mut tokens = Vec::with_capacity(victims.len());
        let mut backends_touched = Vec::new();
        for jid in victims {
            let mut job = self.remove_job(jid).expect("victim exists");
            self.recycle(std::mem::take(&mut job.missed));
            self.recycle(std::mem::take(&mut job.writes));
            match job.phase {
                Phase::Reading { flow, backend } => {
                    self.cluster.storage_mut().cancel_read(backend, now, flow);
                    backends_touched.push(backend);
                }
                Phase::Computing { event, cores } => {
                    self.queue.cancel(event);
                    self.cluster.end_compute(job.node, cores, now);
                }
                Phase::Writing { event } => {
                    self.queue.cancel(event);
                }
            }
            self.cluster.thread_finished(job.node);
            tokens.push(job.token);
        }
        backends_touched.sort_unstable();
        backends_touched.dedup();
        for b in backends_touched {
            self.resched_backend(b);
        }
        tokens
    }

    /// Advance the simulation and return the next engine-visible event, or
    /// `None` when nothing remains scheduled.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors Iterator
    pub fn next(&mut self) -> Option<SimEvent> {
        loop {
            if let Some(ev) = self.out.pop_front() {
                return Some(ev);
            }
            let (_, ev) = self.queue.pop()?;
            match ev {
                Ev::ReadWake(backend) => self.on_read_wake(backend),
                Ev::ComputeDone(jid) => self.on_compute_done(jid),
                Ev::WriteDone(jid) => self.on_write_done(jid),
                Ev::Wake(wid) => {
                    if let Some((token, _)) = self.wakes.remove(&wid) {
                        self.out.push_back(SimEvent::Wake { token });
                    }
                }
            }
        }
    }

    fn resched_backend(&mut self, backend: usize) {
        let now = self.queue.now();
        if let Some(old) = self.read_events[backend].take() {
            self.queue.cancel(old);
        }
        if let Some(at) = self.cluster.storage_mut().next_read_completion(backend, now) {
            self.read_events[backend] = Some(self.queue.schedule(at, Ev::ReadWake(backend)));
        }
    }

    fn on_read_wake(&mut self, backend: usize) {
        let now = self.queue.now();
        self.read_events[backend] = None;
        let mut done = std::mem::take(&mut self.read_done_scratch);
        done.clear();
        self.cluster.storage_mut().pop_read_completed_into(backend, now, &mut done);
        for &jid in &done {
            let Some(job) = self.job_mut(jid) else { continue };
            job.timings.read_done = now;
            let node = job.node;
            let miss_bytes = job.miss_bytes;
            let cores = job.cores_used;
            let dur = job.hit_secs + job.cpu_wall_secs;
            let missed = std::mem::take(&mut job.missed);
            // Read-allocate: the data just fetched is now resident.
            self.cluster.storage_mut().cache_insert_batch(node, &missed);
            self.recycle(missed);
            self.cluster.add_read_bytes(node, miss_bytes);
            self.cluster.start_compute(node, cores, now);
            let event = self.queue.schedule_in(dur, Ev::ComputeDone(jid));
            self.job_mut(jid).expect("job still present").phase = Phase::Computing { event, cores };
        }
        self.read_done_scratch = done;
        self.resched_backend(backend);
    }

    fn on_compute_done(&mut self, jid: u64) {
        let now = self.queue.now();
        let Some(job) = self.job_mut(jid) else { return };
        job.timings.compute_done = now;
        let node = job.node;
        let cores = job.cores_used;
        // Borrow the write list out of the job (instead of cloning it) while
        // the storage substrate is driven.
        let writes = std::mem::take(&mut job.writes);
        self.cluster.end_compute(node, cores, now);
        if writes.is_empty() {
            self.finish_job(jid);
        } else {
            let done = self.cluster.storage_mut().submit_write_batch(node, now, &writes);
            let event = self.queue.schedule(done, Ev::WriteDone(jid));
            let job = self.job_mut(jid).expect("job present");
            job.writes = writes;
            job.phase = Phase::Writing { event };
        }
    }

    fn on_write_done(&mut self, jid: u64) {
        let Some(job) = self.job_mut(jid) else { return };
        let node = job.node;
        // The job is removed in `finish_job` below; no need to restore.
        let writes = std::mem::take(&mut job.writes);
        let total: f64 = writes.iter().map(|&(_, b)| b).sum();
        self.cluster.storage_mut().cache_insert_batch(node, &writes);
        self.recycle(writes);
        self.cluster.add_write_bytes(node, total);
        self.finish_job(jid);
    }

    fn finish_job(&mut self, jid: u64) {
        let now = self.queue.now();
        let mut job = self.remove_job(jid).expect("finishing job exists");
        job.timings.finished = now;
        self.cluster.thread_finished(job.node);
        self.finished_jobs += 1;
        self.recycle(std::mem::take(&mut job.missed));
        self.recycle(std::mem::take(&mut job.writes));
        self.out.push_back(SimEvent::JobFinished {
            token: job.token,
            node: job.node,
            timings: job.timings,
        });
    }

    /// Return a job buffer to the pool (no-op for never-allocated vectors).
    fn recycle(&mut self, mut buf: Vec<(u64, f64)>) {
        if buf.capacity() > 0 {
            buf.clear();
            self.buf_pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::C3_8XLARGE;
    use crate::storage::{SharedFsKind, StorageConfig};

    fn sim(nodes: usize) -> ExecSim {
        ExecSim::new(ClusterConfig {
            instance: C3_8XLARGE,
            nodes,
            storage: StorageConfig::Shared(SharedFsKind::DistFs),
        })
    }

    fn finish(sim: &mut ExecSim) -> Vec<(u64, JobTimings)> {
        let mut done = Vec::new();
        while let Some(ev) = sim.next() {
            if let SimEvent::JobFinished { token, timings, .. } = ev {
                done.push((token, timings));
            }
        }
        done
    }

    #[test]
    fn compute_only_job_takes_cpu_seconds() {
        let mut s = sim(1);
        s.submit_job(1, 0, &JobProfile::compute(10.0));
        let done = finish(&mut s);
        assert_eq!(done.len(), 1);
        assert!((done[0].1.total_secs() - 10.0).abs() < 1e-3);
        assert_eq!(s.finished_jobs(), 1);
    }

    #[test]
    fn multicore_job_speeds_up() {
        let mut s = sim(1);
        let profile = JobProfile { cores: 8, ..JobProfile::compute(80.0) };
        s.submit_job(1, 0, &profile);
        let done = finish(&mut s);
        assert!((done[0].1.total_secs() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn cold_read_pays_disk_bandwidth() {
        let mut s = sim(1);
        // c3 DistFs single node: 250 MB/s * 0.9 = 225 MB/s.
        let profile =
            JobProfile { reads: vec![(1, 225e6)], cpu_seconds: 1.0, cores: 1, writes: vec![] };
        s.submit_job(1, 0, &profile);
        let done = finish(&mut s);
        let t = &done[0].1;
        assert!((t.read_done.secs_since(t.submitted) - 1.0).abs() < 0.01, "{t:?}");
        assert!((t.total_secs() - 2.0).abs() < 0.01);
    }

    #[test]
    fn warm_read_is_nearly_free() {
        let mut s = sim(1);
        // First job writes the file; second reads it (cache hit).
        let w = JobProfile { reads: vec![], cpu_seconds: 1.0, cores: 1, writes: vec![(1, 225e6)] };
        s.submit_job(1, 0, &w);
        let _ = finish(&mut s);
        let r = JobProfile { reads: vec![(1, 225e6)], cpu_seconds: 1.0, cores: 1, writes: vec![] };
        s.submit_job(2, 0, &r);
        let done = finish(&mut s);
        let t = &done[0].1;
        assert!(t.read_done.secs_since(t.submitted) < 0.2, "hit must be memory-speed: {t:?}");
    }

    #[test]
    fn write_phase_finishes_after_compute() {
        let mut s = sim(1);
        let p = JobProfile { reads: vec![], cpu_seconds: 2.0, cores: 1, writes: vec![(9, 100e6)] };
        s.submit_job(1, 0, &p);
        let done = finish(&mut s);
        let t = &done[0].1;
        assert!(t.finished >= t.compute_done);
        assert!((t.compute_secs() - 2.0).abs() < 1e-3);
        // Small write absorbed by page cache: staging is fast.
        assert!(t.finished.secs_since(t.compute_done) < 0.2);
    }

    #[test]
    fn concurrent_reads_share_bandwidth() {
        let mut s = sim(1);
        let cap = 250e6 * 0.9;
        for i in 0..2 {
            let p = JobProfile {
                reads: vec![(100 + i, cap)],
                cpu_seconds: 0.0,
                cores: 1,
                writes: vec![],
            };
            s.submit_job(i, 0, &p);
        }
        let done = finish(&mut s);
        // Two cap-sized flows sharing capacity -> both finish at ~2 s.
        for (_, t) in &done {
            assert!((t.total_secs() - 2.0).abs() < 0.05, "{t:?}");
        }
    }

    #[test]
    fn wake_timer_fires() {
        let mut s = sim(1);
        s.schedule_wake(5.0, 77);
        match s.next() {
            Some(SimEvent::Wake { token }) => assert_eq!(token, 77),
            other => panic!("{other:?}"),
        }
        assert!((s.now().as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cancelled_wake_does_not_fire() {
        let mut s = sim(1);
        let id = s.schedule_wake(5.0, 1);
        s.schedule_wake(6.0, 2);
        s.cancel_wake(id);
        match s.next() {
            Some(SimEvent::Wake { token }) => assert_eq!(token, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kill_jobs_on_node_suppresses_completions() {
        let mut s = sim(2);
        s.submit_job(1, 0, &JobProfile::compute(10.0));
        s.submit_job(2, 1, &JobProfile::compute(10.0));
        let killed = s.kill_jobs_on(0);
        assert_eq!(killed, vec![1]);
        let done = finish(&mut s);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 2);
        assert_eq!(s.node_counters(0).threads_running, 0);
    }

    #[test]
    fn kill_during_read_releases_bandwidth() {
        let mut s = sim(2);
        // Aggregate 2-node DistFs capacity on c3.
        let cap = 250e6 * 2.0 * 0.9 / (1.0 + 0.015);
        let big =
            JobProfile { reads: vec![(1, cap * 20.0)], cpu_seconds: 0.0, cores: 1, writes: vec![] };
        let small =
            JobProfile { reads: vec![(2, cap * 2.0)], cpu_seconds: 0.0, cores: 1, writes: vec![] };
        s.submit_job(1, 0, &big);
        s.submit_job(2, 1, &small);
        s.kill_jobs_on(0);
        let done = finish(&mut s);
        assert_eq!(done.len(), 1);
        // Alone on the full capacity: 2 seconds.
        assert!((done[0].1.total_secs() - 2.0).abs() < 0.05, "{:?}", done[0].1);
    }

    #[test]
    fn thread_and_cpu_counters_track_jobs() {
        let mut s = sim(1);
        s.submit_job(1, 0, &JobProfile::compute(4.0));
        s.submit_job(2, 0, &JobProfile::compute(4.0));
        assert_eq!(s.node_counters(0).threads_running, 2);
        let _ = finish(&mut s);
        let c = s.node_counters(0);
        assert_eq!(c.threads_running, 0);
        assert!((c.cpu_busy_core_secs - 8.0).abs() < 1e-3);
    }

    #[test]
    fn deterministic_event_order() {
        let run = || {
            let mut s = sim(2);
            for i in 0..20 {
                let p = JobProfile {
                    reads: vec![(i, 10e6 + 1e6 * i as f64)],
                    cpu_seconds: 0.5 + 0.01 * i as f64,
                    cores: 1,
                    writes: vec![(1000 + i, 5e6)],
                };
                s.submit_job(i, (i % 2) as usize, &p);
            }
            finish(&mut s).iter().map(|(t, j)| (*t, j.finished)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
