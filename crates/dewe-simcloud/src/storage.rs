//! Storage backends: local RAID-0 disks, NFS, and a MooseFS-like
//! distributed file system.
//!
//! The paper uses three storage arrangements:
//!
//! * **Local instance-store RAID-0** for single-node runs (Figs. 4–9).
//! * **N-to-N NFS cross mounts** for small multi-node clusters (Fig. 5):
//!   every node exports its disk and mounts everyone else's; aggregate
//!   bandwidth grows with N but configuration imbalance erodes efficiency
//!   ("as the size of the cluster grows ... resulting in unbalanced
//!   utilization", §V.B).
//! * **MooseFS** (all nodes as trunk servers, single copy per file) for
//!   the large-scale runs (Figs. 10–11), with better but still sub-linear
//!   aggregate scaling.
//!
//! A backend bundles a read [`FairShare`], a write [`WriteBucket`] and a
//! [`ReadCache`]. Local storage has one backend per node; shared storage a
//! single cluster-wide backend whose capacities aggregate the member nodes'
//! disks (bounded per node by the 10 Gbps NIC) scaled by an efficiency
//! factor that decreases with cluster size.

use crate::bucket::WriteBucket;
use crate::fairshare::{FairShare, FlowId};
use crate::instance::InstanceType;
use crate::readcache::ReadCache;
use crate::time::SimTime;

/// In-memory service rate for cache hits and absorbed writes, bytes/sec.
const MEM_RATE: f64 = 3e9;

/// Which shared file system to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedFsKind {
    /// N-to-N NFS cross mounts (small clusters; paper Fig. 5).
    Nfs,
    /// MooseFS-like distributed FS, one copy per file (paper Figs. 10–11).
    DistFs,
}

impl SharedFsKind {
    /// Aggregate-bandwidth efficiency for an `n`-node cluster.
    ///
    /// NFS: substantial per-node coordination overhead (κ = 0.10), which is
    /// what flattens Fig. 5b and drives the node-performance-index decay of
    /// Fig. 5c. MooseFS: much smaller penalty on a 0.9 base (κ = 0.015),
    /// matching the near-even utilization of Fig. 10.
    pub fn efficiency(self, n: usize) -> f64 {
        let n = n.max(1) as f64;
        match self {
            SharedFsKind::Nfs => 1.0 / (1.0 + 0.10 * (n - 1.0)),
            SharedFsKind::DistFs => 0.9 / (1.0 + 0.015 * (n - 1.0)),
        }
    }
}

/// Storage arrangement for a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageConfig {
    /// Independent local RAID-0 per node (no cross-node file visibility —
    /// only meaningful for single-node clusters or per-node scratch).
    LocalDisk,
    /// One shared POSIX namespace across all nodes.
    Shared(SharedFsKind),
}

struct Backend {
    read: FairShare,
    write: WriteBucket,
    cache: ReadCache,
    /// Disk bytes read (completed miss flows), per attribution below.
    bytes_read_completed: f64,
}

/// Runtime storage state for a cluster.
pub struct Storage {
    config: StorageConfig,
    backends: Vec<Backend>,
    /// node index -> backend index.
    node_backend: Vec<usize>,
}

impl Storage {
    /// Build storage for `nodes` nodes of type `itype`.
    pub fn new(config: StorageConfig, itype: &InstanceType, nodes: usize) -> Self {
        assert!(nodes > 0);
        let mut backends = Vec::new();
        let mut node_backend = Vec::with_capacity(nodes);
        match config {
            StorageConfig::LocalDisk => {
                for i in 0..nodes {
                    backends.push(Self::local_backend(itype));
                    node_backend.push(i);
                }
            }
            StorageConfig::Shared(kind) => {
                backends.push(Self::shared_backend(kind, itype, nodes));
                node_backend = vec![0; nodes];
            }
        }
        Self { config, backends, node_backend }
    }

    fn local_backend(itype: &InstanceType) -> Backend {
        Backend {
            read: FairShare::new(itype.disk.read_bytes_per_sec()),
            write: WriteBucket::new(
                itype.disk.write_bytes_per_sec(),
                itype.dirty_limit_bytes(),
                MEM_RATE,
            ),
            cache: ReadCache::new(itype.read_cache_bytes()),
            bytes_read_completed: 0.0,
        }
    }

    fn shared_backend(kind: SharedFsKind, itype: &InstanceType, nodes: usize) -> Backend {
        let eff = kind.efficiency(nodes);
        let nic = itype.network_bytes_per_sec();
        let per_node_read = itype.disk.read_bytes_per_sec().min(nic);
        let per_node_write = itype.disk.write_bytes_per_sec().min(nic);
        let n = nodes as f64;
        Backend {
            read: FairShare::new(per_node_read * n * eff),
            write: WriteBucket::new(
                per_node_write * n * eff,
                itype.dirty_limit_bytes() * n,
                MEM_RATE * n,
            ),
            cache: ReadCache::new(itype.read_cache_bytes() * n),
            bytes_read_completed: 0.0,
        }
    }

    /// Recompute shared capacities after the active node count changes
    /// (dynamic provisioning extension). No-op for local disks.
    pub fn rescale_shared(&mut self, now: SimTime, itype: &InstanceType, nodes: usize) {
        if let StorageConfig::Shared(kind) = self.config {
            let eff = kind.efficiency(nodes);
            let nic = itype.network_bytes_per_sec();
            let n = nodes as f64;
            let b = &mut self.backends[0];
            b.read.set_capacity(now, itype.disk.read_bytes_per_sec().min(nic) * n * eff);
            b.write.set_drain_rate(now, itype.disk.write_bytes_per_sec().min(nic) * n * eff);
            b.write.set_dirty_limit(now, itype.dirty_limit_bytes() * n);
            b.cache.set_capacity(itype.read_cache_bytes() * n);
        }
    }

    /// Storage arrangement.
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// Number of backends (1 for shared, N for local).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Backend serving a node.
    pub fn backend_of(&self, node: usize) -> usize {
        self.node_backend[node]
    }

    /// Cache lookup for a read of `key`/`bytes` issued from `node`.
    /// Returns `true` on a hit (serviced at memory speed, no disk traffic).
    pub fn cache_lookup(&mut self, node: usize, key: u64, bytes: f64) -> bool {
        self.backends[self.node_backend[node]].cache.lookup(key, bytes)
    }

    /// Mark `key` resident (just written or just read from disk).
    pub fn cache_insert(&mut self, node: usize, key: u64, bytes: f64) {
        self.backends[self.node_backend[node]].cache.insert(key, bytes);
    }

    /// Classify a job's input files against `node`'s cache in one pass:
    /// hits are counted (and refreshed), misses appended to `missed`.
    /// Returns `(hit_bytes, miss_bytes)`. Resolves the node's backend once
    /// for the whole set instead of once per file.
    pub fn classify_reads(
        &mut self,
        node: usize,
        reads: &[(u64, f64)],
        missed: &mut Vec<(u64, f64)>,
    ) -> (f64, f64) {
        let cache = &mut self.backends[self.node_backend[node]].cache;
        let (mut hit, mut miss) = (0.0, 0.0);
        for &(key, bytes) in reads {
            if cache.lookup(key, bytes) {
                hit += bytes;
            } else {
                miss += bytes;
                missed.push((key, bytes));
            }
        }
        (hit, miss)
    }

    /// Mark a batch of `(key, bytes)` files resident on `node`'s backend
    /// (one backend resolution for the whole set).
    pub fn cache_insert_batch(&mut self, node: usize, files: &[(u64, f64)]) {
        let cache = &mut self.backends[self.node_backend[node]].cache;
        for &(key, bytes) in files {
            cache.insert(key, bytes);
        }
    }

    /// In-memory service time for `bytes` of cache-hit reads.
    pub fn hit_secs(bytes: f64) -> f64 {
        bytes / MEM_RATE
    }

    /// Start a disk read of `bytes` (a cache miss) from `node`.
    pub fn begin_read(&mut self, node: usize, now: SimTime, bytes: f64, tag: u64) -> FlowId {
        self.backends[self.node_backend[node]].read.start(now, bytes.max(0.0), tag)
    }

    /// Abort an in-flight read (worker failure).
    pub fn cancel_read(&mut self, backend: usize, now: SimTime, flow: FlowId) -> Option<u64> {
        self.backends[backend].read.cancel(now, flow)
    }

    /// Next read completion on a backend.
    pub fn next_read_completion(&mut self, backend: usize, now: SimTime) -> Option<SimTime> {
        self.backends[backend].read.next_completion(now)
    }

    /// Harvest completed reads on a backend; returns their tags.
    pub fn pop_read_completed(&mut self, backend: usize, now: SimTime) -> Vec<u64> {
        let mut tags = Vec::new();
        self.pop_read_completed_into(backend, now, &mut tags);
        tags
    }

    /// Like [`Self::pop_read_completed`], appending tags to a reusable
    /// caller-owned buffer.
    pub fn pop_read_completed_into(&mut self, backend: usize, now: SimTime, tags: &mut Vec<u64>) {
        let b = &mut self.backends[backend];
        let before = b.read.completed_bytes();
        b.read.pop_completed_into(now, tags);
        b.bytes_read_completed += b.read.completed_bytes() - before;
    }

    /// Submit a write of `bytes` from `node`; returns its completion time.
    pub fn submit_write(&mut self, node: usize, now: SimTime, bytes: f64) -> SimTime {
        self.backends[self.node_backend[node]].write.submit(now, bytes.max(0.0))
    }

    /// Submit a job's output files (`(key, bytes)` pairs) from `node` as
    /// one batched bucket update; returns the completion time of the
    /// whole batch. Cheaper and more faithful than per-file submission:
    /// the job's total output is charged against the dirty budget in a
    /// single indexed update.
    pub fn submit_write_batch(
        &mut self,
        node: usize,
        now: SimTime,
        files: &[(u64, f64)],
    ) -> SimTime {
        self.backends[self.node_backend[node]]
            .write
            .submit_batch(now, files.iter().map(|&(_, b)| b))
    }

    /// Total disk bytes read across all backends (completed flows).
    pub fn total_bytes_read(&self) -> f64 {
        self.backends.iter().map(|b| b.bytes_read_completed).sum()
    }

    /// Total logical bytes written across all backends.
    pub fn total_bytes_written(&self) -> f64 {
        self.backends.iter().map(|b| b.write.total_logical()).sum()
    }

    /// Byte-weighted read-cache hit rate across backends.
    pub fn cache_hit_rate(&self) -> f64 {
        // Aggregate by recomputing from counters.
        let (mut h, mut m) = (0u64, 0u64);
        for b in &self.backends {
            let (bh, bm) = b.cache.counters();
            h += bh;
            m += bm;
        }
        if h + m == 0 {
            1.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Time at which all dirty bytes will have been flushed.
    pub fn all_drained_at(&mut self, now: SimTime) -> SimTime {
        self.backends.iter_mut().map(|b| b.write.drained_at(now)).max().unwrap_or(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{C3_8XLARGE, I2_8XLARGE};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn local_storage_has_one_backend_per_node() {
        let s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 4);
        assert_eq!(s.backend_count(), 4);
        assert_eq!(s.backend_of(0), 0);
        assert_eq!(s.backend_of(3), 3);
    }

    #[test]
    fn shared_storage_has_single_backend() {
        let s = Storage::new(StorageConfig::Shared(SharedFsKind::Nfs), &C3_8XLARGE, 4);
        assert_eq!(s.backend_count(), 1);
        assert_eq!(s.backend_of(0), 0);
        assert_eq!(s.backend_of(3), 0);
    }

    #[test]
    fn nfs_efficiency_decreases_with_size() {
        let e2 = SharedFsKind::Nfs.efficiency(2);
        let e6 = SharedFsKind::Nfs.efficiency(6);
        assert!(e2 > e6);
        assert!((SharedFsKind::Nfs.efficiency(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distfs_outperforms_nfs_at_scale() {
        assert!(SharedFsKind::DistFs.efficiency(25) > SharedFsKind::Nfs.efficiency(25));
    }

    #[test]
    fn shared_read_capacity_is_nic_bounded() {
        // i2 disk reads (2200 MB/s) exceed the 10 Gbps NIC (1250 MB/s); a
        // shared FS cannot ship data faster than the wire.
        let s = Storage::new(StorageConfig::Shared(SharedFsKind::DistFs), &I2_8XLARGE, 2);
        let per_node_capped = I2_8XLARGE.network_bytes_per_sec();
        let expected = per_node_capped * 2.0 * SharedFsKind::DistFs.efficiency(2);
        let mut s = s;
        s.begin_read(0, t(0.0), expected, 1); // full capacity -> 1 second
        let at = s.next_read_completion(0, t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn cache_flow_hit_then_miss() {
        let mut s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 1);
        assert!(!s.cache_lookup(0, 7, 1e6), "cold read misses");
        s.cache_insert(0, 7, 1e6);
        assert!(s.cache_lookup(0, 7, 1e6), "after insert it hits");
    }

    #[test]
    fn local_caches_are_per_node() {
        let mut s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 2);
        s.cache_insert(0, 7, 1e6);
        assert!(s.cache_lookup(0, 7, 1e6));
        assert!(!s.cache_lookup(1, 7, 1e6), "node 1 has its own cache");
    }

    #[test]
    fn shared_cache_is_cluster_wide() {
        let mut s = Storage::new(StorageConfig::Shared(SharedFsKind::DistFs), &C3_8XLARGE, 3);
        s.cache_insert(0, 7, 1e6);
        assert!(s.cache_lookup(2, 7, 1e6), "written on node 0, hit from node 2");
    }

    #[test]
    fn read_accounting_on_completion() {
        let mut s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 1);
        s.begin_read(0, t(0.0), 250e6, 42); // exactly 1 second at 250 MB/s
        let at = s.next_read_completion(0, t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 1e-3);
        let tags = s.pop_read_completed(0, at);
        assert_eq!(tags, vec![42]);
        assert!((s.total_bytes_read() - 250e6).abs() < 1.0);
    }

    #[test]
    fn write_accounting() {
        let mut s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 1);
        let done = s.submit_write(0, t(0.0), 1e9);
        assert!(done > t(0.0));
        assert_eq!(s.total_bytes_written(), 1e9);
    }

    #[test]
    fn rescale_shared_changes_capacity() {
        let mut s = Storage::new(StorageConfig::Shared(SharedFsKind::DistFs), &C3_8XLARGE, 2);
        s.rescale_shared(t(0.0), &C3_8XLARGE, 4);
        // Read of (4-node capacity x 1 s) completes in ~1 s.
        let cap = C3_8XLARGE.disk.read_bytes_per_sec().min(C3_8XLARGE.network_bytes_per_sec())
            * 4.0
            * SharedFsKind::DistFs.efficiency(4);
        s.begin_read(0, t(0.0), cap, 1);
        let at = s.next_read_completion(0, t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn hit_rate_aggregates() {
        let mut s = Storage::new(StorageConfig::LocalDisk, &C3_8XLARGE, 1);
        s.cache_insert(0, 1, 10.0);
        s.cache_lookup(0, 1, 10.0);
        s.cache_lookup(0, 2, 10.0);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-9);
    }
}
