//! Fluid processor-sharing resource (disk/FS read bandwidth).
//!
//! Models `n` concurrent flows sharing a fixed capacity `C` equally: each
//! flow progresses at `C / n` bytes per second, with `n` changing as flows
//! join and complete. Implemented with the classic *virtual time* technique:
//! virtual time `V` advances at `C / n` per real second, a flow of `w` bytes
//! arriving at virtual time `V0` finishes when `V = V0 + w`, and the next
//! completion is always the minimum virtual finish — an `O(log n)` heap
//! operation per membership change instead of an `O(n)` rescan.
//!
//! DEWE v2's worker nodes read their inputs from a shared POSIX file system
//! and the paper treats that bandwidth as statistically identical across
//! workers (§III.A); equal-share fluid flow is the canonical model of that
//! assumption.

use crate::hash::TokenMap;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies an in-flight flow on one [`FairShare`] resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(u64);

/// Total-ordered f64 wrapper for the completion heap (virtual finish times
/// are always finite).
#[derive(PartialEq, PartialOrd)]
struct Vf(f64);
impl Eq for Vf {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Vf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("virtual finish times are finite")
    }
}

struct Flow {
    vfinish: f64,
    bytes: f64,
    tag: u64,
}

/// An equal-share fluid resource.
pub struct FairShare {
    /// Capacity in bytes per second.
    capacity: f64,
    /// Current virtual time (bytes of service delivered per flow).
    vnow: f64,
    /// Wall-clock moment `vnow` was last advanced to.
    last: SimTime,
    flows: TokenMap<Flow>,
    heap: BinaryHeap<Reverse<(Vf, u64)>>,
    next_id: u64,
    /// Total bytes delivered to completed flows (for throughput accounting).
    completed_bytes: f64,
    /// Wall seconds during which at least one flow was active.
    busy_secs: f64,
}

impl FairShare {
    /// New resource with the given capacity in bytes/second.
    pub fn new(capacity_bytes_per_sec: f64) -> Self {
        assert!(
            capacity_bytes_per_sec.is_finite() && capacity_bytes_per_sec > 0.0,
            "capacity must be positive"
        );
        Self {
            capacity: capacity_bytes_per_sec,
            vnow: 0.0,
            last: SimTime::ZERO,
            flows: TokenMap::default(),
            heap: BinaryHeap::new(),
            next_id: 0,
            completed_bytes: 0.0,
            busy_secs: 0.0,
        }
    }

    /// Capacity in bytes/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Adjust capacity (used when cluster membership changes under a shared
    /// file system whose aggregate bandwidth depends on node count).
    pub fn set_capacity(&mut self, now: SimTime, capacity_bytes_per_sec: f64) {
        assert!(capacity_bytes_per_sec > 0.0);
        self.advance(now);
        self.capacity = capacity_bytes_per_sec;
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Bytes delivered to flows that have been harvested as complete.
    pub fn completed_bytes(&self) -> f64 {
        self.completed_bytes
    }

    /// Seconds with ≥1 active flow, up to the last advance.
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    /// Advance virtual time to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.secs_since(self.last);
        if dt > 0.0 {
            let n = self.flows.len();
            if n > 0 {
                self.vnow += self.capacity * dt / n as f64;
                self.busy_secs += dt;
            }
            self.last = now;
        } else {
            self.last = self.last.max(now);
        }
    }

    /// Start a flow of `bytes` at `now`, carrying an opaque `tag`.
    pub fn start(&mut self, now: SimTime, bytes: f64, tag: u64) -> FlowId {
        debug_assert!(bytes >= 0.0);
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        let vfinish = self.vnow + bytes;
        self.flows.insert(id, Flow { vfinish, bytes, tag });
        self.heap.push(Reverse((Vf(vfinish), id)));
        FlowId(id)
    }

    /// Abort a flow (worker failure). Bytes already delivered count toward
    /// throughput; the remainder is discarded. Returns the tag if the flow
    /// was still active.
    pub fn cancel(&mut self, now: SimTime, flow: FlowId) -> Option<u64> {
        self.advance(now);
        self.flows.remove(&flow.0).map(|f| {
            let delivered = (f.bytes - (f.vfinish - self.vnow)).max(0.0);
            self.completed_bytes += delivered;
            f.tag
        })
    }

    /// Absolute time of the next flow completion, if any flows are active.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let n = self.flows.len();
        if n == 0 {
            return None;
        }
        // Skip tombstones (cancelled flows).
        while let Some(Reverse((Vf(vf), id))) = self.heap.peek() {
            if let Some(f) = self.flows.get(id) {
                if (f.vfinish - vf).abs() < f64::EPSILON {
                    let remaining_v = (f.vfinish - self.vnow).max(0.0);
                    let dt = remaining_v * n as f64 / self.capacity;
                    // Round up a microsecond so the completion event never
                    // fires before the fluid model agrees the flow is done.
                    let at = now.plus_secs_f64(dt) + SimTime(1);
                    return Some(at);
                }
            }
            self.heap.pop();
        }
        None
    }

    /// Harvest all flows that have completed by `now`, returning their tags.
    pub fn pop_completed(&mut self, now: SimTime) -> Vec<u64> {
        let mut done = Vec::new();
        self.pop_completed_into(now, &mut done);
        done
    }

    /// Like [`Self::pop_completed`], appending the tags to `done` so a
    /// caller-owned buffer can be reused across harvests.
    pub fn pop_completed_into(&mut self, now: SimTime, done: &mut Vec<u64>) {
        self.advance(now);
        let eps = 1e-6 * self.vnow.abs().max(1.0);
        while let Some(Reverse((Vf(vf), id))) = self.heap.peek() {
            let id = *id;
            match self.flows.get(&id) {
                None => {
                    self.heap.pop(); // cancelled
                }
                Some(f) if f.vfinish <= self.vnow + eps => {
                    let f = self.flows.remove(&id).unwrap();
                    debug_assert!((f.vfinish - vf).abs() < f64::EPSILON);
                    self.completed_bytes += f.bytes;
                    done.push(f.tag);
                    self.heap.pop();
                }
                Some(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_flow_runs_at_full_capacity() {
        let mut r = FairShare::new(100.0); // 100 B/s
        r.start(t(0.0), 500.0, 1);
        let done_at = r.next_completion(t(0.0)).unwrap();
        assert!((done_at.as_secs_f64() - 5.0).abs() < 1e-3);
        assert_eq!(r.pop_completed(done_at), vec![1]);
        assert!((r.completed_bytes() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_flows_share_evenly() {
        let mut r = FairShare::new(100.0);
        r.start(t(0.0), 500.0, 1);
        r.start(t(0.0), 500.0, 2);
        // Each gets 50 B/s -> both done at 10 s.
        let at = r.next_completion(t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 10.0).abs() < 1e-3);
        let mut done = r.pop_completed(at);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        let mut r = FairShare::new(100.0);
        r.start(t(0.0), 500.0, 1);
        // At t=2, 200 bytes done; 300 remain. Second flow joins.
        r.start(t(2.0), 1000.0, 2);
        // Flow 1: 300 bytes at 50 B/s -> completes at t=8.
        let at = r.next_completion(t(2.0)).unwrap();
        assert!((at.as_secs_f64() - 8.0).abs() < 1e-3, "got {at:?}");
        assert_eq!(r.pop_completed(at), vec![1]);
        // Flow 2: had 1000 - 300 = 700 left at t=8, now alone at 100 B/s -> t=15.
        let at2 = r.next_completion(at).unwrap();
        assert!((at2.as_secs_f64() - 15.0).abs() < 1e-3, "got {at2:?}");
        assert_eq!(r.pop_completed(at2), vec![2]);
    }

    #[test]
    fn cancellation_speeds_up_survivor() {
        let mut r = FairShare::new(100.0);
        let f1 = r.start(t(0.0), 1000.0, 1);
        r.start(t(0.0), 1000.0, 2);
        // At t=5 each has 250 done. Cancel flow 1.
        assert_eq!(r.cancel(t(5.0), f1), Some(1));
        // Flow 2: 750 left at full 100 B/s -> t=12.5.
        let at = r.next_completion(t(5.0)).unwrap();
        assert!((at.as_secs_f64() - 12.5).abs() < 1e-3);
        assert_eq!(r.pop_completed(at), vec![2]);
        // Cancelled flow's partial service (250) still counted.
        assert!((r.completed_bytes() - 1250.0).abs() < 1e-3);
    }

    #[test]
    fn cancel_twice_returns_none() {
        let mut r = FairShare::new(10.0);
        let f = r.start(t(0.0), 10.0, 9);
        assert_eq!(r.cancel(t(0.1), f), Some(9));
        assert_eq!(r.cancel(t(0.2), f), None);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut r = FairShare::new(100.0);
        r.start(t(1.0), 0.0, 7);
        let at = r.next_completion(t(1.0)).unwrap();
        assert!(at.as_secs_f64() - 1.0 < 1e-3);
        assert_eq!(r.pop_completed(at), vec![7]);
    }

    #[test]
    fn busy_time_tracks_active_periods() {
        let mut r = FairShare::new(100.0);
        r.start(t(0.0), 100.0, 1); // busy 0..1
        let at = r.next_completion(t(0.0)).unwrap();
        r.pop_completed(at);
        // idle 1..5
        r.start(t(5.0), 200.0, 2); // busy 5..7
        let at2 = r.next_completion(t(5.0)).unwrap();
        r.pop_completed(at2);
        assert!((r.busy_secs() - 3.0).abs() < 1e-3, "busy {}", r.busy_secs());
    }

    #[test]
    fn throughput_conservation_many_flows() {
        // Total delivered bytes equals capacity x busy time, regardless of
        // how flows interleave.
        let mut r = FairShare::new(1000.0);
        let mut clock = t(0.0);
        for i in 0..50 {
            r.start(clock, 100.0 + 13.0 * (i % 7) as f64, i);
            clock = clock.plus_secs_f64(0.01);
        }
        let mut harvested = 0;
        while let Some(at) = r.next_completion(clock) {
            clock = at;
            harvested += r.pop_completed(clock).len();
        }
        assert_eq!(harvested, 50);
        let expected: f64 = (0..50).map(|i| 100.0 + 13.0 * (i % 7) as f64).sum();
        assert!((r.completed_bytes() - expected).abs() / expected < 1e-6);
        assert!((r.capacity() * r.busy_secs() - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn set_capacity_rescales_future_progress() {
        let mut r = FairShare::new(100.0);
        r.start(t(0.0), 1000.0, 1);
        // At t=5: 500 delivered. Double the capacity.
        r.set_capacity(t(5.0), 200.0);
        let at = r.next_completion(t(5.0)).unwrap();
        assert!((at.as_secs_f64() - 7.5).abs() < 1e-3, "got {at:?}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FairShare::new(0.0);
    }
}
