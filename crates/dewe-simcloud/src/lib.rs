//! # dewe-simcloud
//!
//! A deterministic discrete-event simulator of public-cloud clusters,
//! calibrated to the Amazon EC2 instance types of the DEWE v2 paper
//! (Tables I and II). It is the substitute for the paper's physical
//! testbeds — up to 40 × c3.8xlarge (1,280 vCPUs) — and reproduces the
//! resource behaviours the paper's arguments rest on:
//!
//! * **CPU**: fixed-rate cores; jobs occupy `cores` of a node's vCPUs for
//!   `cpu_seconds / cores` wall seconds (engines enforce the paper's
//!   one-thread-per-vCPU concurrency cap, so cores are never oversubscribed).
//! * **Disk reads**: a fluid *processor-sharing* resource per storage
//!   backend — `n` concurrent read flows each progress at `capacity / n` —
//!   implemented with the virtual-time technique so each membership change
//!   costs `O(log n)`.
//! * **Disk writes**: a leaky-bucket *page cache* model. Logical writes
//!   complete at memory speed while the dirty-byte budget lasts and are
//!   throttled to the device's sequential-write rate beyond it. This is
//!   what makes Montage's stage 1 CPU-bound on every instance type despite
//!   heavy logical write traffic (paper Fig. 4 discussion).
//! * **Read cache**: a FIFO byte-budget cache over recently written/read
//!   files. Stage-1 `mDiffFit` reads hit (their inputs were just written);
//!   stage-3 `mBackground` reads miss (stage 2 flushed residency), which is
//!   exactly the I/O signature of paper Fig. 4.
//! * **Shared file systems**: an NFS model (N-to-N cross mounts with a
//!   per-node efficiency penalty growing in cluster size) and a
//!   MooseFS-like distributed model (aggregate bandwidth with a smaller
//!   penalty), matching §V.B's move from NFS to MooseFS at scale.
//! * **Cost**: per-instance-hour billing with partial hours rounded up
//!   (the paper's motivation for the 55-minute deadline), plus a
//!   per-minute variant for the dynamic-provisioning extension.
//!
//! The high-level entry point is [`ExecSim`]: engines submit *jobs*
//! (read set → compute → write set) to *nodes* and receive completion
//! events; everything else — fair sharing, caching, throttling, counters —
//! happens inside. Both the DEWE v2 engine and the Pegasus-like baseline
//! drive the same `ExecSim`, so their comparison isolates coordination
//! policy, exactly as the paper intends.
//!
//! ```
//! use dewe_simcloud::{ClusterConfig, ExecSim, JobProfile, SimEvent,
//!     StorageConfig, C3_8XLARGE};
//!
//! let mut sim = ExecSim::new(ClusterConfig {
//!     instance: C3_8XLARGE,
//!     nodes: 1,
//!     storage: StorageConfig::LocalDisk,
//! });
//! // A job that reads 250 MB cold (1 s at c3's 250 MB/s) then computes 2 s.
//! sim.submit_job(7, 0, &JobProfile {
//!     reads: vec![(1, 250e6)],
//!     cpu_seconds: 2.0,
//!     cores: 1,
//!     writes: vec![],
//! });
//! match sim.next() {
//!     Some(SimEvent::JobFinished { token, timings, .. }) => {
//!         assert_eq!(token, 7);
//!         assert!((timings.total_secs() - 3.0).abs() < 0.01);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

mod bucket;
mod cluster;
mod cost;
mod exec;
mod fairshare;
mod hash;
mod instance;
mod kernel;
mod readcache;
mod storage;
mod time;

pub use bucket::WriteBucket;
pub use cluster::{Cluster, ClusterConfig, NodeCounters, NodeId};
pub use cost::{BillingModel, CostModel};
pub use exec::{ExecSim, JobProfile, JobTimings, SimEvent};
pub use fairshare::{FairShare, FlowId};
pub use instance::{DiskProfile, InstanceType, C3_8XLARGE, I2_8XLARGE, M3_2XLARGE, R3_8XLARGE};
pub use kernel::{EventId, EventQueue};
pub use readcache::ReadCache;
pub use storage::{SharedFsKind, Storage, StorageConfig};
pub use time::{SimTime, MICROS_PER_SEC};
