//! Multiplicative hashing for the simulator's token-keyed maps.
//!
//! Every map on the simulation hot path is keyed by a small opaque `u64`
//! (job ids, file keys, flow ids). The standard library's default SipHash
//! is DoS-resistant but costs tens of nanoseconds per operation — real
//! money when a single simulated job performs ~20 map operations and the
//! goal is millions of simulated jobs per second. Tokens here are
//! program-generated, never attacker-controlled, so a Fibonacci
//! multiplicative hash (one `wrapping_mul` with a 64-bit golden-ratio
//! constant) is sufficient and an order of magnitude cheaper.

use std::hash::{BuildHasherDefault, Hasher};

/// `floor(2^64 / φ)`, odd — the classic Fibonacci hashing multiplier.
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// One-multiply hasher for integer keys.
#[derive(Default)]
pub struct TokenHasher {
    state: u64,
}

impl Hasher for TokenHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys: fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Rotate so high key bits also reach the map's low index bits.
        self.state = (self.state ^ n).wrapping_mul(PHI64).rotate_left(26);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for token-keyed maps.
pub type TokenBuildHasher = BuildHasherDefault<TokenHasher>;

/// `HashMap` keyed by simulator tokens.
pub type TokenMap<V> = std::collections::HashMap<u64, V, TokenBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_spread() {
        // Low bits (what HashMap indexes by) must differ for dense keys.
        let h = |k: u64| {
            let mut hasher = TokenHasher::default();
            hasher.write_u64(k);
            hasher.finish()
        };
        let mut low: Vec<u64> = (0..64).map(|k| h(k) & 0xfff).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() >= 60, "dense keys must not collide in low bits: {}", low.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: TokenMap<&str> = TokenMap::default();
        m.insert(7, "seven");
        m.insert(1 << 56, "tagged");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&(1 << 56)), Some(&"tagged"));
        assert_eq!(m.remove(&7), Some("seven"));
        assert!(!m.contains_key(&7));
    }
}
