//! Discrete-event kernel: a cancelable future-event list.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
///
/// Encodes `(generation << 32) | slot`; the generation is bumped every
/// time a slot is vacated, so a stale handle (fired or cancelled event,
/// possibly with the slot since reused) can never cancel a newer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn pack(gen: u32, slot: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    #[inline]
    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

struct Slot<E> {
    gen: u32,
    payload: Option<E>,
}

/// A deterministic future-event list.
///
/// Events fire in `(time, insertion sequence)` order, so simultaneous
/// events resolve in schedule order — a fixed tie-break that keeps the
/// whole simulation reproducible. Cancellation is O(1) via tombstones that
/// are skipped (and freed) on pop; this supports the fair-share resources,
/// whose predicted completion events are rescheduled whenever a flow joins
/// or leaves.
///
/// Payloads live in a slab of generation-checked slots rather than a map:
/// schedule and pop — paid by every event in the simulation — touch only a
/// vector index and the heap, never a hash table.
pub struct EventQueue<E> {
    /// `Reverse<(time, schedule seq, packed slot id)>`. The sequence number
    /// is globally monotonic and gives simultaneous events their
    /// schedule-order tie-break; the packed id locates the payload.
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` (it will fire next), which
    /// absorbs float round-off in duration computations.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].payload = Some(event);
                slot
            }
            None => {
                self.slots.push(Slot { gen: 0, payload: Some(event) });
                (self.slots.len() - 1) as u32
            }
        };
        let id = EventId::pack(self.slots[slot as usize].gen, slot);
        self.heap.push(Reverse((at, self.seq, id.0)));
        self.seq += 1;
        self.live += 1;
        id
    }

    /// Schedule `event` after `delay_secs` seconds of simulated time.
    pub fn schedule_in(&mut self, delay_secs: f64, event: E) -> EventId {
        let at = self.now.plus_secs_f64(delay_secs);
        self.schedule(at, event)
    }

    /// Take the payload if `id` still names a live event, vacating its slot.
    #[inline]
    fn extract(&mut self, id: EventId) -> Option<E> {
        let (gen, slot) = id.unpack();
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.gen != gen {
            return None; // already fired or cancelled; slot may be reused
        }
        let payload = entry.payload.take()?;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some(payload)
    }

    /// Cancel a scheduled event. Idempotent; cancelling an already-fired
    /// event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let _ = self.extract(id);
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((at, _, id))) = self.heap.pop() {
            if let Some(payload) = self.extract(EventId(id)) {
                debug_assert!(at >= self.now, "time must be monotonic");
                self.now = at;
                return Some((at, payload));
            }
            // tombstone: skip
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, _, id))) = self.heap.peek() {
            let (gen, slot) = EventId(id).unpack();
            if self.slots[slot as usize].gen == gen {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(2), "alive");
        q.cancel(id);
        assert_eq!(q.pop().unwrap().1, "alive");
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.pop();
        q.cancel(id); // no panic
        q.cancel(id);
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let dead = q.schedule(SimTime::from_secs(1), "first");
        q.pop();
        // The freed slot is reused by the next schedule; the stale handle
        // must not be able to cancel the new occupant.
        let live = q.schedule(SimTime::from_secs(2), "second");
        assert_ne!(dead, live);
        q.cancel(dead);
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "later");
        q.pop();
        q.schedule(SimTime::from_secs(1), "clamped");
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "clamped");
        assert_eq!(at, SimTime::from_secs(10));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(4), "alive");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_uses_now() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(2.0, "second");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(7));
    }

    #[test]
    fn empty_checks() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.schedule(SimTime::from_secs(1), ());
        assert!(!q.is_empty());
        q.cancel(id);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
