//! Leaky-bucket page-cache model for disk writes.
//!
//! The paper observes (§IV.A, Fig. 4b) that Montage's stage 1 is CPU-bound
//! on *every* instance type despite massive logical write traffic, because
//! "the operating system caches the disk writes and flushes them to the
//! disk in batches". [`WriteBucket`] reproduces that: logical writes land
//! in a dirty-byte budget at memory speed and drain to the device at its
//! sequential-write rate; once the budget is exhausted, writers stall until
//! enough bytes have drained — the Linux `dirty_ratio` throttling behaviour.
//!
//! The model is analytic: each `submit` returns the completion time in O(1),
//! with no events needed for the background drain.

use crate::time::SimTime;

/// A shared write path: page cache in front of a draining device.
#[derive(Debug, Clone)]
pub struct WriteBucket {
    /// Device sequential-write rate, bytes/second.
    drain_rate: f64,
    /// Memory-copy rate for cache-absorbed writes, bytes/second.
    cache_rate: f64,
    /// Dirty-byte budget (cache capacity for unflushed data).
    dirty_limit: f64,
    /// Dirty bytes at `last`.
    dirty: f64,
    last: SimTime,
    /// Total bytes ever submitted.
    total_logical: f64,
}

impl WriteBucket {
    /// New bucket. `drain_rate` is the device's sequential-write bandwidth;
    /// `dirty_limit` the unflushed-byte budget (≈ Linux `dirty_ratio` × RAM);
    /// `cache_rate` the in-memory absorption speed.
    pub fn new(drain_rate: f64, dirty_limit: f64, cache_rate: f64) -> Self {
        assert!(drain_rate > 0.0 && cache_rate > 0.0 && dirty_limit >= 0.0);
        Self {
            drain_rate,
            cache_rate,
            dirty_limit,
            dirty: 0.0,
            last: SimTime::ZERO,
            total_logical: 0.0,
        }
    }

    /// Device drain rate in bytes/second.
    pub fn drain_rate(&self) -> f64 {
        self.drain_rate
    }

    /// Adjust the drain rate (shared-FS capacity changes with membership).
    pub fn set_drain_rate(&mut self, now: SimTime, rate: f64) {
        assert!(rate > 0.0);
        self.advance(now);
        self.drain_rate = rate;
    }

    /// Adjust the dirty budget (aggregate RAM changes with membership).
    pub fn set_dirty_limit(&mut self, now: SimTime, limit: f64) {
        assert!(limit >= 0.0);
        self.advance(now);
        self.dirty_limit = limit;
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.secs_since(self.last);
        if dt > 0.0 {
            self.dirty = (self.dirty - self.drain_rate * dt).max(0.0);
            self.last = now;
        }
    }

    /// Submit a logical write of `bytes`; returns its completion time.
    ///
    /// While the dirty budget has room the write completes at memory speed;
    /// otherwise it stalls until the backlog has drained enough to admit it.
    /// Oversized writes (`bytes > dirty_limit`) degrade gracefully to device
    /// speed. Thin wrapper over [`Self::submit_batch`].
    pub fn submit(&mut self, now: SimTime, bytes: f64) -> SimTime {
        self.submit_batch(now, std::iter::once(bytes))
    }

    /// Submit a set of writes (a job's output files) as **one** bucket
    /// update; returns the completion time of the whole batch.
    ///
    /// The files are summed and charged together: one `advance` and one
    /// budget decision per job instead of one per file, and the returned
    /// completion covers the total byte count (a job that emits ten files
    /// is done when all ten have landed, not when the largest one has).
    /// Negative sizes are clamped to zero.
    pub fn submit_batch(&mut self, now: SimTime, files: impl IntoIterator<Item = f64>) -> SimTime {
        let bytes: f64 = files.into_iter().map(|b| b.max(0.0)).sum();
        self.advance(now);
        self.total_logical += bytes;
        let copy_secs = bytes / self.cache_rate;
        let completion = if self.dirty + bytes <= self.dirty_limit {
            // Fits: absorbed at memory speed.
            self.dirty += bytes;
            now.plus_secs_f64(copy_secs)
        } else if bytes <= self.dirty_limit {
            // Stall until the backlog drains enough to admit `bytes`.
            let need = self.dirty + bytes - self.dirty_limit;
            let stall = need / self.drain_rate;
            self.dirty = self.dirty_limit;
            now.plus_secs_f64(stall + copy_secs)
        } else {
            // Larger than the whole budget: effectively write-through. The
            // excess is charged at device rate on top of any backlog stall.
            let backlog_stall = self.dirty / self.drain_rate;
            let through = bytes / self.drain_rate;
            self.dirty = self.dirty_limit;
            now.plus_secs_f64(backlog_stall + through)
        };
        // The drain clock restarts from `now`; completion timestamps are
        // derived, not state.
        completion
    }

    /// Dirty (unflushed) bytes at `now`.
    pub fn dirty(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.dirty
    }

    /// Total bytes physically drained to the device by `now`.
    pub fn drained_total(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.total_logical - self.dirty
    }

    /// Total bytes ever submitted.
    pub fn total_logical(&self) -> f64 {
        self.total_logical
    }

    /// Earliest time the bucket will be fully drained (for makespan
    /// accounting that includes final flushes).
    pub fn drained_at(&mut self, now: SimTime) -> SimTime {
        self.advance(now);
        now.plus_secs_f64(self.dirty / self.drain_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn bucket() -> WriteBucket {
        // 100 B/s drain, 1000 B budget, 10_000 B/s memory.
        WriteBucket::new(100.0, 1000.0, 10_000.0)
    }

    #[test]
    fn small_write_completes_at_memory_speed() {
        let mut b = bucket();
        let done = b.submit(t(0.0), 500.0);
        assert!((done.as_secs_f64() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut b = bucket();
        b.submit(t(0.0), 500.0);
        assert!((b.dirty(t(2.0)) - 300.0).abs() < 1e-6); // 200 drained
        assert!((b.drained_total(t(2.0)) - 200.0).abs() < 1e-6);
        assert_eq!(b.dirty(t(100.0)), 0.0);
    }

    #[test]
    fn full_budget_stalls_writer() {
        let mut b = bucket();
        b.submit(t(0.0), 1000.0); // fills the budget
                                  // Immediately write 300 more: must wait for 300 to drain (3 s).
        let done = b.submit(t(0.0), 300.0);
        assert!((done.as_secs_f64() - (3.0 + 0.03)).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn partially_drained_budget_stalls_less() {
        let mut b = bucket();
        b.submit(t(0.0), 1000.0);
        // At t=5, 500 drained, dirty=500. A 700-byte write needs 200 drained.
        let done = b.submit(t(5.0), 700.0);
        assert!((done.as_secs_f64() - (5.0 + 2.0 + 0.07)).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn oversized_write_goes_through_at_device_rate() {
        let mut b = bucket();
        let done = b.submit(t(0.0), 5000.0); // 5x the budget
        assert!((done.as_secs_f64() - 50.0).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn oversized_write_pays_existing_backlog_first() {
        let mut b = bucket();
        b.submit(t(0.0), 1000.0);
        let done = b.submit(t(0.0), 5000.0);
        // 10 s backlog + 50 s write-through.
        assert!((done.as_secs_f64() - 60.0).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn drained_at_projects_flush_completion() {
        let mut b = bucket();
        b.submit(t(0.0), 800.0);
        let at = b.drained_at(t(0.0));
        assert!((at.as_secs_f64() - 8.0).abs() < 1e-3);
    }

    #[test]
    fn zero_byte_write_is_free() {
        let mut b = bucket();
        let done = b.submit(t(3.0), 0.0);
        assert_eq!(done, t(3.0));
    }

    #[test]
    fn throughput_shape_is_bursty_then_throttled() {
        // Writes beyond the budget proceed at exactly the device rate: the
        // "intermittent disk writes at full capacity" of paper Fig. 4b.
        let mut b = bucket();
        let mut now = t(0.0);
        let mut completions = Vec::new();
        for _ in 0..30 {
            let done = b.submit(now, 200.0);
            completions.push(done);
            now = done;
        }
        // First 5 writes (1000 B) absorbed at memory speed; afterwards the
        // inter-completion gap approaches bytes/drain_rate = 2 s.
        let early = completions[1].secs_since(completions[0]);
        let late = completions[29].secs_since(completions[28]);
        assert!(early < 0.05);
        assert!((late - 2.0).abs() < 0.1, "late gap {late}");
    }

    #[test]
    fn batch_charges_the_total_in_one_update() {
        let mut a = bucket();
        let mut b = bucket();
        let batched = a.submit_batch(t(0.0), [300.0, 500.0, 200.0]);
        let single = b.submit(t(0.0), 1000.0);
        assert_eq!(batched, single);
        assert_eq!(a.dirty(t(0.0)), b.dirty(t(0.0)));
        assert_eq!(a.total_logical(), b.total_logical());
    }

    #[test]
    fn saturating_batch_stalls_on_the_sum_not_the_largest_file() {
        let mut b = bucket();
        b.submit(t(0.0), 1000.0); // fill the budget
                                  // Three 200-byte files: 600 bytes must drain (6 s), not 200 (2 s).
        let done = b.submit_batch(t(0.0), [200.0, 200.0, 200.0]);
        assert!((done.as_secs_f64() - (6.0 + 0.06)).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn batch_clamps_negative_sizes_and_tolerates_empty() {
        let mut b = bucket();
        assert_eq!(b.submit_batch(t(1.0), [-5.0]), t(1.0));
        assert_eq!(b.submit_batch(t(1.0), std::iter::empty()), t(1.0));
        assert_eq!(b.total_logical(), 0.0);
    }

    #[test]
    fn set_drain_rate_applies_from_now() {
        let mut b = bucket();
        b.submit(t(0.0), 1000.0);
        b.set_drain_rate(t(0.0), 200.0);
        assert!((b.dirty(t(5.0)) - 0.0).abs() < 1e-6); // 1000 drained in 5 s
    }
}
