//! Cloud billing models.
//!
//! The paper's provisioning strategy (§V.B) is built around AWS's 2015
//! billing rule: *"users pay for EC2 instances by the hour, and any partial
//! hour usage will be charged as a full hour"* — hence the 55-minute
//! deadline target. A per-minute model (Google Compute Engine style) is
//! included for the dynamic-provisioning extension the paper sketches in
//! §V.A.3.

/// Billing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BillingModel {
    /// Partial hours round up to whole hours (AWS, 2015).
    PerHour,
    /// Partial minutes round up to whole minutes (GCE style).
    PerMinute,
}

/// Computes rental cost for a homogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Billing granularity.
    pub billing: BillingModel,
    /// Per-node price in USD per hour.
    pub price_per_hour: f64,
}

impl CostModel {
    /// Hourly model at the given per-node price.
    pub fn hourly(price_per_hour: f64) -> Self {
        Self { billing: BillingModel::PerHour, price_per_hour }
    }

    /// Per-minute model at the given per-node price.
    pub fn per_minute(price_per_hour: f64) -> Self {
        Self { billing: BillingModel::PerMinute, price_per_hour }
    }

    /// Billed duration in hours for a run of `secs` seconds.
    pub fn billed_hours(&self, secs: f64) -> f64 {
        assert!(secs >= 0.0);
        match self.billing {
            BillingModel::PerHour => (secs / 3600.0).ceil().max(1.0),
            BillingModel::PerMinute => (secs / 60.0).ceil().max(1.0) / 60.0,
        }
    }

    /// Total cost in USD for `nodes` nodes running `secs` seconds.
    pub fn cost(&self, nodes: usize, secs: f64) -> f64 {
        self.billed_hours(secs) * self.price_per_hour * nodes as f64
    }

    /// Cost per workflow for an ensemble of `workflows` (paper Fig. 11c).
    pub fn price_per_workflow(&self, nodes: usize, secs: f64, workflows: usize) -> f64 {
        assert!(workflows > 0);
        self.cost(nodes, secs) / workflows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_hour_rounds_up() {
        let m = CostModel::hourly(1.68);
        assert_eq!(m.billed_hours(1.0), 1.0);
        assert_eq!(m.billed_hours(3600.0), 1.0);
        assert_eq!(m.billed_hours(3601.0), 2.0);
        assert_eq!(m.billed_hours(7199.0), 2.0);
    }

    #[test]
    fn minimum_one_hour() {
        let m = CostModel::hourly(2.0);
        assert_eq!(m.cost(5, 0.0), 10.0);
    }

    #[test]
    fn cluster_cost_scales_with_nodes() {
        // Table III: 40 x c3.8xlarge = 67.2 USD/hr.
        let m = CostModel::hourly(1.68);
        assert!((m.cost(40, 3300.0) - 67.2).abs() < 1e-9);
        // 25 x r3.8xlarge = 70.0 USD/hr.
        let m = CostModel::hourly(2.80);
        assert!((m.cost(25, 3300.0) - 70.0).abs() < 1e-9);
        // 23 x i2.8xlarge = 156.86 USD/hr (paper rounds to 156.7).
        let m = CostModel::hourly(6.82);
        assert!((m.cost(23, 3300.0) - 156.86).abs() < 0.5);
    }

    #[test]
    fn price_per_workflow_decreases_with_load_under_hourly() {
        // Same wall-clock hour, more workflows -> cheaper per workflow
        // (the paper's Fig. 11c argument).
        let m = CostModel::hourly(1.68);
        let p50 = m.price_per_workflow(40, 1000.0, 50);
        let p200 = m.price_per_workflow(40, 3300.0, 200);
        assert!(p200 < p50);
    }

    #[test]
    fn per_minute_model_tracks_duration() {
        let m = CostModel::per_minute(6.0); // 0.1 USD/min
        assert!((m.cost(1, 90.0) - 0.2).abs() < 1e-9); // 2 minutes
        assert!((m.cost(1, 3600.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn per_minute_cheaper_for_short_runs() {
        let hourly = CostModel::hourly(6.82);
        let minute = CostModel::per_minute(6.82);
        assert!(minute.cost(10, 600.0) < hourly.cost(10, 600.0));
    }
}
