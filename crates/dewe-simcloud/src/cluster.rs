//! Cluster state: nodes, per-node counters, and the storage substrate.

use crate::cost::CostModel;
use crate::instance::InstanceType;
use crate::storage::{Storage, StorageConfig};
use crate::time::SimTime;

/// Index of a node within a cluster.
pub type NodeId = usize;

/// Per-node cumulative counters, the mpstat/iostat-equivalent data the
/// paper's monitoring process collects every 3 seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeCounters {
    /// Integrated busy core-seconds (CPU utilization = Δ/(interval·vcpus)).
    pub cpu_busy_core_secs: f64,
    /// Cumulative disk bytes read (cache misses serviced by the device).
    pub bytes_read: f64,
    /// Cumulative logical bytes written.
    pub bytes_written: f64,
    /// Worker threads currently executing jobs.
    pub threads_running: u32,
    /// Cores currently busy computing.
    pub cores_busy: u32,
}

struct Node {
    counters: NodeCounters,
    /// Last time `cpu_busy_core_secs` was integrated up to.
    last_cpu_update: SimTime,
    active: bool,
}

/// Configuration for [`Cluster::new`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Instance type for every node (the paper's clusters are homogeneous).
    pub instance: InstanceType,
    /// Node count.
    pub nodes: usize,
    /// Storage arrangement.
    pub storage: StorageConfig,
}

/// A cluster of cloud instances plus its storage substrate.
///
/// Clusters are homogeneous by default (the paper's setting: same instance
/// type, same placement group). [`Cluster::set_speed_factor`] introduces
/// controlled heterogeneity — per-node CPU speed multipliers — used by the
/// ablation that probes how the pulling model degrades when the paper's
/// homogeneity assumption is violated (as in grids).
pub struct Cluster {
    instance: InstanceType,
    nodes: Vec<Node>,
    storage: Storage,
    /// Per-node CPU speed multiplier (1.0 = nominal; 0.5 = half speed).
    speed: Vec<f64>,
}

impl Cluster {
    /// Build a cluster.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        let storage = Storage::new(config.storage, &config.instance, config.nodes);
        let nodes = (0..config.nodes)
            .map(|_| Node {
                counters: NodeCounters::default(),
                last_cpu_update: SimTime::ZERO,
                active: true,
            })
            .collect();
        let speed = vec![1.0; config.nodes];
        Self { instance: config.instance, nodes, storage, speed }
    }

    /// Set a node's CPU speed multiplier (heterogeneity ablation).
    pub fn set_speed_factor(&mut self, node: NodeId, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        self.speed[node] = factor;
    }

    /// A node's CPU speed multiplier.
    pub fn speed_factor(&self, node: NodeId) -> f64 {
        self.speed[node]
    }

    /// Instance type of every node.
    pub fn instance(&self) -> &InstanceType {
        &self.instance
    }

    /// Number of nodes (including deactivated ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// vCPUs per node.
    pub fn vcpus(&self) -> u32 {
        self.instance.vcpus
    }

    /// Total vCPUs across active nodes.
    pub fn total_vcpus(&self) -> u32 {
        self.nodes.iter().filter(|n| n.active).count() as u32 * self.instance.vcpus
    }

    /// Storage substrate.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable storage substrate.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Hourly cost model at this instance type's price.
    pub fn cost_model(&self) -> CostModel {
        CostModel::hourly(self.instance.price_per_hour)
    }

    fn integrate_cpu(&mut self, node: NodeId, now: SimTime) {
        let n = &mut self.nodes[node];
        let dt = now.secs_since(n.last_cpu_update);
        if dt > 0.0 {
            n.counters.cpu_busy_core_secs += dt * n.counters.cores_busy as f64;
            n.last_cpu_update = now;
        }
    }

    /// A job's compute phase starts on `node` using `cores` cores.
    pub fn start_compute(&mut self, node: NodeId, cores: u32, now: SimTime) {
        self.integrate_cpu(node, now);
        self.nodes[node].counters.cores_busy += cores;
        debug_assert!(
            self.nodes[node].counters.cores_busy <= self.instance.vcpus,
            "engine oversubscribed node {node}: {} cores busy",
            self.nodes[node].counters.cores_busy
        );
    }

    /// A job's compute phase ends.
    pub fn end_compute(&mut self, node: NodeId, cores: u32, now: SimTime) {
        self.integrate_cpu(node, now);
        let c = &mut self.nodes[node].counters;
        debug_assert!(c.cores_busy >= cores);
        c.cores_busy = c.cores_busy.saturating_sub(cores);
    }

    /// A worker thread started handling a job on `node`.
    pub fn thread_started(&mut self, node: NodeId) {
        self.nodes[node].counters.threads_running += 1;
    }

    /// A worker thread finished.
    pub fn thread_finished(&mut self, node: NodeId) {
        let c = &mut self.nodes[node].counters;
        debug_assert!(c.threads_running > 0);
        c.threads_running = c.threads_running.saturating_sub(1);
    }

    /// Attribute completed disk-read bytes to `node`.
    pub fn add_read_bytes(&mut self, node: NodeId, bytes: f64) {
        self.nodes[node].counters.bytes_read += bytes;
    }

    /// Attribute written bytes to `node`.
    pub fn add_write_bytes(&mut self, node: NodeId, bytes: f64) {
        self.nodes[node].counters.bytes_written += bytes;
    }

    /// Snapshot of a node's counters with CPU integrated up to `now`.
    pub fn counters(&mut self, node: NodeId, now: SimTime) -> NodeCounters {
        self.integrate_cpu(node, now);
        self.nodes[node].counters
    }

    /// Mark a node active/inactive (dynamic provisioning extension). The
    /// shared-storage capacity is rescaled to the active node count.
    pub fn set_active(&mut self, node: NodeId, active: bool, now: SimTime) {
        self.nodes[node].active = active;
        let active_count = self.nodes.iter().filter(|n| n.active).count().max(1);
        self.storage.rescale_shared(now, &self.instance, active_count);
    }

    /// Is the node active?
    pub fn is_active(&self, node: NodeId) -> bool {
        self.nodes[node].active
    }

    /// Indices of active nodes.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].active).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::C3_8XLARGE;
    use crate::storage::SharedFsKind;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            instance: C3_8XLARGE,
            nodes,
            storage: StorageConfig::Shared(SharedFsKind::Nfs),
        })
    }

    #[test]
    fn basic_shape() {
        let c = cluster(4);
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.vcpus(), 32);
        assert_eq!(c.total_vcpus(), 128);
    }

    #[test]
    fn cpu_integration() {
        let mut c = cluster(1);
        c.start_compute(0, 8, t(0.0));
        c.start_compute(0, 8, t(0.0));
        // 16 cores busy for 2 s.
        c.end_compute(0, 8, t(2.0));
        // 8 cores busy for 3 more s.
        let counters = c.counters(0, t(5.0));
        assert!((counters.cpu_busy_core_secs - (32.0 + 24.0)).abs() < 1e-6);
        assert_eq!(counters.cores_busy, 8);
    }

    #[test]
    fn thread_accounting() {
        let mut c = cluster(2);
        c.thread_started(1);
        c.thread_started(1);
        c.thread_finished(1);
        assert_eq!(c.counters(1, t(0.0)).threads_running, 1);
        assert_eq!(c.counters(0, t(0.0)).threads_running, 0);
    }

    #[test]
    fn byte_attribution_is_per_node() {
        let mut c = cluster(2);
        c.add_read_bytes(0, 100.0);
        c.add_write_bytes(1, 200.0);
        assert_eq!(c.counters(0, t(0.0)).bytes_read, 100.0);
        assert_eq!(c.counters(0, t(0.0)).bytes_written, 0.0);
        assert_eq!(c.counters(1, t(0.0)).bytes_written, 200.0);
    }

    #[test]
    fn deactivation_shrinks_active_set() {
        let mut c = cluster(3);
        c.set_active(1, false, t(0.0));
        assert_eq!(c.active_nodes(), vec![0, 2]);
        assert_eq!(c.total_vcpus(), 64);
        assert!(!c.is_active(1));
        c.set_active(1, true, t(1.0));
        assert_eq!(c.total_vcpus(), 96);
    }

    #[test]
    fn cost_model_uses_instance_price() {
        let c = cluster(40);
        assert!((c.cost_model().cost(40, 3000.0) - 67.2).abs() < 1e-9);
    }
}
