//! EC2 instance-type catalog (paper Tables I and II).
//!
//! All three large instance types have 32 vCPUs, 10 Gbps networking and
//! RAID-0 SSD instance-store volumes; they differ chiefly in memory and in
//! measured disk throughput — the property the paper's provisioning
//! strategy exploits. `m3.2xlarge` (used in the paper's Fig. 2 motivation
//! run) is included with estimated disk figures, since Table II does not
//! list it.

/// Measured RAID-0 disk throughput in MB/s (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sequential read, MB/s.
    pub seq_read: f64,
    /// Sequential write, MB/s.
    pub seq_write: f64,
    /// Random read, MB/s.
    pub rand_read: f64,
    /// Random write, MB/s.
    pub rand_write: f64,
}

impl DiskProfile {
    /// Sequential read bandwidth in bytes/second.
    pub fn read_bytes_per_sec(&self) -> f64 {
        self.seq_read * 1e6
    }

    /// Sequential write bandwidth in bytes/second.
    pub fn write_bytes_per_sec(&self) -> f64 {
        self.seq_write * 1e6
    }
}

/// An EC2 instance type (paper Table I + Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    /// API name, e.g. `c3.8xlarge`.
    pub name: &'static str,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in GB.
    pub memory_gb: f64,
    /// Instance-store capacity in GB (all volumes combined).
    pub storage_gb: f64,
    /// Network bandwidth in Gbps.
    pub network_gbps: f64,
    /// On-demand price in USD per hour (us-east-1, 2015).
    pub price_per_hour: f64,
    /// RAID-0 disk throughput.
    pub disk: DiskProfile,
}

impl InstanceType {
    /// Page-cache dirty budget in bytes: the Linux default `dirty_ratio`
    /// (20% of RAM).
    pub fn dirty_limit_bytes(&self) -> f64 {
        0.20 * self.memory_gb * 1e9
    }

    /// Read-cache budget in bytes: page-cache share of RAM usable for
    /// caching recently written/read files (~60%, leaving room for
    /// processes).
    pub fn read_cache_bytes(&self) -> f64 {
        0.60 * self.memory_gb * 1e9
    }

    /// Network bandwidth in bytes/second.
    pub fn network_bytes_per_sec(&self) -> f64 {
        self.network_gbps * 1e9 / 8.0
    }

    /// Look up a type by its API name.
    pub fn by_name(name: &str) -> Option<&'static InstanceType> {
        CATALOG.iter().find(|t| t.name == name)
    }
}

/// c3.8xlarge: compute-optimized (paper Tables I–II).
pub const C3_8XLARGE: InstanceType = InstanceType {
    name: "c3.8xlarge",
    vcpus: 32,
    memory_gb: 60.0,
    storage_gb: 640.0, // 2 x 320
    network_gbps: 10.0,
    price_per_hour: 1.68,
    disk: DiskProfile { seq_read: 250.0, seq_write: 800.0, rand_read: 400.0, rand_write: 600.0 },
};

/// r3.8xlarge: memory-optimized (paper Tables I–II).
pub const R3_8XLARGE: InstanceType = InstanceType {
    name: "r3.8xlarge",
    vcpus: 32,
    memory_gb: 244.0,
    storage_gb: 640.0, // 2 x 320
    network_gbps: 10.0,
    price_per_hour: 2.80,
    disk: DiskProfile { seq_read: 350.0, seq_write: 1000.0, rand_read: 700.0, rand_write: 800.0 },
};

/// i2.8xlarge: storage-optimized (paper Tables I–II).
pub const I2_8XLARGE: InstanceType = InstanceType {
    name: "i2.8xlarge",
    vcpus: 32,
    memory_gb: 244.0,
    storage_gb: 6400.0, // 8 x 800
    network_gbps: 10.0,
    price_per_hour: 6.82,
    disk: DiskProfile {
        seq_read: 2200.0,
        seq_write: 3800.0,
        rand_read: 1800.0,
        rand_write: 3600.0,
    },
};

/// m3.2xlarge: the general-purpose type of the paper's Fig. 2 motivation
/// run. Disk figures are estimates (2 x 80 GB SSD, no Table II row).
pub const M3_2XLARGE: InstanceType = InstanceType {
    name: "m3.2xlarge",
    vcpus: 8,
    memory_gb: 30.0,
    storage_gb: 160.0,
    network_gbps: 1.0,
    price_per_hour: 0.532,
    disk: DiskProfile { seq_read: 180.0, seq_write: 300.0, rand_read: 250.0, rand_write: 280.0 },
};

/// All catalogued types.
pub const CATALOG: [InstanceType; 4] = [C3_8XLARGE, R3_8XLARGE, I2_8XLARGE, M3_2XLARGE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        assert_eq!(C3_8XLARGE.vcpus, 32);
        assert_eq!(C3_8XLARGE.memory_gb, 60.0);
        assert_eq!(C3_8XLARGE.price_per_hour, 1.68);
        assert_eq!(R3_8XLARGE.memory_gb, 244.0);
        assert_eq!(R3_8XLARGE.price_per_hour, 2.80);
        assert_eq!(I2_8XLARGE.storage_gb, 6400.0);
        assert_eq!(I2_8XLARGE.price_per_hour, 6.82);
    }

    #[test]
    fn table2_orders_disk_capability() {
        // i2 > r3 > c3 on every channel (the basis of Fig. 4's stage-3
        // finishing order). Iterate the catalog so the comparison covers
        // whatever values the constants hold.
        let ordered = [&C3_8XLARGE, &R3_8XLARGE, &I2_8XLARGE];
        for pair in ordered.windows(2) {
            assert!(pair[1].disk.seq_read > pair[0].disk.seq_read);
            assert!(pair[1].disk.seq_write > pair[0].disk.seq_write);
            assert!(pair[1].disk.rand_read > pair[0].disk.rand_read);
            assert!(pair[1].disk.rand_write > pair[0].disk.rand_write);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(InstanceType::by_name("c3.8xlarge").unwrap().vcpus, 32);
        assert_eq!(InstanceType::by_name("m3.2xlarge").unwrap().vcpus, 8);
        assert!(InstanceType::by_name("t2.nano").is_none());
    }

    #[test]
    fn derived_budgets() {
        assert!((C3_8XLARGE.dirty_limit_bytes() - 12e9).abs() < 1e6);
        assert!((C3_8XLARGE.read_cache_bytes() - 36e9).abs() < 1e6);
        assert!((C3_8XLARGE.network_bytes_per_sec() - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(C3_8XLARGE.disk.read_bytes_per_sec(), 250e6);
        assert_eq!(C3_8XLARGE.disk.write_bytes_per_sec(), 800e6);
    }
}
