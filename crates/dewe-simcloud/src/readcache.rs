//! FIFO byte-budget read cache.
//!
//! Tracks which files' bytes are resident in (aggregate) page cache.
//! Residency follows write/read recency with FIFO eviction by insertion
//! order — a deliberately simple stand-in for the kernel page cache that
//! captures the temporal-locality effect the paper depends on: stage-1
//! `mDiffFit` jobs read projections written moments earlier (hits), while
//! stage-3 `mBackground` jobs re-read stage-1 data written long before
//! (misses), making stage 3 disk-read-bound (Fig. 4c).
//!
//! Hits are all-or-nothing per file: partial residency is treated as a miss
//! (the dominant Montage files are a few MB, small against cache budgets).

use crate::hash::TokenMap;
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// FIFO cache over opaque file keys.
#[derive(Debug, Clone)]
pub struct ReadCache {
    capacity: f64,
    used: f64,
    /// Resident entries: key -> (bytes, generation).
    entries: TokenMap<(f64, u64)>,
    /// Insertion order with generations; stale generations are skipped.
    order: VecDeque<(u64, u64)>,
    next_gen: u64,
    hits: u64,
    misses: u64,
    hit_bytes: f64,
    miss_bytes: f64,
}

impl ReadCache {
    /// New cache with a byte budget. A zero budget caches nothing.
    pub fn new(capacity_bytes: f64) -> Self {
        assert!(capacity_bytes >= 0.0);
        Self {
            capacity: capacity_bytes,
            used: 0.0,
            entries: TokenMap::default(),
            order: VecDeque::new(),
            next_gen: 0,
            hits: 0,
            misses: 0,
            hit_bytes: 0.0,
            miss_bytes: 0.0,
        }
    }

    /// Adjust the budget (cluster membership changes), evicting if shrunk.
    pub fn set_capacity(&mut self, capacity_bytes: f64) {
        assert!(capacity_bytes >= 0.0);
        self.capacity = capacity_bytes;
        self.evict_to_fit();
    }

    /// Record that `key` (of `bytes`) is now resident (it was written, or
    /// read from the device). Re-inserting refreshes its position.
    pub fn insert(&mut self, key: u64, bytes: f64) {
        debug_assert!(bytes >= 0.0);
        if bytes > self.capacity {
            // Cannot ever be resident; also don't thrash the cache.
            if let Some((b, _)) = self.entries.remove(&key) {
                self.used -= b;
            }
            return;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        // Single hash probe: refresh in place on re-insert, the old order
        // entry goes stale and is skipped at eviction time.
        match self.entries.entry(key) {
            Entry::Occupied(mut o) => {
                let old_bytes = o.get().0;
                *o.get_mut() = (bytes, gen);
                self.used += bytes - old_bytes;
            }
            Entry::Vacant(v) => {
                v.insert((bytes, gen));
                self.used += bytes;
            }
        }
        self.order.push_back((key, gen));
        if self.used > self.capacity {
            self.evict_to_fit();
        }
    }

    /// Check residency for a read of `key` (of `bytes`), updating hit/miss
    /// counters. A hit refreshes the entry's FIFO position ("recently read"
    /// data survives longer, as in a real page cache under re-reference).
    pub fn lookup(&mut self, key: u64, bytes: f64) -> bool {
        if bytes > self.capacity {
            // Matches insert's oversize rule: the file can never be
            // resident going forward, so drop any stale residency.
            let hit = if let Some((b, _)) = self.entries.remove(&key) {
                self.used -= b;
                true
            } else {
                false
            };
            if hit {
                self.hits += 1;
                self.hit_bytes += bytes;
            } else {
                self.misses += 1;
                self.miss_bytes += bytes;
            }
            return hit;
        }
        if let Some(e) = self.entries.get_mut(&key) {
            self.hits += 1;
            self.hit_bytes += bytes;
            // Refresh recency in place (one hash probe, no remove/insert
            // churn): bump the generation and append a fresh order entry;
            // the old one is skipped as stale at eviction time.
            let gen = self.next_gen;
            self.next_gen += 1;
            self.used += bytes - e.0;
            *e = (bytes, gen);
            self.order.push_back((key, gen));
            if self.used > self.capacity {
                self.evict_to_fit();
            }
            true
        } else {
            self.misses += 1;
            self.miss_bytes += bytes;
            false
        }
    }

    /// Drop a specific entry (file deleted / node departed with its cache).
    pub fn invalidate(&mut self, key: u64) {
        if let Some((bytes, _)) = self.entries.remove(&key) {
            self.used -= bytes;
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used = 0.0;
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.capacity {
            match self.order.pop_front() {
                Some((key, gen)) => {
                    if let Entry::Occupied(o) = self.entries.entry(key) {
                        if o.get().1 == gen {
                            let (bytes, _) = o.remove();
                            self.used -= bytes;
                        }
                        // else: stale order entry for a refreshed key; skip.
                    }
                }
                None => {
                    debug_assert!(self.entries.is_empty());
                    self.used = 0.0;
                    break;
                }
            }
        }
    }

    /// Resident bytes.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Budget in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// (hits, misses) counts so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Byte-weighted hit rate so far (1.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0.0 {
            1.0
        } else {
            self.hit_bytes / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 40.0);
        assert!(c.lookup(1, 40.0));
        assert!(!c.lookup(2, 10.0));
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 60.0);
        c.insert(2, 60.0); // evicts 1
        assert!(!c.lookup(1, 60.0));
        assert!(c.lookup(2, 60.0));
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 40.0);
        c.insert(2, 40.0);
        c.insert(1, 40.0); // refresh: now 2 is oldest
        c.insert(3, 40.0); // evicts 2
        assert!(c.lookup(1, 40.0));
        assert!(!c.lookup(2, 40.0));
        assert!(c.lookup(3, 40.0));
    }

    #[test]
    fn lookup_hit_refreshes_position() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 40.0);
        c.insert(2, 40.0);
        assert!(c.lookup(1, 40.0)); // 1 refreshed; 2 now oldest
        c.insert(3, 40.0); // evicts 2
        assert!(c.lookup(1, 40.0));
        assert!(!c.lookup(2, 40.0));
    }

    #[test]
    fn oversized_file_never_cached() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 500.0);
        assert!(!c.lookup(1, 500.0));
        assert_eq!(c.used(), 0.0);
    }

    #[test]
    fn used_accounting_with_updates() {
        let mut c = ReadCache::new(1000.0);
        c.insert(1, 100.0);
        c.insert(1, 300.0); // replaces
        assert_eq!(c.used(), 300.0);
        c.invalidate(1);
        assert_eq!(c.used(), 0.0);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = ReadCache::new(0.0);
        c.insert(1, 1.0);
        assert!(!c.lookup(1, 1.0));
    }

    #[test]
    fn shrink_capacity_evicts() {
        let mut c = ReadCache::new(200.0);
        c.insert(1, 100.0);
        c.insert(2, 100.0);
        c.set_capacity(100.0);
        assert!(c.used() <= 100.0);
        assert!(!c.lookup(1, 100.0), "oldest entry must be evicted first");
        assert!(c.lookup(2, 100.0));
    }

    #[test]
    fn hit_rate_is_byte_weighted() {
        let mut c = ReadCache::new(1000.0);
        c.insert(1, 900.0);
        c.lookup(1, 900.0); // hit 900 bytes
        c.lookup(2, 100.0); // miss 100 bytes
        assert!((c.hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_residency_not_counters() {
        let mut c = ReadCache::new(100.0);
        c.insert(1, 10.0);
        c.lookup(1, 10.0);
        c.clear();
        assert!(!c.lookup(1, 10.0));
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn stale_order_entries_are_skipped() {
        let mut c = ReadCache::new(100.0);
        for _ in 0..50 {
            c.insert(1, 10.0); // many stale order entries for key 1
        }
        c.insert(2, 90.0); // must evict key 1 exactly once
        assert!(c.used() <= 100.0);
        assert!(c.lookup(2, 90.0));
    }
}
