//! Simulation time: integer microseconds.
//!
//! Integer time keeps the event queue totally ordered and the simulation
//! bit-for-bit deterministic across platforms (no float comparison in the
//! hot path). Conversions to/from `f64` seconds are provided at the edges.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as an "never" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// From fractional seconds (saturating at zero for negatives, which can
    /// appear from float round-off in callers).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite(), "non-finite sim time");
        SimTime((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// As whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Add fractional seconds.
    pub fn plus_secs_f64(self, s: f64) -> Self {
        self + SimTime::from_secs_f64(s)
    }

    /// Saturating difference in seconds.
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / MICROS_PER_SEC as f64
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(3);
        assert_eq!((a + b).as_secs_f64(), 13.0);
        assert_eq!((a - b).as_secs_f64(), 7.0);
        assert_eq!((b - a).0, 0, "subtraction saturates");
    }

    #[test]
    fn negative_secs_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-0.001), SimTime::ZERO);
    }

    #[test]
    fn secs_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(2);
        assert_eq!(a.secs_since(b), 3.0);
        assert_eq!(b.secs_since(a), 0.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(2.5).to_string(), "2.500");
    }
}
