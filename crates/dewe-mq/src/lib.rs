//! # dewe-mq
//!
//! An in-memory, thread-safe, topic-based message broker — the RabbitMQ
//! substitute for the DEWE v2 reproduction.
//!
//! DEWE v2 (paper §III.C) is built around a message-queue system with three
//! topics: *workflow submission*, *job dispatching* and *job
//! acknowledgment*. Workers pull the dispatch topic and compete for jobs on
//! a first-come-first-served basis; the master pulls acknowledgments and
//! publishes newly eligible jobs. The broker therefore needs exactly
//! *work-queue* semantics: each message is delivered to exactly one
//! consumer, FIFO per topic, with blocking and timeout-bounded pulls.
//!
//! ```
//! use dewe_mq::Broker;
//!
//! let broker: Broker<String> = Broker::new();
//! let dispatch = broker.topic("job_dispatch");
//! dispatch.publish("run mProjectPP_0".to_string());
//! assert_eq!(dispatch.try_pull(), Some("run mProjectPP_0".to_string()));
//! assert_eq!(dispatch.try_pull(), None);
//! ```
//!
//! The broker is deliberately *not* distributed: the reproduction's
//! real-time engine runs master and workers as threads in one process, so an
//! in-process broker exercises the same pull-based code path the paper's
//! RabbitMQ deployment does (competition between consumers, acks driving DAG
//! progress) without a network substrate. The discrete-event simulator in
//! `dewe-simcloud` models queue transport latency separately.

pub mod chaos;
mod frame;
mod listen;
mod reliable;
mod topic;
mod transport;
mod window;

pub use chaos::{
    ChaosBus, ChaosConfig, ChaosDecider, ChaosEvent, ChaosSchedule, ChaosStats, ChaosTopic,
    ChaosTrace, Fault,
};
pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
pub use listen::bind_reuse;
pub use reliable::{Delivery, LeaseId, ReliableTopic};
pub use topic::{Topic, TopicStats};
pub use transport::{Transport, WorkerTransport};
pub use window::SendWindow;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of [`Topic`]s carrying messages of type `T`.
///
/// Cloning a `Broker` is cheap and shares the underlying topics, mirroring
/// how every daemon in DEWE v2 connects to the same RabbitMQ endpoint.
pub struct Broker<T> {
    topics: Arc<Mutex<HashMap<String, Topic<T>>>>,
}

impl<T> Clone for Broker<T> {
    fn clone(&self) -> Self {
        Self { topics: Arc::clone(&self.topics) }
    }
}

impl<T> Default for Broker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Broker<T> {
    /// Create an empty broker.
    pub fn new() -> Self {
        Self { topics: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// Get or create the topic with the given name.
    pub fn topic(&self, name: &str) -> Topic<T> {
        let mut topics = self.topics.lock();
        topics.entry(name.to_string()).or_default().clone()
    }

    /// Names of all topics created so far (sorted, for stable output).
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Close every topic: wakes all blocked consumers; subsequent pulls
    /// drain remaining messages and then return `None`.
    pub fn shutdown(&self) {
        for topic in self.topics.lock().values() {
            topic.close();
        }
    }
}

/// The three topic names DEWE v2 uses (paper §III.C).
pub mod topics {
    /// Workflow submission topic: submission app → master daemon.
    pub const WORKFLOW_SUBMISSION: &str = "workflow_submission";
    /// Job dispatching topic: master daemon → worker daemons.
    pub const JOB_DISPATCH: &str = "job_dispatch";
    /// Job acknowledgment topic: worker daemons → master daemon.
    pub const JOB_ACK: &str = "job_ack";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_identity_is_shared() {
        let broker: Broker<u32> = Broker::new();
        let a = broker.topic("x");
        let b = broker.topic("x");
        a.publish(7);
        assert_eq!(b.try_pull(), Some(7));
    }

    #[test]
    fn distinct_topics_are_isolated() {
        let broker: Broker<u32> = Broker::new();
        broker.topic("a").publish(1);
        assert_eq!(broker.topic("b").try_pull(), None);
        assert_eq!(broker.topic("a").try_pull(), Some(1));
    }

    #[test]
    fn clone_shares_topics() {
        let broker: Broker<u32> = Broker::new();
        let clone = broker.clone();
        broker.topic("t").publish(5);
        assert_eq!(clone.topic("t").try_pull(), Some(5));
    }

    #[test]
    fn topic_names_sorted() {
        let broker: Broker<u32> = Broker::new();
        broker.topic("zeta");
        broker.topic("alpha");
        assert_eq!(broker.topic_names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn shutdown_closes_all_topics() {
        let broker: Broker<u32> = Broker::new();
        let t = broker.topic("t");
        t.publish(1);
        broker.shutdown();
        assert_eq!(t.try_pull(), Some(1), "drain continues after close");
        assert_eq!(t.pull(), None, "then pulls return None without blocking");
    }

    #[test]
    fn standard_topic_names() {
        assert_eq!(topics::WORKFLOW_SUBMISSION, "workflow_submission");
        assert_eq!(topics::JOB_DISPATCH, "job_dispatch");
        assert_eq!(topics::JOB_ACK, "job_ack");
    }
}
