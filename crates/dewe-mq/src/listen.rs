//! Rebindable TCP listeners: `SO_REUSEADDR` with no libc dependency.
//!
//! A restarted master must rebind its advertised port while the dead
//! incarnation's connections linger in `TIME_WAIT` — without
//! `SO_REUSEADDR` the journal-recovery restart loses a race against the
//! kernel's 2×MSL timer and fails with `EADDRINUSE`. The standard
//! library's `TcpListener::bind` does not set the option, so on Linux
//! this module builds the socket with raw syscalls (the same libc-free
//! idiom as the workspace's `sched_setaffinity` shim) and hands it to
//! `TcpListener` via `FromRawFd`. Elsewhere it falls back to a plain
//! bind — tests that never restart a master are unaffected.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Bind a TCP listener with `SO_REUSEADDR` set (best effort; see module
/// docs). IPv4 addresses take the raw-syscall path on Linux; anything
/// else uses the standard bind.
pub fn bind_reuse(addr: impl ToSocketAddrs) -> io::Result<TcpListener> {
    let mut last_err = None;
    for addr in addr.to_socket_addrs()? {
        match bind_one(addr) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses to bind")))
}

fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    match addr {
        SocketAddr::V4(v4) => bind_v4_reuse(v4).or_else(|_| TcpListener::bind(addr)),
        SocketAddr::V6(_) => TcpListener::bind(addr),
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn bind_v4_reuse(addr: std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: usize = 2;
    const SOCK_STREAM: usize = 1;
    const SOL_SOCKET: usize = 1;
    const SO_REUSEADDR: usize = 2;

    // struct sockaddr_in: family (u16 native), port (u16 BE),
    // addr (u32 BE), 8 bytes zero padding.
    let mut sa = [0u8; 16];
    sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
    sa[2..4].copy_from_slice(&addr.port().to_be_bytes());
    sa[4..8].copy_from_slice(&addr.ip().octets());

    unsafe {
        let fd = syscall3(SYS_SOCKET, AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(io::Error::from_raw_os_error(-fd as i32));
        }
        let fd_usize = fd as usize;
        let one: u32 = 1;
        let ret = syscall5(
            SYS_SETSOCKOPT,
            fd_usize,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const u32) as usize,
            std::mem::size_of::<u32>(),
        );
        if ret < 0 {
            let _ = syscall3(SYS_CLOSE, fd_usize, 0, 0);
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        let ret = syscall3(SYS_BIND, fd_usize, sa.as_ptr() as usize, sa.len());
        if ret < 0 {
            let _ = syscall3(SYS_CLOSE, fd_usize, 0, 0);
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        let ret = syscall3(SYS_LISTEN, fd_usize, 128, 0);
        if ret < 0 {
            let _ = syscall3(SYS_CLOSE, fd_usize, 0, 0);
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(TcpListener::from_raw_fd(fd as i32))
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_SOCKET: usize = 41;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_BIND: usize = 49;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_LISTEN: usize = 50;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_SETSOCKOPT: usize = 54;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_CLOSE: usize = 3;

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_SOCKET: usize = 198;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_BIND: usize = 200;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_LISTEN: usize = 201;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_SETSOCKOPT: usize = 208;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_CLOSE: usize = 57;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall3(nr: usize, a: usize, b: usize, c: usize) -> isize {
    let mut ret: isize = nr as isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        lateout("rcx") _, // clobbered by the syscall instruction
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall5(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
    let mut ret: isize = nr as isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall3(nr: usize, a: usize, b: usize, c: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall5(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        options(nostack),
    );
    ret
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn reuse_listener_accepts_connections() {
        let listener = bind_reuse("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        t.join().unwrap();
    }

    #[test]
    fn port_rebinds_immediately_after_active_connections() {
        // The restart scenario: accept a connection, close everything,
        // rebind the same port at once. With SO_REUSEADDR this succeeds
        // even while the old connection sits in TIME_WAIT.
        let listener = bind_reuse("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1];
            s.read_exact(&mut buf).unwrap();
            // Listener and accepted socket drop here (the "crash").
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"x").unwrap();
        t.join().unwrap();
        drop(c);
        let relisten = bind_reuse(addr);
        assert!(relisten.is_ok(), "rebind after restart failed: {:?}", relisten.err());
    }
}
