//! Length-prefixed framing for stream transports.
//!
//! The TCP runtime carries every message as a *frame*: a 4-byte
//! big-endian length followed by that many payload bytes. The framing
//! layer is payload-agnostic — versioning and message typing live in the
//! payload's first bytes (see `dewe-core`'s `protocol::WireMsg`) — so the
//! same reader/writer pair serves every connection role.
//!
//! ```text
//!  ┌──────────────┬──────────────────────────────┐
//!  │ len: u32 BE  │ payload (len bytes)          │
//!  └──────────────┴──────────────────────────────┘
//! ```
//!
//! A length cap guards both sides against a corrupt or hostile peer
//! declaring a multi-gigabyte frame: oversized lengths are an
//! [`std::io::ErrorKind::InvalidData`] error, not an allocation.

use std::io::{self, Read, Write};

/// Default frame-length cap: generous for workflow DAG text (the largest
/// payload the runtime ships — a few MB at paper scale) while refusing
/// absurd lengths from corrupt streams.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Write one frame: length prefix, payload, flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean end of stream (the peer
/// closed between frames); a stream that ends *inside* a frame is an
/// [`std::io::ErrorKind::UnexpectedEof`] error. Frames longer than
/// `max_frame` are rejected before any payload allocation.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"beta");
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_oversized_length_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut the stream inside the payload.
        buf.truncate(7);
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // And inside the length prefix.
        let err = read_frame(&mut [0u8, 0u8].as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
