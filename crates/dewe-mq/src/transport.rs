//! Transport abstraction: the master/worker wiring, minus the wires.
//!
//! DEWE v2's daemons (paper §III.C) only ever touch the message-queue
//! surface: the master pulls submissions/acks/lifecycle traffic and
//! publishes dispatches; a worker pulls dispatches and publishes
//! acks/lifecycle traffic. These two traits capture exactly that surface,
//! so the serve loops in `dewe-core` are written once and run unchanged
//! over the in-process `MessageBus` (the oracle paths) and over the TCP
//! runtime (a real fleet) — the sans-IO engine refactor's payoff.
//!
//! The message types stay associated, not concrete: this crate knows
//! queues, not workflows. `dewe-core` pins them to its protocol types
//! when it implements the traits.

use std::time::Duration;

/// The master daemon's view of the fabric.
///
/// One extra hook beyond the paper's three topics: [`announce`]
/// (master → workers) broadcasts each accepted workflow's definition so
/// networked workers can mirror the registry ("the shared file system")
/// without one. The in-process bus no-ops it — its workers share the
/// registry object.
///
/// [`announce`]: Transport::announce
pub trait Transport: Send + Sync + 'static {
    /// Workflow submission payload (submission app → master).
    type Submission: Send;
    /// Job dispatch payload (master → workers).
    type Dispatch: Send;
    /// Job acknowledgment payload (workers → master).
    type Ack: Send;
    /// Worker lifecycle payload (workers → master).
    type Lifecycle: Send;
    /// Workflow announcement payload (master → workers).
    type Announce: Send;

    /// Non-blocking pull from the submission topic.
    fn try_pull_submission(&self) -> Option<Self::Submission>;

    /// Blocking pull from the ack topic, bounded by `timeout`.
    fn pull_ack(&self, timeout: Duration) -> Option<Self::Ack>;

    /// Drain up to `max` further acks without blocking, appending to
    /// `out`; returns how many were taken (the ack-burst batch grab).
    fn pull_ack_batch(&self, out: &mut Vec<Self::Ack>, max: usize) -> usize;

    /// Non-blocking pull from the worker lifecycle topic.
    fn try_pull_lifecycle(&self) -> Option<Self::Lifecycle>;

    /// Publish a dispatch for `shard`. A transport with per-worker
    /// backpressure may park it in a pending queue until a serving
    /// worker has window credit — delivery order within a shard is
    /// preserved, delivery time is not guaranteed.
    fn publish_dispatch(&self, shard: usize, dispatch: Self::Dispatch);

    /// Publish a run of dispatches for `shard` that became eligible in
    /// the same poll cycle, draining `batch`. Semantically identical to
    /// publishing each in order via
    /// [`publish_dispatch`](Transport::publish_dispatch) — the default
    /// does exactly that — but a wire transport may coalesce the run
    /// into one frame and debit its backpressure window once for the
    /// whole batch. Takes `&mut Vec` so hot serve loops can reuse one
    /// run buffer across poll cycles.
    fn publish_dispatch_batch(&self, shard: usize, batch: &mut Vec<Self::Dispatch>) {
        for dispatch in batch.drain(..) {
            self.publish_dispatch(shard, dispatch);
        }
    }

    /// Broadcast a workflow announcement to current and future workers.
    /// Called by the master after registering the workflow, before any
    /// of its jobs are dispatched.
    fn announce(&self, announce: Self::Announce);

    /// True once the ack side is shut down and drained — the master's
    /// run-forever exit condition.
    fn ack_closed(&self) -> bool;
}

/// A worker daemon's view of the fabric: the other end of [`Transport`].
pub trait WorkerTransport: Send + Sync + 'static {
    /// Job dispatch payload (master → this worker).
    type Dispatch: Send;
    /// Job acknowledgment payload (this worker → master).
    type Ack: Send;
    /// Worker lifecycle payload (this worker → master).
    type Lifecycle: Send;

    /// Blocking pull of the next dispatch, bounded by `timeout`.
    fn pull_dispatch(&self, timeout: Duration) -> Option<Self::Dispatch>;

    /// True once the dispatch side is shut down and drained — the
    /// worker's exit condition.
    fn dispatch_closed(&self) -> bool;

    /// Hand back a pulled-but-unstarted dispatch (a worker dying between
    /// checkout and execution), so the fabric can redeliver it to
    /// another worker — RabbitMQ's unacknowledged-redelivery semantics.
    fn redeliver(&self, dispatch: Self::Dispatch);

    /// Publish a job acknowledgment.
    fn publish_ack(&self, ack: Self::Ack);

    /// Publish a lifecycle announcement (register/heartbeat/drain).
    fn publish_lifecycle(&self, msg: Self::Lifecycle);
}
