//! Lease-based reliable work queue: at-least-once delivery with
//! visibility timeouts.
//!
//! [`Topic`](crate::Topic) delivers each message exactly once to whichever
//! consumer pulls it — if that consumer dies, the message is gone and
//! recovery is the *master's* job (DEWE v2's timeout mechanism). RabbitMQ
//! itself additionally redelivers messages whose consumer disconnected
//! without acknowledging; [`ReliableTopic`] models that broker-side
//! guarantee: a `checkout` leases a message for a visibility window, and
//! an expired lease puts the message back at the front of the queue with
//! an incremented delivery count.
//!
//! The DEWE v2 runtimes intentionally use the plain [`Topic`](crate::Topic)
//! (the paper's recovery story is master-driven), but `ReliableTopic` lets
//! downstream users build worker fleets without a coordinating master, and
//! its tests document precisely which failure windows each mechanism
//! covers.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a leased (checked-out, unacknowledged) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseId(u64);

/// A checked-out message with its lease handle and delivery count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<T> {
    /// Lease handle for `ack` / `nack`.
    pub lease: LeaseId,
    /// 1 for first delivery, incremented per redelivery.
    pub delivery_count: u32,
    /// The message.
    pub message: T,
}

struct Leased<T> {
    id: u64,
    expires: Instant,
    delivery_count: u32,
    message: T,
}

struct State<T> {
    queue: VecDeque<(T, u32)>, // (message, prior delivery count)
    leased: Vec<Leased<T>>,
    /// Poison messages: exhausted their delivery budget. (message, total
    /// deliveries made.)
    dead: VecDeque<(T, u32)>,
    next_lease: u64,
    redeliveries: u64,
}

/// A work queue with visibility-timeout redelivery.
pub struct ReliableTopic<T> {
    state: Arc<Mutex<State<T>>>,
    visibility: Duration,
    /// Redelivery budget: a message already delivered this many times is
    /// dead-lettered instead of requeued. `None` = unbounded (a poison
    /// message that always crashes its consumer redelivers forever).
    max_deliveries: Option<u32>,
}

impl<T> Clone for ReliableTopic<T> {
    fn clone(&self) -> Self {
        Self {
            state: Arc::clone(&self.state),
            visibility: self.visibility,
            max_deliveries: self.max_deliveries,
        }
    }
}

impl<T> ReliableTopic<T> {
    /// New queue with the given visibility timeout and no delivery cap.
    pub fn new(visibility: Duration) -> Self {
        Self {
            state: Arc::new(Mutex::new(State {
                queue: VecDeque::new(),
                leased: Vec::new(),
                dead: VecDeque::new(),
                next_lease: 0,
                redeliveries: 0,
            })),
            visibility,
            max_deliveries: None,
        }
    }

    /// New queue that dead-letters any message after `max_deliveries`
    /// failed deliveries (expired or nacked leases) instead of requeuing
    /// it — the poison-message guard. Drain the casualties with
    /// [`drain_dead_letters`](Self::drain_dead_letters).
    pub fn with_max_deliveries(visibility: Duration, max_deliveries: u32) -> Self {
        assert!(max_deliveries >= 1, "a zero budget would dead-letter everything unseen");
        Self { max_deliveries: Some(max_deliveries), ..Self::new(visibility) }
    }

    /// Publish a message.
    pub fn publish(&self, message: T) {
        self.state.lock().queue.push_back((message, 0));
    }

    /// Requeue a failed delivery — or dead-letter it once its budget is
    /// spent.
    fn requeue(state: &mut State<T>, max_deliveries: Option<u32>, l: Leased<T>) {
        if max_deliveries.is_some_and(|max| l.delivery_count >= max) {
            state.dead.push_back((l.message, l.delivery_count));
        } else {
            // Redeliveries jump the queue: they are older work.
            state.queue.push_front((l.message, l.delivery_count));
        }
    }

    /// Expire overdue leases, putting their messages back at the front
    /// (or into the dead-letter queue when the budget is exhausted).
    fn reap(state: &mut State<T>, max_deliveries: Option<u32>, now: Instant) {
        let mut i = 0;
        while i < state.leased.len() {
            if state.leased[i].expires <= now {
                let l = state.leased.swap_remove(i);
                state.redeliveries += 1;
                Self::requeue(state, max_deliveries, l);
            } else {
                i += 1;
            }
        }
    }

    /// Check out the next message, leasing it for the visibility window.
    /// Returns `None` when nothing is available.
    pub fn checkout(&self) -> Option<Delivery<T>>
    where
        T: Clone,
    {
        let now = Instant::now();
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, now);
        let (message, prior) = state.queue.pop_front()?;
        let id = state.next_lease;
        state.next_lease += 1;
        state.leased.push(Leased {
            id,
            expires: now + self.visibility,
            delivery_count: prior + 1,
            message: message.clone(),
        });
        Some(Delivery { lease: LeaseId(id), delivery_count: prior + 1, message })
    }

    /// Acknowledge a leased message, removing it permanently. Returns
    /// `false` if the lease had already expired (the message was — or will
    /// be — redelivered; the work may run twice, which is why consumers
    /// must be idempotent under at-least-once delivery).
    pub fn ack(&self, lease: LeaseId) -> bool {
        let mut state = self.state.lock();
        if let Some(pos) = state.leased.iter().position(|l| l.id == lease.0) {
            state.leased.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Negative-acknowledge: return the message to the queue immediately
    /// (or dead-letter it when its budget is exhausted).
    pub fn nack(&self, lease: LeaseId) -> bool {
        let mut state = self.state.lock();
        if let Some(pos) = state.leased.iter().position(|l| l.id == lease.0) {
            let l = state.leased.swap_remove(pos);
            Self::requeue(&mut state, self.max_deliveries, l);
            true
        } else {
            false
        }
    }

    /// Messages currently queued (excluding leased ones), after reaping.
    pub fn len(&self) -> usize {
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, Instant::now());
        state.queue.len()
    }

    /// True when neither queued nor leased messages remain. Dead-lettered
    /// messages do not count: they left the delivery loop.
    pub fn is_empty(&self) -> bool {
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, Instant::now());
        state.queue.is_empty() && state.leased.is_empty()
    }

    /// Messages currently leased.
    pub fn in_flight(&self) -> usize {
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, Instant::now());
        state.leased.len()
    }

    /// Total lease expirations so far.
    pub fn redeliveries(&self) -> u64 {
        self.state.lock().redeliveries
    }

    /// Dead-lettered messages waiting to be drained.
    pub fn dead_letter_count(&self) -> usize {
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, Instant::now());
        state.dead.len()
    }

    /// Drain the dead-letter queue: each entry is the poison message and
    /// the total number of deliveries it consumed before being cut off.
    pub fn drain_dead_letters(&self) -> Vec<(T, u32)> {
        let mut state = self.state.lock();
        Self::reap(&mut state, self.max_deliveries, Instant::now());
        state.dead.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(vis_ms: u64) -> ReliableTopic<u32> {
        ReliableTopic::new(Duration::from_millis(vis_ms))
    }

    #[test]
    fn checkout_ack_removes_message() {
        let t = topic(1000);
        t.publish(7);
        let d = t.checkout().unwrap();
        assert_eq!(d.message, 7);
        assert_eq!(d.delivery_count, 1);
        assert!(t.ack(d.lease));
        assert!(t.is_empty());
    }

    #[test]
    fn unacked_message_redelivers_after_visibility() {
        let t = topic(20);
        t.publish(9);
        let d1 = t.checkout().unwrap();
        assert!(t.checkout().is_none(), "leased message is invisible");
        std::thread::sleep(Duration::from_millis(30));
        let d2 = t.checkout().unwrap();
        assert_eq!(d2.message, 9);
        assert_eq!(d2.delivery_count, 2);
        assert_eq!(t.redeliveries(), 1);
        // The stale lease can no longer ack.
        assert!(!t.ack(d1.lease));
        assert!(t.ack(d2.lease));
    }

    #[test]
    fn nack_returns_message_immediately() {
        let t = topic(10_000);
        t.publish(1);
        let d = t.checkout().unwrap();
        assert!(t.nack(d.lease));
        let d2 = t.checkout().unwrap();
        assert_eq!(d2.message, 1);
        assert_eq!(d2.delivery_count, 2);
    }

    #[test]
    fn redelivery_jumps_the_queue() {
        let t = topic(20);
        t.publish(1);
        t.publish(2);
        let _lost = t.checkout().unwrap(); // leases 1, never acked
        std::thread::sleep(Duration::from_millis(30));
        // 1 expired: it must come back BEFORE 2.
        assert_eq!(t.checkout().unwrap().message, 1);
        assert_eq!(t.checkout().unwrap().message, 2);
    }

    #[test]
    fn fifo_for_fresh_messages() {
        let t = topic(1000);
        for i in 0..10 {
            t.publish(i);
        }
        for i in 0..10 {
            let d = t.checkout().unwrap();
            assert_eq!(d.message, i);
            t.ack(d.lease);
        }
    }

    #[test]
    fn counters() {
        let t = topic(1000);
        t.publish(1);
        t.publish(2);
        assert_eq!(t.len(), 2);
        let d = t.checkout().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.in_flight(), 1);
        t.ack(d.lease);
        assert_eq!(t.in_flight(), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn concurrent_exactly_once_when_all_ack() {
        // No crashes, prompt acks: despite the at-least-once machinery,
        // every message is processed exactly once.
        let t = topic(60_000);
        for i in 0..1000u32 {
            t.publish(i);
        }
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                let seen = Arc::clone(&seen);
                s.spawn(move || {
                    while let Some(d) = t.checkout() {
                        assert!(seen.lock().insert(d.message), "duplicate {}", d.message);
                        t.ack(d.lease);
                    }
                });
            }
        });
        assert_eq!(seen.lock().len(), 1000);
        assert!(t.is_empty());
        assert_eq!(t.redeliveries(), 0);
    }

    #[test]
    fn poison_message_dead_letters_after_budget() {
        // A message whose consumer always crashes before acking must not
        // redeliver forever: the third expired lease retires it.
        let t = ReliableTopic::with_max_deliveries(Duration::from_millis(5), 3);
        t.publish(666u32);
        t.publish(7u32);
        let mut deliveries_of_poison = 0;
        loop {
            let Some(d) = t.checkout() else {
                if t.in_flight() == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            if d.message == 666 {
                deliveries_of_poison += 1; // crash: never ack
            } else {
                t.ack(d.lease); // healthy message completes
            }
        }
        assert_eq!(deliveries_of_poison, 3);
        assert!(t.is_empty(), "poison left the delivery loop");
        assert_eq!(t.dead_letter_count(), 1);
        let dead = t.drain_dead_letters();
        assert_eq!(dead, vec![(666, 3)]);
        assert_eq!(t.dead_letter_count(), 0, "drain empties the queue");
    }

    #[test]
    fn nack_consumes_delivery_budget() {
        let t = ReliableTopic::with_max_deliveries(Duration::from_secs(60), 2);
        t.publish(1u32);
        let d = t.checkout().unwrap();
        assert!(t.nack(d.lease)); // delivery 1 burned, back in queue
        let d = t.checkout().unwrap();
        assert_eq!(d.delivery_count, 2);
        assert!(t.nack(d.lease)); // budget spent: dead-lettered
        assert!(t.checkout().is_none());
        assert_eq!(t.drain_dead_letters(), vec![(1, 2)]);
    }

    #[test]
    fn uncapped_topic_redelivers_forever() {
        let t = topic(1);
        t.publish(5u32);
        for expected in 1..=20u32 {
            let d = t.checkout().unwrap();
            assert_eq!(d.delivery_count, expected);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(t.dead_letter_count(), 0);
    }

    #[test]
    fn crashed_consumer_work_is_recovered() {
        // Consumers that take messages and vanish: everything still gets
        // processed by the survivors, some of it more than once.
        let t = topic(15);
        for i in 0..50u32 {
            t.publish(i);
        }
        // "Crash": check out 10 messages and never ack them.
        for _ in 0..10 {
            t.checkout().unwrap();
        }
        std::thread::sleep(Duration::from_millis(25));
        let mut processed = std::collections::HashSet::new();
        while let Some(d) = t.checkout() {
            processed.insert(d.message);
            t.ack(d.lease);
        }
        assert_eq!(processed.len(), 50, "no message may be lost");
        assert!(t.redeliveries() >= 10);
    }
}
