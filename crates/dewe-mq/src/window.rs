//! Bounded send windows: per-consumer dispatch backpressure.
//!
//! A networked master must not fire-hose dispatches at a worker faster
//! than it executes them — unbounded socket buffers turn one slow worker
//! into queued work no other worker can steal. The transport instead
//! grants each worker connection a fixed *window* of in-flight
//! dispatches; a credit is spent per send and returned when the job
//! settles (terminal ack) or the worker hands the dispatch back.
//! Dispatches that find every eligible window full wait in the master's
//! pending queue, where any worker's freed credit can claim them — the
//! wire analogue of RabbitMQ's per-consumer prefetch limit.

use std::sync::atomic::{AtomicU32, Ordering};

/// A fixed-size credit counter, shared between the send path (acquire)
/// and the ack path (release). Thread-safe and lock-free.
#[derive(Debug)]
pub struct SendWindow {
    limit: u32,
    in_flight: AtomicU32,
}

impl SendWindow {
    /// Window with `limit` credits. A zero limit is promoted to 1 — a
    /// window that can never send is a configuration footgun, not a
    /// useful mode.
    pub fn new(limit: u32) -> Self {
        Self { limit: limit.max(1), in_flight: AtomicU32::new(0) }
    }

    /// Spend one credit; `false` when the window is full.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Spend up to `want` credits atomically, returning how many were
    /// granted (0 when the window is full). One CAS settles the whole
    /// batch, so a coalesced dispatch run debits the window in a single
    /// step instead of `want` contended acquires — and concurrent
    /// batchers can never jointly overshoot the limit.
    pub fn try_acquire_n(&self, want: u32) -> u32 {
        if want == 0 {
            return 0;
        }
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            let free = self.limit.saturating_sub(cur);
            if free == 0 {
                return 0;
            }
            let take = want.min(free);
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Return one credit. Saturates at zero: a terminal ack for a
    /// dispatch sent on a *previous* connection of the same worker (or a
    /// duplicate completion after recovery) must not underflow the new
    /// connection's accounting.
    pub fn release(&self) {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Credits currently spent.
    pub fn in_flight(&self) -> u32 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Total credits.
    pub fn limit(&self) -> u32 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full_then_release_reopens() {
        let w = SendWindow::new(2);
        assert!(w.try_acquire());
        assert!(w.try_acquire());
        assert!(!w.try_acquire(), "window full");
        assert_eq!(w.in_flight(), 2);
        w.release();
        assert!(w.try_acquire());
        assert!(!w.try_acquire());
    }

    #[test]
    fn release_saturates_at_zero() {
        let w = SendWindow::new(4);
        w.release();
        w.release();
        assert_eq!(w.in_flight(), 0);
        assert!(w.try_acquire());
        assert_eq!(w.in_flight(), 1);
    }

    #[test]
    fn zero_limit_is_promoted() {
        let w = SendWindow::new(0);
        assert_eq!(w.limit(), 1);
        assert!(w.try_acquire());
        assert!(!w.try_acquire());
    }

    #[test]
    fn batch_acquire_grants_partial_and_zero() {
        let w = SendWindow::new(4);
        assert_eq!(w.try_acquire_n(3), 3);
        assert_eq!(w.try_acquire_n(3), 1, "partial grant up to the limit");
        assert_eq!(w.try_acquire_n(3), 0, "full window grants nothing");
        assert_eq!(w.try_acquire_n(0), 0);
        assert_eq!(w.in_flight(), 4);
        w.release();
        assert_eq!(w.try_acquire_n(9), 1);
    }

    #[test]
    fn concurrent_batch_acquirers_never_exceed_limit() {
        use std::sync::Arc;
        let w = Arc::new(SendWindow::new(16));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let got = w.try_acquire_n(5);
                        assert!(w.in_flight() <= w.limit());
                        for _ in 0..got {
                            w.release();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn concurrent_acquirers_never_exceed_limit() {
        use std::sync::Arc;
        let w = Arc::new(SendWindow::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u32;
                for _ in 0..1000 {
                    if w.try_acquire() {
                        got += 1;
                        assert!(w.in_flight() <= w.limit());
                        w.release();
                    }
                }
                got
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        assert_eq!(w.in_flight(), 0);
    }
}
