//! Seeded, deterministic fault injection for message topics.
//!
//! The paper's robustness experiment (§V.A.3) only kills whole worker
//! nodes; real message fabrics additionally *drop*, *duplicate* and
//! *delay* individual messages. [`ChaosTopic`] wraps a [`Topic`] and
//! injects exactly those faults, driven by a pure hash of
//! `(seed, stream, message sequence number)` — no RNG state, no wall
//! clock in the decision path — so a given seed always produces the same
//! fault pattern and every chaos test is reproducible bit-for-bit.
//!
//! [`ChaosDecider`] is the decision core, shared between the realtime
//! wrapper here and the discrete-event simulator (which keys decisions by
//! `(workflow, job, attempt)` instead of a sequence number, keeping sim
//! runs independent of driver iteration order).

use crate::{Broker, Topic};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-injection probabilities, all in `[0, 1]`.
///
/// The default injects nothing; construct with the fields you want. Drop
/// wins over duplicate/delay for a given message (a dropped message can't
/// also be duplicated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the decision hash: same seed, same fault pattern.
    pub seed: u64,
    /// Probability a published message is silently dropped.
    pub drop_prob: f64,
    /// Probability a published message is delivered twice.
    pub dup_prob: f64,
    /// Probability a published message is held back `delay_secs`.
    pub delay_prob: f64,
    /// How long delayed messages are held.
    pub delay_secs: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { seed: 0xD1CE, drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0, delay_secs: 0.0 }
    }
}

impl ChaosConfig {
    /// Drop + duplicate injection (the robustness experiment's columns).
    pub fn drop_dup(seed: u64, drop_prob: f64, dup_prob: f64) -> Self {
        Self { seed, drop_prob, dup_prob, ..Self::default() }
    }

    /// True when every probability is zero: the wrapper is a no-op.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0
    }
}

/// Well-known stream ids so the three DEWE v2 topics draw from distinct
/// fault sequences under one seed.
pub mod streams {
    /// Workflow submission topic.
    pub const SUBMISSION: u64 = 1;
    /// Job dispatching topic.
    pub const DISPATCH: u64 = 2;
    /// Job acknowledgment topic.
    pub const ACK: u64 = 3;
}

/// splitmix64 finalizer: the avalanche core of every chaos decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Collapse an arbitrary message identity (e.g. workflow, job, attempt)
/// into a single decision key.
pub fn message_key(a: u64, b: u64, c: u64) -> u64 {
    mix(a ^ mix(b ^ mix(c)))
}

/// The consolidated outcome of one fault decision.
///
/// [`ChaosDecider::decide`] resolves the individual probability draws with
/// the documented precedence (drop > duplicate > delay) into exactly one
/// fault per message, so a decision can be recorded to a [`ChaosTrace`]
/// and replayed from a [`ChaosSchedule`] without re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message.
    Drop,
    /// Deliver the message twice, back-to-back.
    Duplicate,
    /// Hold the message back this many seconds before delivery.
    Delay(f64),
}

/// One recorded fault decision: what happened to message `key` of
/// `stream`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Stream the message was published on (see [`streams`]).
    pub stream: u64,
    /// Decision key (the publisher's sequence number for [`ChaosTopic`]).
    pub key: u64,
    /// The fault applied.
    pub fault: Fault,
}

/// Shared, cloneable recorder of fault decisions: attach one to a
/// [`ChaosTopic`] (or several — they may share a trace) and every publish
/// appends the decision it applied, in publish order. The snapshot is the
/// run's complete *chaos schedule*, replayable via
/// [`ChaosSchedule::from_events`].
#[derive(Clone, Default)]
pub struct ChaosTrace {
    events: Arc<Mutex<Vec<ChaosEvent>>>,
}

impl ChaosTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one decision.
    pub fn record(&self, event: ChaosEvent) {
        self.events.lock().push(event);
    }

    /// Copy of everything recorded so far, in publish order.
    pub fn snapshot(&self) -> Vec<ChaosEvent> {
        self.events.lock().clone()
    }

    /// Recorded decisions that injected a fault (everything but
    /// [`Fault::Deliver`]).
    pub fn faults(&self) -> Vec<ChaosEvent> {
        self.events.lock().iter().copied().filter(|e| e.fault != Fault::Deliver).collect()
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// An explicit fault schedule: `(stream, key) → fault`, defaulting to
/// [`Fault::Deliver`] for unlisted messages. Built from a captured
/// [`ChaosTrace`] (replaying a recorded run exactly) or by hand (pinning a
/// minimal repro found by shrinking).
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    faults: std::collections::HashMap<(u64, u64), Fault>,
}

impl ChaosSchedule {
    /// Empty schedule (every message delivers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule replaying the recorded events verbatim.
    pub fn from_events(events: &[ChaosEvent]) -> Self {
        let mut s = Self::new();
        for e in events {
            s.set(e.stream, e.key, e.fault);
        }
        s
    }

    /// Pin the fault for one message.
    pub fn set(&mut self, stream: u64, key: u64, fault: Fault) {
        if fault == Fault::Deliver {
            self.faults.remove(&(stream, key));
        } else {
            self.faults.insert((stream, key), fault);
        }
    }

    /// The scheduled fault for a message (Deliver when unlisted).
    pub fn decide(&self, stream: u64, key: u64) -> Fault {
        self.faults.get(&(stream, key)).copied().unwrap_or(Fault::Deliver)
    }

    /// Number of scheduled (non-Deliver) faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Where a [`ChaosTopic`] draws its per-message decisions from: seeded
/// probability draws, or a pinned schedule.
enum FaultSource {
    Seeded(Arc<ChaosDecider>),
    Scripted(Arc<ChaosSchedule>),
}

impl FaultSource {
    fn decide(&self, stream: u64, key: u64) -> Fault {
        match self {
            FaultSource::Seeded(d) => d.decide(stream, key),
            FaultSource::Scripted(s) => s.decide(stream, key),
        }
    }
}

/// Pure, seeded fault decision function: no state, no clock.
#[derive(Debug, Clone)]
pub struct ChaosDecider {
    cfg: ChaosConfig,
}

impl ChaosDecider {
    /// Decider for the given configuration.
    pub fn new(cfg: ChaosConfig) -> Self {
        for p in [cfg.drop_prob, cfg.dup_prob, cfg.delay_prob] {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        Self { cfg }
    }

    /// The configuration this decider applies.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Uniform draw in [0, 1) for (stream, key, salt) under the seed.
    fn unit(&self, stream: u64, key: u64, salt: u64) -> f64 {
        let z = mix(self.cfg.seed ^ mix(stream ^ mix(key ^ salt.wrapping_mul(0xA5A5_A5A5))));
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should this message be dropped?
    pub fn drops(&self, stream: u64, key: u64) -> bool {
        self.cfg.drop_prob > 0.0 && self.unit(stream, key, 1) < self.cfg.drop_prob
    }

    /// Should this message be delivered twice?
    pub fn duplicates(&self, stream: u64, key: u64) -> bool {
        self.cfg.dup_prob > 0.0 && self.unit(stream, key, 2) < self.cfg.dup_prob
    }

    /// Should this message be held back — and for how long?
    pub fn delay(&self, stream: u64, key: u64) -> Option<f64> {
        (self.cfg.delay_prob > 0.0 && self.unit(stream, key, 3) < self.cfg.delay_prob)
            .then_some(self.cfg.delay_secs)
    }

    /// Resolve the individual draws into exactly one [`Fault`] with the
    /// documented precedence: drop beats duplicate beats delay.
    pub fn decide(&self, stream: u64, key: u64) -> Fault {
        if self.drops(stream, key) {
            Fault::Drop
        } else if self.duplicates(stream, key) {
            Fault::Duplicate
        } else if let Some(secs) = self.delay(stream, key) {
            Fault::Delay(secs)
        } else {
            Fault::Deliver
        }
    }
}

/// Snapshot of a chaos wrapper's injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Messages offered to `publish`.
    pub published: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Messages held back before delivery.
    pub delayed: u64,
}

#[derive(Default)]
struct StatsInner {
    published: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

/// A [`Topic`] wrapper that injects seeded drop / duplication / delay on
/// the publish path.
///
/// Decisions are keyed by a per-handle publish sequence number, so a
/// single handle publishing the same logical stream always sees the same
/// fault pattern. Delayed messages are parked internally and flushed into
/// the underlying topic on the next `publish`/`try_pull`/`pull_timeout`
/// call on this handle (or an explicit [`flush_due`](Self::flush_due)) —
/// callers with sparse traffic should pump `flush_due` on their periodic
/// tick.
pub struct ChaosTopic<T> {
    inner: Topic<T>,
    source: Arc<FaultSource>,
    trace: Option<ChaosTrace>,
    stream: u64,
    seq: Arc<AtomicU64>,
    delayed: Arc<Mutex<VecDeque<(Instant, T)>>>,
    stats: Arc<StatsInner>,
}

impl<T> Clone for ChaosTopic<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            source: Arc::clone(&self.source),
            trace: self.trace.clone(),
            stream: self.stream,
            seq: Arc::clone(&self.seq),
            delayed: Arc::clone(&self.delayed),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<T: Clone> ChaosTopic<T> {
    /// Wrap `inner`, drawing fault decisions from `decider` on `stream`.
    pub fn new(inner: Topic<T>, decider: Arc<ChaosDecider>, stream: u64) -> Self {
        Self::with_source(inner, FaultSource::Seeded(decider), stream)
    }

    /// Wrap `inner`, replaying the pinned `schedule` on `stream` instead
    /// of drawing seeded probabilities — the replay half of chaos
    /// capture/replay.
    pub fn scripted(inner: Topic<T>, schedule: Arc<ChaosSchedule>, stream: u64) -> Self {
        Self::with_source(inner, FaultSource::Scripted(schedule), stream)
    }

    fn with_source(inner: Topic<T>, source: FaultSource, stream: u64) -> Self {
        Self {
            inner,
            source: Arc::new(source),
            trace: None,
            stream,
            seq: Arc::new(AtomicU64::new(0)),
            delayed: Arc::new(Mutex::new(VecDeque::new())),
            stats: Arc::new(StatsInner::default()),
        }
    }

    /// Record every applied decision to `trace` (the capture half of
    /// chaos capture/replay).
    pub fn with_trace(mut self, trace: ChaosTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Publish through the fault injector.
    pub fn publish(&self, message: T) {
        self.flush_due();
        let key = self.seq.fetch_add(1, Ordering::Relaxed);
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        let fault = self.source.decide(self.stream, key);
        if let Some(trace) = &self.trace {
            trace.record(ChaosEvent { stream: self.stream, key, fault });
        }
        match fault {
            Fault::Drop => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Fault::Duplicate => {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                self.inner.publish(message.clone());
                self.inner.publish(message);
            }
            Fault::Delay(secs) => {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.delayed
                    .lock()
                    .push_back((Instant::now() + Duration::from_secs_f64(secs), message));
            }
            Fault::Deliver => self.inner.publish(message),
        }
    }

    /// Non-blocking pull (flushes due delayed messages first).
    pub fn try_pull(&self) -> Option<T> {
        self.flush_due();
        self.inner.try_pull()
    }

    /// Timeout-bounded pull (flushes due delayed messages first; messages
    /// coming due *during* the block surface on the next call).
    pub fn pull_timeout(&self, timeout: Duration) -> Option<T> {
        self.flush_due();
        self.inner.pull_timeout(timeout)
    }

    /// Move every delayed message whose hold expired into the topic.
    pub fn flush_due(&self) {
        let mut delayed = self.delayed.lock();
        if delayed.is_empty() {
            return;
        }
        let now = Instant::now();
        while let Some((due, _)) = delayed.front() {
            if *due > now {
                break;
            }
            let (_, message) = delayed.pop_front().expect("checked front");
            self.inner.publish(message);
        }
    }

    /// Messages still held back.
    pub fn pending_delayed(&self) -> usize {
        self.delayed.lock().len()
    }

    /// The wrapped topic (workers can pull it directly).
    pub fn inner(&self) -> &Topic<T> {
        &self.inner
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            published: self.stats.published.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
        }
    }
}

/// A [`Broker`] wrapper handing out [`ChaosTopic`]s: every topic drawn
/// through the bus shares one decider (one seed), with per-topic streams
/// derived from the topic name so each topic sees an independent fault
/// sequence.
pub struct ChaosBus<T> {
    broker: Broker<T>,
    decider: Arc<ChaosDecider>,
}

impl<T> Clone for ChaosBus<T> {
    fn clone(&self) -> Self {
        Self { broker: self.broker.clone(), decider: Arc::clone(&self.decider) }
    }
}

impl<T: Clone> ChaosBus<T> {
    /// Wrap `broker` with the given fault configuration.
    pub fn new(broker: Broker<T>, cfg: ChaosConfig) -> Self {
        Self { broker, decider: Arc::new(ChaosDecider::new(cfg)) }
    }

    /// Chaos-wrapped topic handle. Each handle keeps its own publish
    /// sequence, so use one handle per logical publisher for
    /// reproducibility.
    pub fn topic(&self, name: &str) -> ChaosTopic<T> {
        let stream = mix(name.bytes().fold(0u64, |h, b| mix(h ^ u64::from(b))));
        ChaosTopic::new(self.broker.topic(name), Arc::clone(&self.decider), stream)
    }

    /// The wrapped broker.
    pub fn broker(&self) -> &Broker<T> {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &Topic<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(m) = t.try_pull() {
            out.push(m);
        }
        out
    }

    #[test]
    fn noop_config_passes_everything_through() {
        let t =
            ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(ChaosConfig::default())), 1);
        for i in 0..100 {
            t.publish(i);
        }
        assert_eq!(drain(t.inner()).len(), 100);
        assert_eq!(t.stats(), ChaosStats { published: 100, ..ChaosStats::default() });
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let d1 = ChaosDecider::new(ChaosConfig::drop_dup(7, 0.3, 0.3));
        let d2 = ChaosDecider::new(ChaosConfig::drop_dup(7, 0.3, 0.3));
        let d3 = ChaosDecider::new(ChaosConfig::drop_dup(8, 0.3, 0.3));
        let pattern = |d: &ChaosDecider| (0..200).map(|k| d.drops(1, k)).collect::<Vec<_>>();
        assert_eq!(pattern(&d1), pattern(&d2), "same seed, same pattern");
        assert_ne!(pattern(&d1), pattern(&d3), "different seed, different pattern");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let d = ChaosDecider::new(ChaosConfig::drop_dup(42, 0.25, 0.0));
        let dropped = (0..10_000).filter(|&k| d.drops(2, k)).count();
        assert!((2000..3000).contains(&dropped), "~25% expected, got {dropped}");
    }

    #[test]
    fn streams_draw_independent_patterns() {
        let d = ChaosDecider::new(ChaosConfig::drop_dup(9, 0.5, 0.0));
        let a: Vec<bool> = (0..64).map(|k| d.drops(streams::DISPATCH, k)).collect();
        let b: Vec<bool> = (0..64).map(|k| d.drops(streams::ACK, k)).collect();
        assert_ne!(a, b, "streams must not correlate");
    }

    #[test]
    fn dropped_messages_never_surface() {
        let cfg = ChaosConfig::drop_dup(3, 0.5, 0.0);
        let t = ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(cfg)), 1);
        for i in 0..1000 {
            t.publish(i);
        }
        let got = drain(t.inner());
        let s = t.stats();
        assert_eq!(got.len() as u64, s.published - s.dropped);
        assert!(s.dropped > 300 && s.dropped < 700, "dropped {}", s.dropped);
    }

    #[test]
    fn duplicated_messages_surface_twice() {
        let cfg = ChaosConfig::drop_dup(5, 0.0, 0.5);
        let t = ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(cfg)), 1);
        for i in 0..500 {
            t.publish(i);
        }
        let got = drain(t.inner());
        let s = t.stats();
        assert_eq!(got.len() as u64, s.published + s.duplicated);
        assert!(s.duplicated > 150, "duplicated {}", s.duplicated);
        // Duplicates are adjacent (published back-to-back), value-equal.
        let mut dups = 0;
        for w in got.windows(2) {
            if w[0] == w[1] {
                dups += 1;
            }
        }
        assert_eq!(dups as u64, s.duplicated);
    }

    #[test]
    fn delayed_messages_flush_after_hold() {
        let cfg =
            ChaosConfig { seed: 11, delay_prob: 1.0, delay_secs: 0.02, ..ChaosConfig::default() };
        let t = ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(cfg)), 1);
        t.publish(1u32);
        assert_eq!(t.try_pull(), None, "held back");
        assert_eq!(t.pending_delayed(), 1);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(t.try_pull(), Some(1), "surfaced after the hold");
        assert_eq!(t.pending_delayed(), 0);
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed| {
            let cfg = ChaosConfig { seed, drop_prob: 0.2, dup_prob: 0.2, ..ChaosConfig::default() };
            let t = ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(cfg)), 7);
            for i in 0..200u32 {
                t.publish(i);
            }
            drain(t.inner())
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(1235));
    }

    #[test]
    fn chaos_bus_isolates_topics_by_name() {
        let bus = ChaosBus::new(Broker::new(), ChaosConfig::drop_dup(21, 0.5, 0.0));
        let a = bus.topic("job_dispatch");
        let b = bus.topic("job_ack");
        for i in 0..64u32 {
            a.publish(i);
            b.publish(i);
        }
        let sa: Vec<u32> = drain(a.inner());
        let sb: Vec<u32> = drain(b.inner());
        assert_ne!(sa, sb, "per-topic streams must differ");
        // The plain broker sees the surviving messages.
        assert_eq!(bus.broker().topic_names().len(), 2);
    }

    #[test]
    fn decide_consolidates_with_drop_precedence() {
        let d = ChaosDecider::new(ChaosConfig {
            seed: 77,
            drop_prob: 0.3,
            dup_prob: 0.3,
            delay_prob: 0.3,
            delay_secs: 1.5,
        });
        let mut seen_drop = false;
        let mut seen_dup = false;
        let mut seen_delay = false;
        for k in 0..1000 {
            match d.decide(4, k) {
                Fault::Drop => {
                    assert!(d.drops(4, k));
                    seen_drop = true;
                }
                Fault::Duplicate => {
                    assert!(!d.drops(4, k) && d.duplicates(4, k));
                    seen_dup = true;
                }
                Fault::Delay(s) => {
                    assert_eq!(s, 1.5);
                    assert!(!d.drops(4, k) && !d.duplicates(4, k));
                    seen_delay = true;
                }
                Fault::Deliver => {}
            }
        }
        assert!(seen_drop && seen_dup && seen_delay, "all fault kinds drawn");
    }

    #[test]
    fn capture_then_replay_reproduces_the_run() {
        let cfg = ChaosConfig { seed: 55, drop_prob: 0.3, dup_prob: 0.3, ..ChaosConfig::default() };
        // Capture: seeded run with a trace attached.
        let trace = ChaosTrace::new();
        let seeded = ChaosTopic::new(Topic::new(), Arc::new(ChaosDecider::new(cfg)), 9)
            .with_trace(trace.clone());
        for i in 0..300u32 {
            seeded.publish(i);
        }
        let captured = drain(seeded.inner());
        assert_eq!(trace.len(), 300, "every decision recorded");
        assert!(!trace.faults().is_empty());

        // Replay: a scripted topic driven by the captured schedule, with
        // no access to the seed, delivers the identical stream.
        let schedule = Arc::new(ChaosSchedule::from_events(&trace.snapshot()));
        let replay = ChaosTopic::scripted(Topic::new(), schedule, 9);
        for i in 0..300u32 {
            replay.publish(i);
        }
        assert_eq!(drain(replay.inner()), captured);
        assert_eq!(replay.stats(), seeded.stats());
    }

    #[test]
    fn scripted_schedule_pins_individual_messages() {
        let mut s = ChaosSchedule::new();
        s.set(1, 0, Fault::Drop);
        s.set(1, 2, Fault::Duplicate);
        s.set(1, 3, Fault::Drop);
        s.set(1, 3, Fault::Deliver); // un-pin
        assert_eq!(s.len(), 2);
        let t = ChaosTopic::scripted(Topic::new(), Arc::new(s), 1);
        for i in 0..4u32 {
            t.publish(i);
        }
        assert_eq!(drain(t.inner()), vec![1, 2, 2, 3]);
    }

    #[test]
    fn message_key_spreads_small_inputs() {
        let mut keys: Vec<u64> = Vec::new();
        for a in 0..4u64 {
            for b in 0..4u64 {
                for c in 0..4u64 {
                    keys.push(message_key(a, b, c));
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 64, "no collisions on a small grid");
    }
}
