//! A single FIFO work-queue topic.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Counters exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopicStats {
    /// Messages ever published.
    pub published: u64,
    /// Messages ever delivered to a consumer.
    pub delivered: u64,
    /// Messages currently queued.
    pub depth: usize,
}

struct Inner<T> {
    queue: Mutex<State<T>>,
    available: Condvar,
}

struct State<T> {
    messages: VecDeque<T>,
    closed: bool,
    published: u64,
    delivered: u64,
}

/// One FIFO topic with work-queue semantics: every message is delivered to
/// exactly one consumer, in publish order, first-come-first-served across
/// competing consumers.
///
/// Cloning a `Topic` produces another handle to the same queue.
pub struct Topic<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Default for Topic<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Topic<T> {
    /// Create a new, open, empty topic.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                queue: Mutex::new(State {
                    messages: VecDeque::new(),
                    closed: false,
                    published: 0,
                    delivered: 0,
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Publish a message. Publishing to a closed topic is permitted and the
    /// message remains drainable — DEWE v2 masters may flush final
    /// acknowledgments while the system shuts down.
    pub fn publish(&self, message: T) {
        let mut state = self.inner.queue.lock();
        state.messages.push_back(message);
        state.published += 1;
        drop(state);
        self.inner.available.notify_one();
    }

    /// Publish a batch, waking enough consumers to drain it.
    pub fn publish_all(&self, messages: impl IntoIterator<Item = T>) {
        let mut state = self.inner.queue.lock();
        let before = state.messages.len();
        for m in messages {
            state.messages.push_back(m);
        }
        let added = state.messages.len() - before;
        state.published += added as u64;
        drop(state);
        for _ in 0..added {
            self.inner.available.notify_one();
        }
    }

    /// Non-blocking pull: `Some(message)` if one is queued, else `None`.
    pub fn try_pull(&self) -> Option<T> {
        let mut state = self.inner.queue.lock();
        let msg = state.messages.pop_front();
        if msg.is_some() {
            state.delivered += 1;
        }
        msg
    }

    /// Non-blocking batch pull: move up to `max` queued messages into
    /// `out` under a single lock acquisition, returning how many were
    /// taken. A consumer draining a burst this way pays one lock per
    /// burst instead of one per message.
    pub fn try_pull_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.inner.queue.lock();
        let take = max.min(state.messages.len());
        out.extend(state.messages.drain(..take));
        state.delivered += take as u64;
        take
    }

    /// Blocking pull: waits until a message arrives or the topic is closed.
    /// Returns `None` only when the topic is closed *and* drained.
    pub fn pull(&self) -> Option<T> {
        let mut state = self.inner.queue.lock();
        loop {
            if let Some(msg) = state.messages.pop_front() {
                state.delivered += 1;
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            self.inner.available.wait(&mut state);
        }
    }

    /// Pull with a deadline: returns `None` on timeout or on closed+drained.
    pub fn pull_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.queue.lock();
        loop {
            if let Some(msg) = state.messages.pop_front() {
                state.delivered += 1;
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            if self.inner.available.wait_until(&mut state, deadline).timed_out() {
                // One last check: a publish may have raced the timeout.
                let msg = state.messages.pop_front();
                if msg.is_some() {
                    state.delivered += 1;
                }
                return msg;
            }
        }
    }

    /// Close the topic: blocked consumers wake, remaining messages stay
    /// drainable, and pulls return `None` once the queue is empty.
    pub fn close(&self) {
        let mut state = self.inner.queue.lock();
        state.closed = true;
        drop(state);
        self.inner.available.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.queue.lock().closed
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().messages.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TopicStats {
        let state = self.inner.queue.lock();
        TopicStats {
            published: state.published,
            delivered: state.delivered,
            depth: state.messages.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn fifo_order_single_consumer() {
        let t: Topic<u32> = Topic::new();
        for i in 0..100 {
            t.publish(i);
        }
        for i in 0..100 {
            assert_eq!(t.try_pull(), Some(i));
        }
        assert_eq!(t.try_pull(), None);
    }

    #[test]
    fn publish_all_preserves_order() {
        let t: Topic<u32> = Topic::new();
        t.publish_all(0..10);
        let got: Vec<u32> = std::iter::from_fn(|| t.try_pull()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_pull_batch_drains_in_order_up_to_max() {
        let t: Topic<u32> = Topic::new();
        t.publish_all(0..10);
        let mut out = Vec::new();
        assert_eq!(t.try_pull_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(t.try_pull_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "FIFO preserved");
        assert_eq!(t.try_pull_batch(&mut out, 8), 0, "empty queue yields nothing");
        assert_eq!(t.try_pull_batch(&mut out, 0), 0, "zero max is a no-op");
        let s = t.stats();
        assert_eq!(s.delivered, 10);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn stats_track_published_and_delivered() {
        let t: Topic<u32> = Topic::new();
        t.publish_all(0..5);
        t.try_pull();
        t.try_pull();
        let s = t.stats();
        assert_eq!(s.published, 5);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn pull_timeout_expires_on_empty() {
        let t: Topic<u32> = Topic::new();
        let start = std::time::Instant::now();
        assert_eq!(t.pull_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pull_timeout_returns_early_on_publish() {
        let t: Topic<u32> = Topic::new();
        let t2 = t.clone();
        let h = thread::spawn(move || t2.pull_timeout(Duration::from_secs(10)));
        thread::sleep(Duration::from_millis(20));
        t.publish(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }

    #[test]
    fn close_wakes_blocked_pull() {
        let t: Topic<u32> = Topic::new();
        let t2 = t.clone();
        let h = thread::spawn(move || t2.pull());
        thread::sleep(Duration::from_millis(20));
        t.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(t.is_closed());
    }

    #[test]
    fn close_allows_draining() {
        let t: Topic<u32> = Topic::new();
        t.publish(1);
        t.publish(2);
        t.close();
        assert_eq!(t.pull(), Some(1));
        assert_eq!(t.pull(), Some(2));
        assert_eq!(t.pull(), None);
    }

    #[test]
    fn publish_after_close_is_drainable() {
        let t: Topic<u32> = Topic::new();
        t.close();
        t.publish(5);
        assert_eq!(t.try_pull(), Some(5));
    }

    /// The work-queue invariant under contention: N producers publishing
    /// disjoint ranges, M consumers pulling concurrently — every message is
    /// delivered exactly once.
    #[test]
    fn concurrent_exactly_once_delivery() {
        const PRODUCERS: u32 = 4;
        const CONSUMERS: usize = 6;
        const PER_PRODUCER: u32 = 500;
        let t: Topic<u32> = Topic::new();

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let t = t.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    t.publish(p * PER_PRODUCER + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let t = t.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = t.pull() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Let consumers drain, then close to release them.
        while !t.is_empty() {
            thread::yield_now();
        }
        t.close();
        let mut all = HashSet::new();
        let mut total = 0usize;
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(all.insert(v), "message {v} delivered twice");
                total += 1;
            }
        }
        assert_eq!(total, (PRODUCERS * PER_PRODUCER) as usize);
        let s = t.stats();
        assert_eq!(s.published, s.delivered);
        assert_eq!(s.depth, 0);
    }

    /// FIFO is preserved per producer even with a competing consumer pair:
    /// each consumer's subsequence of one producer's messages is increasing.
    #[test]
    fn per_producer_order_preserved() {
        let t: Topic<u32> = Topic::new();
        let t2 = t.clone();
        let producer = thread::spawn(move || {
            for i in 0..2000 {
                t2.publish(i);
            }
            t2.close();
        });
        let mut cons = Vec::new();
        for _ in 0..3 {
            let t = t.clone();
            cons.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = t.pull() {
                    got.push(v);
                }
                got
            }));
        }
        producer.join().unwrap();
        for c in cons {
            let got = c.join().unwrap();
            assert!(got.windows(2).all(|w| w[0] < w[1]), "per-consumer order violated");
        }
    }
}
