//! Model-based property tests: the broker against a reference model.

use dewe_mq::{ReliableTopic, Topic};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::time::Duration;

/// Operations applied to both the real topic and a VecDeque model.
#[derive(Debug, Clone)]
enum Op {
    Publish(u32),
    TryPull,
    Len,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u32..1000).prop_map(Op::Publish), Just(Op::TryPull), Just(Op::Len),]
}

proptest! {
    /// Sequential Topic behaviour is exactly a FIFO queue.
    #[test]
    fn topic_matches_fifo_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let topic: Topic<u32> = Topic::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut published = 0u64;
        let mut delivered = 0u64;
        for op in ops {
            match op {
                Op::Publish(v) => {
                    topic.publish(v);
                    model.push_back(v);
                    published += 1;
                }
                Op::TryPull => {
                    let got = topic.try_pull();
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                    if want.is_some() {
                        delivered += 1;
                    }
                }
                Op::Len => {
                    prop_assert_eq!(topic.len(), model.len());
                }
            }
            let stats = topic.stats();
            prop_assert_eq!(stats.published, published);
            prop_assert_eq!(stats.delivered, delivered);
            prop_assert_eq!(stats.depth, model.len());
        }
    }

    /// ReliableTopic with prompt acks behaves as a FIFO with extra
    /// bookkeeping: no redeliveries, exact delivery counts.
    #[test]
    fn reliable_topic_prompt_ack_is_fifo(values in prop::collection::vec(0u32..1000, 1..100)) {
        let t: ReliableTopic<u32> = ReliableTopic::new(Duration::from_secs(60));
        for &v in &values {
            t.publish(v);
        }
        let mut got = Vec::new();
        while let Some(d) = t.checkout() {
            prop_assert_eq!(d.delivery_count, 1);
            prop_assert!(t.ack(d.lease));
            got.push(d.message);
        }
        prop_assert_eq!(got, values);
        prop_assert!(t.is_empty());
        prop_assert_eq!(t.redeliveries(), 0);
    }

    /// Nacked messages are never lost and are redelivered with an
    /// incremented count, regardless of the nack pattern.
    #[test]
    fn reliable_topic_nack_preserves_messages(
        values in prop::collection::vec(0u32..1000, 1..60),
        nack_mask in prop::collection::vec(prop::bool::ANY, 60),
    ) {
        let t: ReliableTopic<u32> = ReliableTopic::new(Duration::from_secs(60));
        for &v in &values {
            t.publish(v);
        }
        let mut processed = Vec::new();
        let mut idx = 0usize;
        while let Some(d) = t.checkout() {
            let nack = d.delivery_count == 1 && nack_mask.get(idx).copied().unwrap_or(false);
            idx += 1;
            if nack {
                prop_assert!(t.nack(d.lease));
            } else {
                prop_assert!(t.ack(d.lease));
                processed.push(d.message);
            }
        }
        let mut expected = values.clone();
        expected.sort_unstable();
        processed.sort_unstable();
        prop_assert_eq!(processed, expected, "every message processed exactly once");
        prop_assert!(t.is_empty());
    }
}
