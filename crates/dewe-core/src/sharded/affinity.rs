//! Portable thread-affinity shim: best-effort core pinning with no libc
//! dependency.
//!
//! Shard worker threads benefit from staying on one core — the shard's
//! engine state (deadline heap, in-flight lanes, tracker bitsets) is
//! cache-hot per thread, and an OS migration throws that locality away.
//! [`pin_current_thread`] issues the raw `sched_setaffinity` syscall on
//! Linux (x86_64 / aarch64) and is a no-op returning `false` everywhere
//! else. Pinning is purely a placement hint: correctness never depends on
//! it, and callers record the outcome (see
//! [`ParallelShardedEngine::pinned_threads`](crate::ParallelShardedEngine::pinned_threads))
//! instead of assuming it stuck — on a cpuset-restricted or single-core
//! machine the kernel may refuse, and the honest answer is "0 pinned".

/// `u64` words in the CPU mask: covers 1024 CPUs, the kernel's default
/// `CPU_SETSIZE`.
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `cpu` (taken modulo the mask width).
/// Returns `true` if the kernel accepted the affinity mask, `false` on
/// refusal or on platforms without the shim.
pub fn pin_current_thread(cpu: usize) -> bool {
    pin_impl(cpu % (MASK_WORDS * 64))
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn pin_impl(cpu: usize) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // pid 0 = the calling thread.
    let ret = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    ret == 0
}

/// Raw `sched_setaffinity(2)`, issued directly so the workspace stays
/// free of a libc dependency. Negative return = -errno.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sched_setaffinity(pid: usize, mask_len: usize, mask: *const u64) -> isize {
    let mut ret: isize = 203; // __NR_sched_setaffinity
    std::arch::asm!(
        "syscall",
        inlateout("rax") ret,
        in("rdi") pid,
        in("rsi") mask_len,
        in("rdx") mask,
        lateout("rcx") _, // clobbered by the syscall instruction
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sched_setaffinity(pid: usize, mask_len: usize, mask: *const u64) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") 122usize, // __NR_sched_setaffinity
        inlateout("x0") pid => ret,
        in("x1") mask_len,
        in("x2") mask,
        options(nostack),
    );
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn pin_impl(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_to_an_available_core_succeeds_on_linux() {
        let pinned = pin_current_thread(0);
        if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))) {
            // CPU 0 is in every default cpuset; a refusal here would mean
            // the syscall shim is miswired, not an exotic environment.
            assert!(pinned, "sched_setaffinity to cpu 0 refused");
        } else {
            assert!(!pinned, "non-Linux shim must report unpinned");
        }
    }

    #[test]
    fn out_of_mask_cpus_wrap_instead_of_faulting() {
        // 5000 % 1024 = 904: a valid mask bit even though the machine has
        // far fewer cores. The kernel accepts masks naming offline CPUs
        // only if they intersect the allowed set, so just require no UB /
        // no panic and a boolean answer.
        let _ = pin_current_thread(5000);
    }
}
