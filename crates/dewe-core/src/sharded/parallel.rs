//! Thread-parallel driver for the sharded engine: one worker thread per
//! shard (or a striped subset when `threads < shards`), batched
//! cross-shard routing, and lock-free stat/deadline aggregation.
//!
//! [`ShardedEngine`](super::ShardedEngine) made shard count a knob but
//! still executes every shard on the caller's thread. At ensemble scale
//! the per-shard work — heap maintenance, tracker updates, slab walks —
//! is embarrassingly parallel: shards share no state by construction.
//! [`ParallelShardedEngine`] exploits that: each shard (engine + deadline
//! heap + in-flight slab + local→global id map) is **owned** by a
//! dedicated worker thread, and the facade routes submissions, acks and
//! timeout scans to shards through bounded per-thread queues as batches
//! of shard-local inputs. Workers translate their shard-local actions
//! back to global ids before replying, so translation cost parallelizes
//! too. Statistics, live-workflow counts and the merged `next_deadline`
//! are published by workers into per-shard atomic cells after every batch
//! and merged on read — no global lock anywhere on the hot path.
//!
//! Two operating modes share the same machinery:
//!
//! * **Deterministic barrier mode** — the [`EngineCore`] implementation.
//!   Every trait call flushes its inputs and blocks until the owning
//!   worker(s) reply, appending replies in **shard index order**. Within
//!   a shard, processing order equals enqueue order, and shards are
//!   state-independent, so every call produces the byte-identical action
//!   sequence the sequential [`ShardedEngine`](super::ShardedEngine)
//!   would: virtual-time drivers (the sim runtime, the testkit oracle,
//!   the shard-invariance property) get bit-identical outcomes while the
//!   per-shard compute still runs on worker cores.
//! * **Free-running mode** — the `enqueue_*`/`flush`/`poll_actions`
//!   surface used by the threaded realtime master. Inputs are buffered
//!   per shard, flushed in batches (the `ack_burst` pattern, applied per
//!   shard), and replies are drained opportunistically; with a
//!   [`DispatchSink`] installed, workers publish dispatches straight onto
//!   their shard's topic without ever crossing back through the facade.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dewe_dag::{EnsembleJobId, JobState, Workflow, WorkflowId};

use crate::engine::{Action, EngineConfig, EngineCore, EngineStats, EnsembleEngine};
use crate::protocol::{AckMsg, DispatchMsg};

use super::{globalize_action, HashRouter, ShardLoad, ShardRouter, ShardedEngine};

/// Capacity of each worker thread's input queue. Bounded so a producer
/// that outruns its shards blocks (backpressure) instead of growing an
/// unbounded backlog; deep enough that the free-running master never
/// blocks in steady state.
const INPUT_QUEUE_DEPTH: usize = 256;

/// Sentinel for "no pending deadline" in [`ShardCell::deadline_bits`].
const NO_DEADLINE: u64 = u64::MAX;

/// Callback a worker invokes with each *run* of dispatches its shard
/// emitted while applying one input batch, instead of routing them back
/// through the facade. Installed by the free-running realtime master to
/// publish straight onto the per-shard dispatch topic from the owning
/// worker thread. The callee drains the vector (same contract as
/// `Transport::publish_dispatch_batch`), so the seat reuses one run
/// buffer for its lifetime; dispatch order within the shard is the
/// engine's emission order.
pub type DispatchSink = dyn Fn(usize, &mut Vec<DispatchMsg>) + Send + Sync;

/// Construction knobs for [`ParallelShardedEngine`].
#[derive(Clone)]
pub struct ParallelOptions {
    /// Worker threads to spawn; clamped to `[1, shards]`. `0` means one
    /// thread per shard. When `threads < shards`, thread `t` owns shards
    /// `t, t + threads, t + 2·threads, …` (striped).
    pub threads: usize,
    /// Optional per-dispatch callback run on the worker thread; when set,
    /// `Action::Dispatch` never appears in collected replies.
    pub dispatch_sink: Option<Arc<DispatchSink>>,
    /// Pin worker thread `t` to core `t mod available_parallelism` via the
    /// [`affinity`](super::affinity) shim (default `true`). Best-effort:
    /// when the platform has no shim or the kernel refuses, threads run
    /// unpinned and [`ParallelShardedEngine::pinned_threads`] reports how
    /// many actually stuck.
    pub pin_threads: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self { threads: 0, dispatch_sink: None, pin_threads: true }
    }
}

/// One shard-local input, already translated by the facade.
enum ShardInput {
    /// Submit `workflow` as the shard's next local workflow; `global` is
    /// the dense ensemble-wide id the facade assigned.
    Submit { global: WorkflowId, workflow: Arc<Workflow>, now: f64 },
    /// An ack whose job carries the *shard-local* workflow id.
    Ack { ack: AckMsg, now: f64 },
    /// Timeout scan at `now`.
    Scan { now: f64 },
}

/// A batch of inputs for one shard, with a recycled action sink.
struct Batch {
    shard: usize,
    inputs: Vec<ShardInput>,
    sink: Vec<Action>,
}

/// Everything a worker thread accepts.
enum ThreadMsg {
    Batch(Batch),
    JobState { shard: usize, job: EnsembleJobId, reply: SyncSender<Option<JobState>> },
    Inflight { shard: usize, reply: SyncSender<Vec<DispatchMsg>> },
    Shutdown,
}

/// A processed batch on its way back: `actions` carry global ids and no
/// per-shard terminals; `recycled` is the drained input buffer, returned
/// so the steady state allocates nothing.
struct Reply {
    shard: usize,
    actions: Vec<Action>,
    recycled: Vec<ShardInput>,
}

/// Per-shard snapshot the owning worker publishes after every batch and
/// the facade merges on read. All counters are monotone, so even a torn
/// read in free-running mode only ever *under*-reports progress.
struct ShardCell {
    /// [`EngineStats`] fields, in declaration order.
    stats: [AtomicU64; 11],
    /// `f64::to_bits` of the shard's earliest deadline, [`NO_DEADLINE`]
    /// when none. Non-negative finite deadlines order identically as bits.
    deadline_bits: AtomicU64,
    /// Workflows submitted to the shard.
    workflow_count: AtomicU64,
    /// 1 once every workflow on the shard is settled (0 while empty).
    settled: AtomicU64,
    /// Deadline-wheel cascades on the shard (0 under the heap backend).
    timer_cascades: AtomicU64,
}

impl ShardCell {
    fn new() -> Self {
        Self {
            stats: Default::default(),
            deadline_bits: AtomicU64::new(NO_DEADLINE),
            workflow_count: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            timer_cascades: AtomicU64::new(0),
        }
    }

    fn publish(&self, engine: &mut EnsembleEngine) {
        let s = engine.stats();
        let words = [
            s.workflows_submitted as u64,
            s.workflows_completed as u64,
            s.workflows_abandoned as u64,
            s.dispatches,
            s.resubmissions,
            s.deferred_retries,
            s.jobs_completed,
            s.duplicate_completions,
            s.stale_failures_ignored,
            s.dead_lettered,
            s.jobs_abandoned,
        ];
        for (cell, word) in self.stats.iter().zip(words) {
            cell.store(word, Ordering::Relaxed);
        }
        let bits = engine.next_deadline().map_or(NO_DEADLINE, f64::to_bits);
        self.deadline_bits.store(bits, Ordering::Relaxed);
        self.workflow_count.store(engine.workflow_count() as u64, Ordering::Relaxed);
        self.timer_cascades.store(engine.timer_cascades(), Ordering::Relaxed);
        self.settled.store(u64::from(engine.all_settled()), Ordering::Release);
    }

    fn stats(&self) -> EngineStats {
        let w = |i: usize| self.stats[i].load(Ordering::Relaxed);
        EngineStats {
            workflows_submitted: w(0) as usize,
            workflows_completed: w(1) as usize,
            workflows_abandoned: w(2) as usize,
            dispatches: w(3),
            resubmissions: w(4),
            deferred_retries: w(5),
            jobs_completed: w(6),
            duplicate_completions: w(7),
            stale_failures_ignored: w(8),
            dead_lettered: w(9),
            jobs_abandoned: w(10),
        }
    }
}

/// One shard as owned by its worker thread.
struct ShardSeat {
    engine: EnsembleEngine,
    /// Shard-local workflow index → global id.
    globals: Vec<WorkflowId>,
    cell: Arc<ShardCell>,
    /// Reusable buffer for shard-local actions awaiting translation.
    scratch: Vec<Action>,
    /// Dispatches accumulated across one input batch, handed to the
    /// dispatch sink as a single run.
    run: Vec<DispatchMsg>,
}

impl ShardSeat {
    fn apply(&mut self, input: ShardInput, sink: &mut Vec<Action>, batch_dispatches: bool) {
        match input {
            ShardInput::Submit { global, workflow, now } => {
                let local = self.engine.submit_workflow(workflow, now, &mut self.scratch);
                self.globals.push(global);
                debug_assert_eq!(self.globals.len(), local.index() + 1);
            }
            ShardInput::Ack { ack, now } => self.engine.on_ack(ack, now, &mut self.scratch),
            ShardInput::Scan { now } => self.engine.check_timeouts(now, &mut self.scratch),
        }
        for a in self.scratch.drain(..) {
            match globalize_action(&self.globals, a) {
                Some(Action::Dispatch(d)) if batch_dispatches => self.run.push(d),
                Some(g) => sink.push(g),
                None => {}
            }
        }
    }
}

fn worker_loop(
    rx: Receiver<ThreadMsg>,
    mut seats: Vec<Option<ShardSeat>>,
    reply_tx: Sender<Reply>,
    dispatch_sink: Option<Arc<DispatchSink>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ThreadMsg::Batch(mut batch) => {
                let seat = seats[batch.shard].as_mut().expect("batch for unowned shard");
                for input in batch.inputs.drain(..) {
                    seat.apply(input, &mut batch.sink, dispatch_sink.is_some());
                }
                if let Some(sink) = dispatch_sink.as_ref() {
                    if !seat.run.is_empty() {
                        sink(batch.shard, &mut seat.run);
                        debug_assert!(seat.run.is_empty(), "dispatch sink must drain its run");
                    }
                }
                seat.cell.publish(&mut seat.engine);
                // A send failure means the facade is gone (dropped while
                // batches were in flight): nothing left to report to.
                let _ = reply_tx.send(Reply {
                    shard: batch.shard,
                    actions: batch.sink,
                    recycled: batch.inputs,
                });
            }
            ThreadMsg::JobState { shard, job, reply } => {
                let seat = seats[shard].as_ref().expect("query for unowned shard");
                let _ = reply.send(seat.engine.job_state(job));
            }
            ThreadMsg::Inflight { shard, reply } => {
                let seat = seats[shard].as_ref().expect("query for unowned shard");
                let mut local = Vec::new();
                seat.engine.inflight_dispatches(&mut local);
                let out = local
                    .into_iter()
                    .map(|d| DispatchMsg {
                        job: EnsembleJobId::new(seat.globals[d.job.workflow.index()], d.job.job),
                        attempt: d.attempt,
                    })
                    .collect();
                let _ = reply.send(out);
            }
            ThreadMsg::Shutdown => break,
        }
    }
}

/// N engine shards, each owned by a worker thread, behind the same
/// [`EngineCore`] surface as the sequential
/// [`ShardedEngine`](super::ShardedEngine). Construct via
/// [`EngineConfig::build_parallel`] or [`ParallelShardedEngine::new`].
///
/// The trait implementation is the deterministic barrier mode: outcomes
/// are bit-identical to the sequential facade (see the module docs). The
/// free-running surface (`enqueue_*` / [`flush`](Self::flush) /
/// [`poll_actions`](Self::poll_actions)) trades that strict ordering for
/// pipelining and is what the threaded realtime master drives.
pub struct ParallelShardedEngine {
    shards: usize,
    senders: Vec<SyncSender<ThreadMsg>>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    cells: Vec<Arc<ShardCell>>,
    router: Box<dyn ShardRouter>,
    /// Global workflow index → (shard, shard-local id).
    assignment: Vec<(u32, WorkflowId)>,
    /// Global workflow index → the workflow (kept so `workflow()` can
    /// answer without a worker round-trip).
    workflows: Vec<Arc<Workflow>>,
    /// Per-shard count of local workflows (the next local id).
    locals: Vec<usize>,
    /// Per-shard input buffers awaiting a flush.
    pending: Vec<Vec<ShardInput>>,
    /// Per-shard recycled buffers: a reply's input and sink vectors go
    /// back to the shard that grew them, so each pool converges on that
    /// shard's own batch sizes and the steady state allocates nothing.
    /// (A shared pool lets a busy shard's big buffers drain to idle
    /// shards and forces the busy one to regrow from scratch.)
    pools: Vec<ShardPool>,
    /// Fresh-buffer allocations taken because a shard's pool ran dry.
    /// Grows during warm-up, then stops: the steady-state reuse
    /// invariant the recycling test pins down.
    buffer_misses: u64,
    /// Per-shard reply slots for in-shard-order collection.
    collect: Vec<Option<Vec<Action>>>,
    /// Batches sent but not yet replied.
    outstanding: usize,
    terminal_emitted: bool,
    /// Worker threads that successfully pinned to a core.
    pinned: Arc<AtomicUsize>,
}

/// Recycled batch buffers owned by one shard (see
/// [`ParallelShardedEngine::pools`]).
#[derive(Default)]
struct ShardPool {
    inputs: Vec<Vec<ShardInput>>,
    sinks: Vec<Vec<Action>>,
}

impl ParallelShardedEngine {
    /// `shards` engines sharing `config`, one worker thread per shard,
    /// routed by [`HashRouter`].
    pub fn new(config: EngineConfig, shards: usize) -> Self {
        Self::with_options(
            config,
            shards,
            Box::new(HashRouter::default()),
            ParallelOptions::default(),
        )
    }

    /// Full-control constructor: custom router, thread cap, dispatch sink.
    pub fn with_options(
        config: EngineConfig,
        shards: usize,
        router: Box<dyn ShardRouter>,
        opts: ParallelOptions,
    ) -> Self {
        assert!(shards >= 1, "a parallel sharded engine needs at least one shard");
        let engines: Vec<EnsembleEngine> = (0..shards).map(|_| config.build()).collect();
        let globals = vec![Vec::new(); shards];
        Self::from_state(engines, router, Vec::new(), globals, Vec::new(), opts)
    }

    /// Wrap an already-populated sequential [`ShardedEngine`] — the
    /// journal-recovery path: replay rebuilds the sequential facade, then
    /// the master promotes it onto worker threads.
    pub fn from_sharded(engine: ShardedEngine, opts: ParallelOptions) -> Self {
        let (engines, router, assignment, globals) = engine.into_parts();
        let workflows = assignment
            .iter()
            .map(|&(shard, local)| Arc::clone(engines[shard as usize].workflow(local)))
            .collect();
        Self::from_state(engines, router, assignment, globals, workflows, opts)
    }

    fn from_state(
        engines: Vec<EnsembleEngine>,
        router: Box<dyn ShardRouter>,
        assignment: Vec<(u32, WorkflowId)>,
        globals: Vec<Vec<WorkflowId>>,
        workflows: Vec<Arc<Workflow>>,
        opts: ParallelOptions,
    ) -> Self {
        let shards = engines.len();
        let threads = match opts.threads {
            0 => shards,
            t => t.min(shards),
        };
        let locals: Vec<usize> = globals.iter().map(Vec::len).collect();
        let cells: Vec<Arc<ShardCell>> = (0..shards).map(|_| Arc::new(ShardCell::new())).collect();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        // Distribute shard seats striped across threads: thread t owns
        // shards t, t + threads, …, so small thread caps still spread
        // load evenly over the workers.
        let mut seat_rows: Vec<Vec<Option<ShardSeat>>> =
            (0..threads).map(|_| (0..shards).map(|_| None).collect()).collect();
        for (shard, (mut engine, globals)) in engines.into_iter().zip(globals).enumerate() {
            let cell = Arc::clone(&cells[shard]);
            cell.publish(&mut engine);
            seat_rows[shard % threads][shard] =
                Some(ShardSeat { engine, globals, cell, scratch: Vec::new(), run: Vec::new() });
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let pinned = Arc::new(AtomicUsize::new(0));
        for (t, seats) in seat_rows.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<ThreadMsg>(INPUT_QUEUE_DEPTH);
            let reply_tx = reply_tx.clone();
            let sink = opts.dispatch_sink.clone();
            let pin = opts.pin_threads;
            let pinned = Arc::clone(&pinned);
            handles.push(
                std::thread::Builder::new()
                    .name("dewe-shard".into())
                    .spawn(move || {
                        if pin && super::affinity::pin_current_thread(t % cores) {
                            pinned.fetch_add(1, Ordering::Relaxed);
                        }
                        worker_loop(rx, seats, reply_tx, sink)
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        Self {
            shards,
            senders,
            reply_rx,
            handles,
            cells,
            router,
            assignment,
            workflows,
            locals,
            pending: (0..shards).map(|_| Vec::new()).collect(),
            pools: (0..shards).map(|_| ShardPool::default()).collect(),
            buffer_misses: 0,
            collect: (0..shards).map(|_| None).collect(),
            outstanding: 0,
            terminal_emitted: false,
            pinned,
        }
    }

    /// Number of worker threads backing the engine.
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Worker threads whose core pin actually stuck (0 when
    /// [`ParallelOptions::pin_threads`] is off or the platform refused) —
    /// report this rather than assuming the pin request succeeded.
    pub fn pinned_threads(&self) -> usize {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Fresh batch-buffer allocations taken because the owning shard's
    /// recycling pool was empty. Grows during warm-up, then plateaus:
    /// steady-state batches reuse the buffers their shard grew earlier.
    pub fn buffer_misses(&self) -> u64 {
        self.buffer_misses
    }

    fn sender_for(&self, shard: usize) -> &SyncSender<ThreadMsg> {
        &self.senders[shard % self.senders.len()]
    }

    fn loads(&self) -> Vec<ShardLoad> {
        (0..self.shards)
            .map(|shard| {
                let s = self.cells[shard].stats();
                ShardLoad {
                    total_workflows: self.locals[shard],
                    live_workflows: self.locals[shard]
                        - s.workflows_completed
                        - s.workflows_abandoned,
                }
            })
            .collect()
    }

    /// Merged settlement check from the published cells: empty shards
    /// don't block settlement; an engine with no submissions is not
    /// settled (matches the sequential facade).
    fn settled_from_cells(&self) -> bool {
        !self.assignment.is_empty()
            && self.cells.iter().all(|c| {
                c.workflow_count.load(Ordering::Relaxed) == 0
                    || c.settled.load(Ordering::Acquire) == 1
            })
    }

    /// Emit the merged terminal if due. Only meaningful when no inputs
    /// are buffered or in flight, which every caller guarantees.
    fn maybe_all_done(&mut self, actions: &mut Vec<Action>) {
        debug_assert_eq!(self.outstanding, 0);
        if !self.terminal_emitted && self.settled_from_cells() {
            self.terminal_emitted = true;
            actions.push(if self.stats().workflows_abandoned == 0 {
                Action::AllCompleted
            } else {
                Action::AllSettled
            });
        }
    }

    /// Buffer a submission for `shard`, assigning and returning the dense
    /// global id. Re-arms the merged terminal like any submission.
    pub fn enqueue_submit_to(
        &mut self,
        shard: usize,
        workflow: Arc<Workflow>,
        now: f64,
    ) -> WorkflowId {
        assert!(shard < self.shards, "shard {shard} out of range");
        let global = WorkflowId::from_index(self.assignment.len());
        let local = WorkflowId::from_index(self.locals[shard]);
        self.locals[shard] += 1;
        self.assignment.push((shard as u32, local));
        self.workflows.push(Arc::clone(&workflow));
        self.terminal_emitted = false;
        self.pending[shard].push(ShardInput::Submit { global, workflow, now });
        global
    }

    /// Buffer an ack (global ids) for its owning shard. Returns `false`
    /// for an unknown workflow.
    pub fn enqueue_ack(&mut self, ack: AckMsg, now: f64) -> bool {
        let Some(&(shard, local)) = self.assignment.get(ack.job.workflow.index()) else {
            debug_assert!(false, "ack for unknown workflow {:?}", ack.job.workflow);
            return false;
        };
        let local_ack = AckMsg { job: EnsembleJobId::new(local, ack.job.job), ..ack };
        self.pending[shard as usize].push(ShardInput::Ack { ack: local_ack, now });
        true
    }

    /// Buffer a timeout scan at `now` for every shard.
    pub fn enqueue_scan(&mut self, now: f64) {
        for shard in 0..self.shards {
            self.pending[shard].push(ShardInput::Scan { now });
        }
    }

    /// Send every non-empty per-shard buffer to its owning worker as one
    /// batch. Returns the number of batches now in flight in total.
    pub fn flush(&mut self) -> usize {
        for shard in 0..self.shards {
            if self.pending[shard].is_empty() {
                continue;
            }
            let spare = match self.pools[shard].inputs.pop() {
                Some(buf) => buf,
                None => {
                    self.buffer_misses += 1;
                    Vec::new()
                }
            };
            let inputs = std::mem::replace(&mut self.pending[shard], spare);
            let sink = match self.pools[shard].sinks.pop() {
                Some(buf) => buf,
                None => {
                    self.buffer_misses += 1;
                    Vec::new()
                }
            };
            self.sender_for(shard)
                .send(ThreadMsg::Batch(Batch { shard, inputs, sink }))
                .expect("shard worker alive");
            self.outstanding += 1;
        }
        self.outstanding
    }

    fn absorb_reply(&mut self, reply: Reply, actions: &mut Vec<Action>) {
        self.outstanding -= 1;
        self.pools[reply.shard].inputs.push(reply.recycled);
        let mut batch_actions = reply.actions;
        actions.append(&mut batch_actions);
        self.pools[reply.shard].sinks.push(batch_actions);
    }

    /// Drain any completed batches without blocking (free-running mode);
    /// actions append in arrival order. Emits the merged terminal once
    /// everything in flight has drained and the ensemble settled.
    pub fn poll_actions(&mut self, actions: &mut Vec<Action>) -> usize {
        let mut drained = 0;
        while let Ok(reply) = self.reply_rx.try_recv() {
            self.absorb_reply(reply, actions);
            drained += 1;
        }
        if self.outstanding == 0 && self.pending.iter().all(Vec::is_empty) {
            self.maybe_all_done(actions);
        }
        drained
    }

    /// Flush buffered inputs and block until every in-flight batch has
    /// replied; actions append in arrival order, then the merged terminal
    /// if due. The free-running master's drain point (stop, exit).
    pub fn quiesce(&mut self, actions: &mut Vec<Action>) {
        self.flush();
        while self.outstanding > 0 {
            let reply = self.reply_rx.recv().expect("shard worker alive");
            self.absorb_reply(reply, actions);
        }
        self.maybe_all_done(actions);
    }

    /// The deterministic barrier: flush buffered inputs, wait for every
    /// touched shard, and append replies in **shard index order** so the
    /// action stream is byte-identical to the sequential facade's.
    fn barrier(&mut self, actions: &mut Vec<Action>) {
        debug_assert!(self.collect.iter().all(Option::is_none));
        if self.flush() == 0 {
            self.maybe_all_done(actions);
            return;
        }
        while self.outstanding > 0 {
            let reply = self.reply_rx.recv().expect("shard worker alive");
            self.outstanding -= 1;
            self.pools[reply.shard].inputs.push(reply.recycled);
            self.collect[reply.shard] = Some(reply.actions);
        }
        for shard in 0..self.shards {
            if let Some(mut batch_actions) = self.collect[shard].take() {
                actions.append(&mut batch_actions);
                self.pools[shard].sinks.push(batch_actions);
            }
        }
        self.maybe_all_done(actions);
    }
}

impl EngineCore for ParallelShardedEngine {
    fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        let shard = EngineCore::route_next(self, &workflow);
        self.submit_workflow_to(shard, workflow, now, actions)
    }

    fn submit_workflow_to(
        &mut self,
        shard: usize,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        let global = self.enqueue_submit_to(shard, workflow, now);
        self.barrier(actions);
        global
    }

    fn route_next(&self, workflow: &Workflow) -> usize {
        let loads = self.loads();
        let shard = self.router.route(workflow, self.assignment.len(), &loads);
        assert!(shard < self.shards, "router returned shard {shard} out of range");
        shard
    }

    fn on_ack(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>) {
        if self.enqueue_ack(ack, now) {
            self.barrier(actions);
        }
    }

    fn check_timeouts(&mut self, now: f64, actions: &mut Vec<Action>) {
        self.enqueue_scan(now);
        self.barrier(actions);
    }

    fn next_deadline(&mut self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for cell in &self.cells {
            let bits = cell.deadline_bits.load(Ordering::Relaxed);
            if bits != NO_DEADLINE {
                let d = f64::from_bits(bits);
                best = Some(match best {
                    Some(b) => b.min(d),
                    None => d,
                });
            }
        }
        best
    }

    fn all_complete(&self) -> bool {
        self.all_settled() && self.stats().workflows_abandoned == 0
    }

    fn all_settled(&self) -> bool {
        self.settled_from_cells()
    }

    fn stats(&self) -> EngineStats {
        let mut merged = EngineStats::default();
        for cell in &self.cells {
            merged.merge(&cell.stats());
        }
        merged
    }

    fn timer_cascades(&self) -> u64 {
        self.cells.iter().map(|c| c.timer_cascades.load(Ordering::Relaxed)).sum()
    }

    fn job_state(&self, job: EnsembleJobId) -> Option<JobState> {
        let &(shard, local) = self.assignment.get(job.workflow.index())?;
        let (tx, rx) = sync_channel(1);
        self.sender_for(shard as usize)
            .send(ThreadMsg::JobState {
                shard: shard as usize,
                job: EnsembleJobId::new(local, job.job),
                reply: tx,
            })
            .expect("shard worker alive");
        rx.recv().expect("shard worker alive")
    }

    fn workflow(&self, id: WorkflowId) -> &Arc<Workflow> {
        &self.workflows[id.index()]
    }

    fn workflow_count(&self) -> usize {
        self.assignment.len()
    }

    fn inflight_dispatches(&self, out: &mut Vec<DispatchMsg>) {
        for shard in 0..self.shards {
            let (tx, rx) = sync_channel(1);
            self.sender_for(shard)
                .send(ThreadMsg::Inflight { shard, reply: tx })
                .expect("shard worker alive");
            out.extend(rx.recv().expect("shard worker alive"));
        }
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, id: WorkflowId) -> usize {
        self.assignment[id.index()].0 as usize
    }
}

impl Drop for ParallelShardedEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ThreadMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AckKind;
    use dewe_dag::WorkflowBuilder;

    fn chain(n: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("j{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    fn dispatches(actions: &[Action]) -> Vec<DispatchMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    fn done_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Completed, attempt }
    }

    #[test]
    fn matches_sequential_facade_action_for_action() {
        let config = EngineConfig::default().timeout(30.0);
        let mut seq = config.build_sharded(4);
        let mut par = ParallelShardedEngine::new(config, 4);
        let mut sa = Vec::new();
        let mut pa = Vec::new();
        for i in 0..12 {
            sa.clear();
            pa.clear();
            let s = seq.submit_workflow(chain(2), f64::from(i), &mut sa);
            let p = par.submit_workflow(chain(2), f64::from(i), &mut pa);
            assert_eq!(s, p, "global id assignment must match");
            assert_eq!(sa, pa, "submit actions must match");
        }
        // Drive both to completion, acking identically; every action
        // batch must match exactly (order included).
        let mut inflight = Vec::new();
        seq.inflight_dispatches(&mut inflight);
        let mut pinflight = Vec::new();
        par.inflight_dispatches(&mut pinflight);
        assert_eq!(inflight, pinflight);
        let mut pending: Vec<DispatchMsg> = inflight;
        let mut round = 0;
        while !seq.all_settled() {
            round += 1;
            assert!(round < 100, "did not converge");
            let wave = std::mem::take(&mut pending);
            for d in wave {
                sa.clear();
                pa.clear();
                seq.on_ack(done_ack(d.job, d.attempt), 10.0 * f64::from(round), &mut sa);
                par.on_ack(done_ack(d.job, d.attempt), 10.0 * f64::from(round), &mut pa);
                assert_eq!(sa, pa, "ack actions must match");
                pending.extend(dispatches(&sa));
            }
        }
        assert!(par.all_settled());
        assert!(par.all_complete());
        assert_eq!(seq.stats(), par.stats());
        assert_eq!(par.next_deadline(), seq.next_deadline());
    }

    #[test]
    fn striped_threads_cover_all_shards() {
        // 4 shards on 2 threads: placement still works for every shard.
        let opts = ParallelOptions { threads: 2, ..ParallelOptions::default() };
        let mut e = ParallelShardedEngine::with_options(
            EngineConfig::default(),
            4,
            Box::new(HashRouter::default()),
            opts,
        );
        assert_eq!(e.thread_count(), 2);
        assert_eq!(e.shard_count(), 4);
        let mut actions = Vec::new();
        for shard in 0..4 {
            let id = e.submit_workflow_to(shard, chain(1), 0.0, &mut actions);
            assert_eq!(e.shard_of(id), shard);
        }
        assert_eq!(dispatches(&actions).len(), 4);
        let mut out = Vec::new();
        for d in dispatches(&actions) {
            e.on_ack(done_ack(d.job, d.attempt), 1.0, &mut out);
        }
        assert!(out.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert_eq!(e.stats().jobs_completed, 4);
    }

    #[test]
    fn free_running_mode_settles_with_dispatch_sink() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(usize, DispatchMsg)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |shard: usize, run: &mut Vec<DispatchMsg>| {
                seen.lock().unwrap().extend(run.drain(..).map(|d| (shard, d)));
            }) as Arc<DispatchSink>
        };
        let opts = ParallelOptions { dispatch_sink: Some(sink), ..ParallelOptions::default() };
        let mut e = ParallelShardedEngine::with_options(
            EngineConfig::default(),
            2,
            Box::new(HashRouter::default()),
            opts,
        );
        let mut actions = Vec::new();
        for i in 0..4usize {
            e.enqueue_submit_to(i % 2, chain(1), i as f64);
        }
        e.flush();
        // Dispatches arrive through the sink, not the reply stream.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while seen.lock().unwrap().len() < 4 {
            assert!(std::time::Instant::now() < deadline, "sink never saw dispatches");
            e.poll_actions(&mut actions);
            std::thread::yield_now();
        }
        assert!(dispatches(&actions).is_empty(), "sink intercepts dispatches");
        let acks: Vec<(usize, DispatchMsg)> = seen.lock().unwrap().clone();
        for (shard, d) in acks {
            assert_eq!(e.shard_of(d.job.workflow), shard);
            assert!(e.enqueue_ack(done_ack(d.job, d.attempt), 5.0));
        }
        e.quiesce(&mut actions);
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert!(e.all_complete());
        assert_eq!(e.stats().workflows_completed, 4);
    }

    #[test]
    fn reply_buffers_recycle_at_steady_state() {
        // Two shards, one long chain each, driven one ack at a time in
        // barrier mode: every round sends exactly one single-input batch,
        // so after a short warm-up each shard's pool always has a buffer
        // at the right capacity and the miss counter must plateau.
        let mut e = ParallelShardedEngine::new(EngineConfig::default(), 2);
        let mut actions = Vec::new();
        for shard in 0..2 {
            e.submit_workflow_to(shard, chain(40), 0.0, &mut actions);
        }
        let mut pending: Vec<DispatchMsg> = dispatches(&actions);
        let mut processed = 0usize;
        let mut after_warmup = 0u64;
        while let Some(d) = pending.pop() {
            actions.clear();
            e.on_ack(done_ack(d.job, d.attempt), 1.0, &mut actions);
            pending.extend(dispatches(&actions));
            processed += 1;
            // Warm-up = the first ack per shard plus the submissions
            // above; 4 rounds covers both shards comfortably.
            if processed == 4 {
                after_warmup = e.buffer_misses();
            }
        }
        assert!(e.all_complete());
        assert_eq!(processed, 80);
        assert!(after_warmup > 0, "warm-up must have allocated something");
        assert_eq!(
            e.buffer_misses(),
            after_warmup,
            "steady-state batches must reuse recycled buffers, not allocate"
        );
    }

    #[test]
    fn pinning_is_reported_honestly() {
        let e = ParallelShardedEngine::new(EngineConfig::default(), 4);
        assert!(
            e.pinned_threads() <= e.thread_count(),
            "cannot pin more threads than exist: {} > {}",
            e.pinned_threads(),
            e.thread_count()
        );
        let unpinned = ParallelShardedEngine::with_options(
            EngineConfig::default(),
            2,
            Box::new(HashRouter::default()),
            ParallelOptions { pin_threads: false, ..ParallelOptions::default() },
        );
        assert_eq!(unpinned.pinned_threads(), 0, "pin_threads=false must not pin");
    }

    #[test]
    fn promoting_a_recovered_sharded_engine_preserves_state() {
        let config = EngineConfig::default().timeout(20.0);
        let mut seq = config.build_sharded(2);
        let mut actions = Vec::new();
        let a = seq.submit_workflow_to(0, chain(2), 0.0, &mut actions);
        let b = seq.submit_workflow_to(1, chain(1), 0.5, &mut actions);
        // Complete workflow b, leave a live with job 0 in flight.
        let mut out = Vec::new();
        seq.on_ack(done_ack(EnsembleJobId::new(b, dewe_dag::JobId(0)), 1), 1.0, &mut out);
        let stats_before = seq.stats();
        let mut par = ParallelShardedEngine::from_sharded(seq, ParallelOptions::default());
        assert_eq!(par.stats(), stats_before);
        assert_eq!(par.workflow_count(), 2);
        assert_eq!(par.shard_of(a), 0);
        assert_eq!(par.shard_of(b), 1);
        // Finish workflow a through the promoted engine.
        out.clear();
        par.on_ack(done_ack(EnsembleJobId::new(a, dewe_dag::JobId(0)), 1), 2.0, &mut out);
        let next = dispatches(&out);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].job.workflow, a, "chained dispatch keeps the global id");
        out.clear();
        par.on_ack(done_ack(next[0].job, next[0].attempt), 3.0, &mut out);
        assert!(out.iter().any(|x| matches!(x, Action::AllCompleted)));
        assert_eq!(par.stats().workflows_completed, 2);
    }
}
