//! The sharded ensemble engine: N independent [`EnsembleEngine`]s behind
//! the single [`EngineCore`] surface.
//!
//! The paper's DEWE v2 master is one daemon; at ensemble scale (hundreds
//! of Montage workflows, millions of jobs) its single deadline heap and
//! ack stream become the bottleneck. [`ShardedEngine`] partitions
//! workflows across shards, each a full `EnsembleEngine` with its own
//! deadline heap and in-flight slabs, so dispatch/ack/timeout work is
//! independent per shard — no locks, no shared structures — and a
//! multi-core master (or a partitioned simulator) can drive shards in
//! parallel.
//!
//! Workflow ids stay **global**: dense, in submission order, identical to
//! what a single engine would assign. The facade translates to per-shard
//! local ids on the way in and back to global ids in every emitted
//! [`Action`], so drivers never see shard-local state. Placement is
//! decided by a pluggable [`ShardRouter`] and reported via
//! [`EngineCore::shard_of`], which is how the realtime master fans
//! dispatches out to per-shard worker pools and how the write-ahead
//! journal records placement for recovery
//! ([`EngineCore::submit_workflow_to`] replays it).
//!
//! Per-shard `AllCompleted`/`AllSettled` terminals are suppressed; the
//! facade emits exactly one merged terminal action when the whole
//! ensemble settles, mirroring single-engine semantics.

use std::sync::Arc;

use dewe_dag::{EnsembleJobId, JobState, Workflow, WorkflowId};

use crate::engine::{Action, EngineConfig, EngineCore, EngineStats, EnsembleEngine};
use crate::protocol::{AckMsg, DispatchMsg};

pub mod affinity;
pub mod parallel;

/// Rewrite a shard-local action to global workflow ids using the shard's
/// local→global map; per-shard terminal actions are swallowed (the facade
/// emits the merged one). Shared by the sequential facade and the
/// per-shard worker threads of the parallel driver.
fn globalize_action(globals: &[WorkflowId], action: Action) -> Option<Action> {
    let map = |local: WorkflowId| globals[local.index()];
    Some(match action {
        Action::Dispatch(d) => Action::Dispatch(DispatchMsg {
            job: EnsembleJobId::new(map(d.job.workflow), d.job.job),
            attempt: d.attempt,
        }),
        Action::JobDeadLettered { job, attempts, abandoned_jobs } => Action::JobDeadLettered {
            job: EnsembleJobId::new(map(job.workflow), job.job),
            attempts,
            abandoned_jobs,
        },
        Action::WorkflowCompleted { workflow, makespan_secs } => {
            Action::WorkflowCompleted { workflow: map(workflow), makespan_secs }
        }
        Action::WorkflowAbandoned { workflow, dead_lettered, abandoned_jobs } => {
            Action::WorkflowAbandoned { workflow: map(workflow), dead_lettered, abandoned_jobs }
        }
        Action::AllCompleted | Action::AllSettled => return None,
    })
}

/// Per-shard load snapshot handed to routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Workflows ever placed on the shard.
    pub total_workflows: usize,
    /// Workflows placed on the shard that have not yet settled.
    pub live_workflows: usize,
}

/// Placement policy: which shard gets the next submitted workflow.
///
/// Contract: `route` must be **pure** with respect to the engine — the
/// same (workflow, next_global, loads) inputs must yield the same shard,
/// and the router must not assume it is called exactly once per
/// submission. [`EngineCore::route_next`] previews the decision so the
/// master can journal it *before* submitting; the subsequent
/// [`EngineCore::submit_workflow`] call re-routes and must land on the
/// same shard. The returned index must be `< loads.len()`.
pub trait ShardRouter: Send {
    /// Pick a shard for `workflow`, which will become global workflow
    /// `next_global`, given the current per-shard loads.
    fn route(&self, workflow: &Workflow, next_global: usize, loads: &[ShardLoad]) -> usize;
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The default router: hash of the (global) workflow id. Stateless and
/// oblivious to load, so placement depends only on submission order —
/// a recovered master re-deriving routes gets identical answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter {
    /// Perturbs the hash so distinct ensembles spread differently.
    pub seed: u64,
}

impl ShardRouter for HashRouter {
    fn route(&self, _workflow: &Workflow, next_global: usize, loads: &[ShardLoad]) -> usize {
        (splitmix64(self.seed ^ next_global as u64) % loads.len() as u64) as usize
    }
}

/// Route each workflow to the shard with the fewest unsettled workflows
/// (ties broken toward the lowest shard index). Placement depends on
/// completion timing, so unlike [`HashRouter`] it is *not* reproducible
/// from submission order alone — exactly why the journal records the
/// decision instead of re-deriving it.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedRouter;

impl ShardRouter for LeastLoadedRouter {
    fn route(&self, _workflow: &Workflow, _next_global: usize, loads: &[ShardLoad]) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.live_workflows)
            .map(|(i, _)| i)
            .expect("at least one shard")
    }
}

/// N independent [`EnsembleEngine`] shards behind the [`EngineCore`]
/// facade. Construct via [`EngineConfig::build_sharded`].
pub struct ShardedEngine {
    shards: Vec<EnsembleEngine>,
    router: Box<dyn ShardRouter>,
    /// Global workflow index → (shard, shard-local id).
    assignment: Vec<(u32, WorkflowId)>,
    /// Per shard: shard-local workflow index → global id.
    globals: Vec<Vec<WorkflowId>>,
    /// Set once the merged AllCompleted/AllSettled has been emitted;
    /// cleared by new submissions, like the single engine's flag.
    terminal_emitted: bool,
    /// Reusable buffer for shard-local actions awaiting translation.
    scratch: Vec<Action>,
}

impl ShardedEngine {
    /// `shards` engines sharing `config`, routed by [`HashRouter`].
    pub fn new(config: EngineConfig, shards: usize) -> Self {
        Self::with_router(config, shards, Box::new(HashRouter::default()))
    }

    /// `shards` engines sharing `config` with a custom router.
    pub fn with_router(config: EngineConfig, shards: usize, router: Box<dyn ShardRouter>) -> Self {
        assert!(shards >= 1, "a sharded engine needs at least one shard");
        Self {
            shards: (0..shards).map(|_| config.build()).collect(),
            router,
            assignment: Vec::new(),
            globals: vec![Vec::new(); shards],
            terminal_emitted: false,
            scratch: Vec::new(),
        }
    }

    /// The shared per-shard configuration.
    pub fn config(&self) -> &EngineConfig {
        self.shards[0].config()
    }

    /// Read-only access to one shard (diagnostics, per-shard stats).
    pub fn shard(&self, shard: usize) -> &EnsembleEngine {
        &self.shards[shard]
    }

    fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|s| {
                let stats = s.stats();
                let total = s.workflow_count();
                ShardLoad {
                    total_workflows: total,
                    live_workflows: total - stats.workflows_completed - stats.workflows_abandoned,
                }
            })
            .collect()
    }

    /// Translate everything in `scratch` (local ids, shard `shard`) into
    /// `actions` (global ids), then emit the merged terminal if due.
    fn flush_scratch(&mut self, shard: usize, actions: &mut Vec<Action>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for a in scratch.drain(..) {
            if let Some(g) = globalize_action(&self.globals[shard], a) {
                actions.push(g);
            }
        }
        self.scratch = scratch;
    }

    /// Decompose into per-shard engines, router, and the id maps — the
    /// promotion path onto worker threads
    /// ([`parallel::ParallelShardedEngine::from_sharded`]): journal
    /// recovery rebuilds this sequential facade, then the threaded master
    /// takes the shards apart and hands each to its owning thread.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (Vec<EnsembleEngine>, Box<dyn ShardRouter>, Vec<(u32, WorkflowId)>, Vec<Vec<WorkflowId>>)
    {
        (self.shards, self.router, self.assignment, self.globals)
    }

    fn maybe_all_done(&mut self, actions: &mut Vec<Action>) {
        if !self.terminal_emitted && self.all_settled() {
            self.terminal_emitted = true;
            actions.push(if self.stats().workflows_abandoned == 0 {
                Action::AllCompleted
            } else {
                Action::AllSettled
            });
        }
    }
}

impl EngineCore for ShardedEngine {
    fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        let shard = EngineCore::route_next(self, &workflow);
        self.submit_workflow_to(shard, workflow, now, actions)
    }

    fn submit_workflow_to(
        &mut self,
        shard: usize,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        let global = WorkflowId::from_index(self.assignment.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        let local = self.shards[shard].submit_workflow(workflow, now, &mut scratch);
        self.scratch = scratch;
        // Record the placement before translating: the new workflow's own
        // actions (root dispatches, empty-workflow completion) need it.
        self.assignment.push((shard as u32, local));
        self.globals[shard].push(global);
        debug_assert_eq!(self.globals[shard].len(), local.index() + 1);
        self.terminal_emitted = false;
        self.flush_scratch(shard, actions);
        self.maybe_all_done(actions);
        global
    }

    fn route_next(&self, workflow: &Workflow) -> usize {
        let loads = self.loads();
        let shard = self.router.route(workflow, self.assignment.len(), &loads);
        assert!(shard < self.shards.len(), "router returned shard {shard} out of range");
        shard
    }

    fn on_ack(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>) {
        let gidx = ack.job.workflow.index();
        if gidx >= self.assignment.len() {
            debug_assert!(false, "ack for unknown workflow {:?}", ack.job.workflow);
            return;
        }
        let (shard, local) = self.assignment[gidx];
        let shard = shard as usize;
        let local_ack = AckMsg { job: EnsembleJobId::new(local, ack.job.job), ..ack };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.shards[shard].on_ack(local_ack, now, &mut scratch);
        self.scratch = scratch;
        self.flush_scratch(shard, actions);
        self.maybe_all_done(actions);
    }

    fn check_timeouts(&mut self, now: f64, actions: &mut Vec<Action>) {
        for shard in 0..self.shards.len() {
            let mut scratch = std::mem::take(&mut self.scratch);
            self.shards[shard].check_timeouts(now, &mut scratch);
            self.scratch = scratch;
            self.flush_scratch(shard, actions);
        }
        self.maybe_all_done(actions);
    }

    fn next_deadline(&mut self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for s in &mut self.shards {
            if let Some(d) = s.next_deadline() {
                best = Some(match best {
                    Some(b) => b.min(d),
                    None => d,
                });
            }
        }
        best
    }

    fn all_complete(&self) -> bool {
        self.all_settled() && self.stats().workflows_abandoned == 0
    }

    fn all_settled(&self) -> bool {
        // Empty shards don't block settlement; an engine with no
        // submissions at all is not settled (matches the single engine).
        !self.assignment.is_empty()
            && self.shards.iter().all(|s| s.workflow_count() == 0 || s.all_settled())
    }

    fn stats(&self) -> EngineStats {
        let mut merged = EngineStats::default();
        for s in &self.shards {
            merged.merge(&s.stats());
        }
        merged
    }

    fn timer_cascades(&self) -> u64 {
        self.shards.iter().map(EnsembleEngine::timer_cascades).sum()
    }

    fn job_state(&self, job: EnsembleJobId) -> Option<JobState> {
        let &(shard, local) = self.assignment.get(job.workflow.index())?;
        self.shards[shard as usize].job_state(EnsembleJobId::new(local, job.job))
    }

    fn workflow(&self, id: WorkflowId) -> &Arc<Workflow> {
        let (shard, local) = self.assignment[id.index()];
        self.shards[shard as usize].workflow(local)
    }

    fn workflow_count(&self) -> usize {
        self.assignment.len()
    }

    fn inflight_dispatches(&self, out: &mut Vec<DispatchMsg>) {
        let mut local = Vec::new();
        for (shard, s) in self.shards.iter().enumerate() {
            local.clear();
            s.inflight_dispatches(&mut local);
            for d in &local {
                out.push(DispatchMsg {
                    job: EnsembleJobId::new(self.globals[shard][d.job.workflow.index()], d.job.job),
                    attempt: d.attempt,
                });
            }
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: WorkflowId) -> usize {
        self.assignment[id.index()].0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AckKind;
    use dewe_dag::WorkflowBuilder;

    fn chain(n: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("j{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    fn dispatches(actions: &[Action]) -> Vec<DispatchMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    fn done_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Completed, attempt }
    }

    #[test]
    fn global_ids_are_dense_and_actions_translated() {
        let mut e = EngineConfig::default().build_sharded(4);
        let mut actions = Vec::new();
        for i in 0..8 {
            let id = e.submit_workflow(chain(1), f64::from(i), &mut actions);
            assert_eq!(id.index(), i as usize, "global ids dense in submission order");
        }
        let d = dispatches(&actions);
        assert_eq!(d.len(), 8);
        // Every dispatch carries the global workflow id of its submission.
        let mut seen: Vec<usize> = d.iter().map(|m| m.job.workflow.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        // Placement is consistent between shard_of and the assignment.
        for m in &d {
            assert!(e.shard_of(m.job.workflow) < 4);
        }
        assert_eq!(e.workflow_count(), 8);
        assert_eq!(e.stats().workflows_submitted, 8);
    }

    #[test]
    fn completing_every_job_emits_one_merged_terminal() {
        let mut e = EngineConfig::default().build_sharded(3);
        let mut actions = Vec::new();
        for i in 0..6 {
            e.submit_workflow(chain(1), f64::from(i), &mut actions);
        }
        let d = dispatches(&actions);
        let mut terminals = 0;
        for m in &d {
            let mut out = Vec::new();
            e.on_ack(done_ack(m.job, m.attempt), 10.0, &mut out);
            terminals += out
                .iter()
                .filter(|a| matches!(a, Action::AllCompleted | Action::AllSettled))
                .count();
        }
        assert_eq!(terminals, 1, "exactly one merged terminal");
        assert!(e.all_complete());
        let s = e.stats();
        assert_eq!(s.workflows_completed, 6);
        assert_eq!(s.jobs_completed, 6);
        assert_eq!(s.dispatches, 6);
    }

    #[test]
    fn route_next_matches_subsequent_submission() {
        let mut e = EngineConfig::default().build_sharded(4);
        let mut actions = Vec::new();
        for i in 0..16 {
            let wf = chain(1);
            let predicted = e.route_next(&wf);
            let id = e.submit_workflow(wf, f64::from(i), &mut actions);
            assert_eq!(e.shard_of(id), predicted, "route preview is binding");
        }
    }

    #[test]
    fn forced_placement_overrides_the_router() {
        let mut e = EngineConfig::default().build_sharded(4);
        let mut actions = Vec::new();
        for i in 0..8 {
            let id = e.submit_workflow_to(2, chain(1), f64::from(i), &mut actions);
            assert_eq!(e.shard_of(id), 2);
        }
        assert_eq!(e.shard(2).workflow_count(), 8);
        assert_eq!(e.shard(0).workflow_count(), 0);
    }

    #[test]
    fn least_loaded_router_balances() {
        let mut e = EngineConfig::default().build_sharded_with(4, Box::new(LeastLoadedRouter));
        let mut actions = Vec::new();
        for i in 0..8 {
            e.submit_workflow(chain(2), f64::from(i), &mut actions);
        }
        // Nothing completes, so least-loaded degenerates to round-robin.
        for shard in 0..4 {
            assert_eq!(e.shard(shard).workflow_count(), 2, "shard {shard} balanced");
        }
    }

    #[test]
    fn merged_next_deadline_is_min_over_shards() {
        let mut e = EngineConfig::default().timeout(100.0).build_sharded(2);
        let mut actions = Vec::new();
        let a = e.submit_workflow_to(0, chain(1), 0.0, &mut actions);
        let b = e.submit_workflow_to(1, chain(1), 0.0, &mut actions);
        assert_eq!(e.next_deadline(), None);
        let run = |wf: WorkflowId| AckMsg {
            job: EnsembleJobId::new(wf, dewe_dag::JobId(0)),
            worker: 0,
            kind: AckKind::Running,
            attempt: 1,
        };
        let mut out = Vec::new();
        e.on_ack(run(a), 30.0, &mut out); // shard 0 deadline 130
        e.on_ack(run(b), 10.0, &mut out); // shard 1 deadline 110
        assert_eq!(e.next_deadline(), Some(110.0));
    }

    #[test]
    fn timeout_scan_covers_every_shard() {
        let mut e = EngineConfig::default().timeout(10.0).build_sharded(2);
        let mut actions = Vec::new();
        let a = e.submit_workflow_to(0, chain(1), 0.0, &mut actions);
        let b = e.submit_workflow_to(1, chain(1), 0.0, &mut actions);
        let mut out = Vec::new();
        for wf in [a, b] {
            e.on_ack(
                AckMsg {
                    job: EnsembleJobId::new(wf, dewe_dag::JobId(0)),
                    worker: 0,
                    kind: AckKind::Running,
                    attempt: 1,
                },
                0.0,
                &mut out,
            );
        }
        out.clear();
        e.check_timeouts(10.0, &mut out);
        let rd = dispatches(&out);
        assert_eq!(rd.len(), 2, "both shards resubmitted");
        assert_eq!(e.stats().resubmissions, 2);
        // Resubmissions carry global ids.
        let mut wfs: Vec<usize> = rd.iter().map(|m| m.job.workflow.index()).collect();
        wfs.sort_unstable();
        assert_eq!(wfs, vec![0, 1]);
    }

    #[test]
    fn abandoned_shard_yields_merged_all_settled() {
        let retry = crate::RetryPolicy { max_attempts: Some(1), ..crate::RetryPolicy::default() };
        let mut e = EngineConfig::default().retry(retry).build_sharded(2);
        let mut actions = Vec::new();
        let bad = e.submit_workflow_to(0, chain(1), 0.0, &mut actions);
        let good = e.submit_workflow_to(1, chain(1), 0.0, &mut actions);
        let mut out = Vec::new();
        e.on_ack(
            AckMsg {
                job: EnsembleJobId::new(bad, dewe_dag::JobId(0)),
                worker: 0,
                kind: AckKind::Failed,
                attempt: 1,
            },
            1.0,
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            Action::JobDeadLettered { job, .. } if job.workflow == bad
        )));
        assert!(!out.iter().any(|a| matches!(a, Action::AllSettled)), "other shard still live");
        out.clear();
        e.on_ack(done_ack(EnsembleJobId::new(good, dewe_dag::JobId(0)), 1), 2.0, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::AllSettled)));
        assert!(e.all_settled() && !e.all_complete());
        let s = e.stats();
        assert_eq!(s.workflows_abandoned, 1);
        assert_eq!(s.workflows_completed, 1);
        assert_eq!(s.dead_lettered, 1);
    }

    #[test]
    fn empty_shards_do_not_block_settlement() {
        // 8 shards, 1 workflow: seven shards stay empty forever.
        let mut e = EngineConfig::default().build_sharded(8);
        let mut actions = Vec::new();
        let id = e.submit_workflow(chain(1), 0.0, &mut actions);
        let mut out = Vec::new();
        e.on_ack(done_ack(EnsembleJobId::new(id, dewe_dag::JobId(0)), 1), 1.0, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert!(e.all_complete());
    }

    #[test]
    fn new_submission_rearms_the_terminal() {
        let mut e = EngineConfig::default().build_sharded(2);
        let mut actions = Vec::new();
        let a = e.submit_workflow(chain(1), 0.0, &mut actions);
        let mut out = Vec::new();
        e.on_ack(done_ack(EnsembleJobId::new(a, dewe_dag::JobId(0)), 1), 1.0, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::AllCompleted)));
        // A second wave must emit its own terminal when it finishes.
        actions.clear();
        let b = e.submit_workflow(chain(1), 2.0, &mut actions);
        assert!(!e.all_settled());
        out.clear();
        e.on_ack(done_ack(EnsembleJobId::new(b, dewe_dag::JobId(0)), 1), 3.0, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert_eq!(e.stats().workflows_completed, 2);
    }
}
