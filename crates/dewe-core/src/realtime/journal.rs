//! Write-ahead journal of master engine inputs, and recovery from it.
//!
//! The paper's master daemon is a single point of failure: its DAG state
//! lives in memory, so a crash strands the whole ensemble. This module
//! makes the master recoverable by journaling every *input* the sans-IO
//! [`EnsembleEngine`] consumes — workflow submissions, acknowledgments,
//! and effective timeout scans — rather than snapshotting its state. The
//! engine is deterministic, so replaying the inputs rebuilds the tracker,
//! in-flight slab and deadline heap exactly.
//!
//! ## Format
//!
//! Append-only ASCII lines, one record each, made durable per record or
//! in batches depending on the writer's [`JournalCommitPolicy`]:
//!
//! ```text
//! S <registry_index> <time_bits> <shard>
//! A <workflow> <job> <worker> <kind_code> <attempt> <time_bits>
//! T <time_bits>
//! W <worker> <generation> <phase_code> <time_bits>
//! ```
//!
//! Times are `f64::to_bits` in hex — exact round-trips, no decimal
//! parsing ambiguity. Workflow DAGs are *not* serialized: a submission
//! record stores the workflow's [`Registry`] index, and recovery
//! re-fetches the DAG from the registry (the paper keeps workflow data on
//! the shared file system for the same reason). A truncated final line —
//! the crash happened mid-write — is silently discarded.
//!
//! The submission record's trailing `<shard>` is the routing decision a
//! sharded master made (always `0` for a single engine). It is journaled
//! *before* the submission takes effect so [`recover_sharded`] can force
//! the identical placement via [`EngineCore::submit_workflow_to`] —
//! required because routers like
//! [`LeastLoadedRouter`](crate::LeastLoadedRouter) depend on completion
//! timing and cannot be re-derived from submission order. Journals
//! written before sharding existed lack the field; it parses as shard 0.
//! Workflow ids are global and dense in submission order in both engine
//! shapes, so a sharded journal also replays into a single engine (the
//! shard field is then ignored).
//!
//! ## Recovery invariants
//!
//! * Replay feeds records through the same engine entry points the live
//!   master uses, so recovered state is bit-identical to pre-crash state.
//! * The recovered clock resumes from the last journaled time; wall time
//!   restarts but engine time never runs backwards.
//! * Jobs in flight at the crash may exist in the (unknown) queue state;
//!   the recovered master republishes them. Workers may therefore run a
//!   job twice — duplicate-completion noise, the same race the timeout
//!   mechanism already tolerates.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dewe_dag::{EnsembleJobId, JobId, JobState, WorkflowId};

use super::bus::Registry;
use super::liveness::{LivenessTable, WorkerPhase};
use crate::engine::{Action, EngineConfig, EngineCore, EnsembleEngine};
use crate::protocol::{AckKind, AckMsg, DispatchMsg};
use crate::sharded::ShardedEngine;

/// One journaled engine input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// A workflow was submitted (stored by registry index).
    Submit {
        /// Registry index of the workflow (equals its global engine id).
        workflow: u32,
        /// Engine time of the submission.
        at: f64,
        /// Shard the master routed it to (0 for a single engine).
        shard: u32,
    },
    /// A worker acknowledgment was processed.
    Ack {
        /// The acknowledgment.
        ack: AckMsg,
        /// Engine time it was processed.
        at: f64,
    },
    /// A timeout scan that changed engine state ran.
    Scan {
        /// Engine time of the scan.
        at: f64,
    },
    /// A worker lifecycle transition (liveness plane). Commits
    /// immediately under either policy, like submissions: the liveness
    /// table rebuilt on recovery must match the pre-crash one exactly,
    /// and lifecycle transitions are far too rare to batch.
    Worker {
        /// Worker id.
        worker: u32,
        /// Incarnation of the worker.
        generation: u32,
        /// Phase the worker entered.
        phase: WorkerPhase,
        /// Engine time of the transition.
        at: f64,
    },
}

impl JournalRecord {
    /// Engine time of this record.
    pub fn at(&self) -> f64 {
        match *self {
            JournalRecord::Submit { at, .. }
            | JournalRecord::Ack { at, .. }
            | JournalRecord::Scan { at }
            | JournalRecord::Worker { at, .. } => at,
        }
    }
}

/// When journal records become durable (reach the OS).
///
/// * [`PerRecord`](Self::PerRecord) — every record is flushed before the
///   write call returns; a crash loses at most the record being written.
///   The default, and the only behavior before 0.7.0.
/// * [`GroupCommit`](Self::GroupCommit) — records accumulate in the
///   writer's buffer and are flushed once `max_records` have piled up or
///   the master calls [`Journal::commit`] (once per poll cycle). A crash
///   can lose up to the last uncommitted window of **ack and scan**
///   records; recovery stays correct because any journaled prefix is a
///   valid engine history — a lost Completed ack replays as a job still
///   in flight, which the recovered master republishes and the timeout
///   machinery finishes, at worst as duplicate-completion noise the
///   engine already tolerates. **Submissions are exempt**: they commit
///   immediately under either policy, because replay validates dense
///   submission order — an ack referencing a never-journaled workflow
///   would corrupt recovery rather than merely repeat work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalCommitPolicy {
    /// Flush every record before its write returns.
    #[default]
    PerRecord,
    /// Flush after `max_records` buffered records or an explicit
    /// [`Journal::commit`], whichever comes first.
    GroupCommit {
        /// Buffered-record ceiling that forces a flush.
        max_records: usize,
    },
}

/// Append-only journal writer; records become durable according to the
/// writer's [`JournalCommitPolicy`] (default: flushed per record).
pub struct Journal {
    out: BufWriter<File>,
    path: PathBuf,
    /// Records in the file (written by us plus any noted pre-existing
    /// ones), used to trigger compaction.
    records: usize,
    /// Record count right after the last compaction (0 = never) — the
    /// WAL must double past this before compacting again, so a journal
    /// full of live workflows doesn't re-compact on every record.
    floor: usize,
    policy: JournalCommitPolicy,
    /// Records written since the last flush.
    pending: usize,
}

fn format_record(rec: &JournalRecord) -> String {
    match *rec {
        JournalRecord::Submit { workflow, at, shard } => {
            format!("S {workflow} {:x} {shard}", at.to_bits())
        }
        JournalRecord::Ack { ack, at } => format!(
            "A {} {} {} {} {} {:x}",
            ack.job.workflow.0,
            ack.job.job.0,
            ack.worker,
            ack.kind.code(),
            ack.attempt,
            at.to_bits()
        ),
        JournalRecord::Scan { at } => format!("T {:x}", at.to_bits()),
        JournalRecord::Worker { worker, generation, phase, at } => {
            format!("W {worker} {generation} {} {:x}", phase.code(), at.to_bits())
        }
    }
}

impl Journal {
    /// Start a fresh journal, truncating any existing file.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            path: path.to_path_buf(),
            records: 0,
            floor: 0,
            policy: JournalCommitPolicy::default(),
            pending: 0,
        })
    }

    /// Open an existing journal for appending (recovery resume). The
    /// record count starts at zero; a recovering master that has already
    /// read the file should call [`Self::note_existing`] so compaction
    /// triggers account for the replayed prefix.
    pub fn append(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?),
            path: path.to_path_buf(),
            records: 0,
            floor: 0,
            policy: JournalCommitPolicy::default(),
            pending: 0,
        })
    }

    /// Set the commit policy (builder style, on a fresh writer).
    #[must_use]
    pub fn with_policy(mut self, policy: JournalCommitPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The writer's commit policy.
    pub fn policy(&self) -> JournalCommitPolicy {
        self.policy
    }

    /// Inform the writer of records already present in the file (after
    /// [`Self::append`] on recovery).
    pub fn note_existing(&mut self, records: usize) {
        self.records += records;
    }

    /// Records known to be in the file.
    pub fn record_count(&self) -> usize {
        self.records
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        self.pending += 1;
        match self.policy {
            JournalCommitPolicy::PerRecord => self.commit(),
            JournalCommitPolicy::GroupCommit { max_records } if self.pending >= max_records => {
                self.commit()
            }
            JournalCommitPolicy::GroupCommit { .. } => Ok(()),
        }
    }

    /// Flush any buffered records to the OS. The group-commit point: the
    /// master calls this once per poll cycle; under
    /// [`JournalCommitPolicy::PerRecord`] it is a no-op because nothing is
    /// ever left buffered.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.pending = 0;
            self.out.flush()?;
        }
        Ok(())
    }

    /// Journal a workflow submission, including the shard it was routed
    /// to (0 for a single engine). Submissions commit immediately
    /// regardless of policy — replay validates dense submission order, so
    /// a lost submit record would invalidate everything after it (see
    /// [`JournalCommitPolicy`]).
    pub fn record_submit(&mut self, workflow: WorkflowId, shard: usize, at: f64) -> io::Result<()> {
        self.write_line(&format!("S {} {:x} {shard}", workflow.0, at.to_bits()))?;
        self.commit()
    }

    /// Journal a worker acknowledgment.
    pub fn record_ack(&mut self, ack: &AckMsg, at: f64) -> io::Result<()> {
        self.write_line(&format_record(&JournalRecord::Ack { ack: *ack, at }))
    }

    /// Journal an effective timeout scan (one that changed engine state).
    pub fn record_scan(&mut self, at: f64) -> io::Result<()> {
        self.write_line(&format!("T {:x}", at.to_bits()))
    }

    /// Journal a worker lifecycle transition. Commits immediately
    /// regardless of policy — recovery must rebuild the liveness table
    /// exactly, and transitions are rare (see [`JournalRecord::Worker`]).
    pub fn record_worker(
        &mut self,
        worker: u32,
        generation: u32,
        phase: WorkerPhase,
        at: f64,
    ) -> io::Result<()> {
        self.write_line(&format_record(&JournalRecord::Worker { worker, generation, phase, at }))?;
        self.commit()
    }

    /// Compact the journal in place once it holds at least `threshold`
    /// records (and has doubled since the last compaction): the file is
    /// rewritten as the synthetic prefix produced by [`compact_records`]
    /// and the writer reopened on it. Returns `true` if a rewrite
    /// happened.
    ///
    /// The rewrite goes through a temp file + rename, so a crash during
    /// compaction leaves either the old or the new journal intact.
    pub fn maybe_compact(
        &mut self,
        registry: &Registry,
        config: EngineConfig,
        threshold: usize,
    ) -> io::Result<bool> {
        if self.records < threshold.max(2 * self.floor) {
            return Ok(false);
        }
        // Compaction reads the file from disk: anything still sitting in
        // the group-commit buffer must land first or the rewrite loses it.
        self.commit()?;
        let records = read_journal(&self.path)?;
        let compacted = compact_records(&records, registry, config)?;
        let tmp = self.path.with_extension("compact-tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            for rec in &compacted {
                out.write_all(format_record(rec).as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.out = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.records = compacted.len();
        self.floor = compacted.len();
        Ok(true)
    }
}

impl Drop for Journal {
    /// A clean shutdown (as opposed to a crash) must not lose the
    /// group-commit window: flush explicitly rather than relying on
    /// `BufWriter`'s silent best-effort drop flush, so the `pending`
    /// accounting stays truthful for any code observing the writer
    /// mid-teardown. Errors are swallowed — there is no one to report
    /// them to in drop, and the records were already at crash-loss risk.
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

/// Rewrite a journal's records as a **synthetic prefix** in which every
/// completed workflow is elided down to its submission plus one
/// `Completed` ack per job (its *effective* completion, in the original
/// completion order, re-timed to the submission instant), while live and
/// abandoned workflows keep their full input history. Timeout scans that
/// no longer change any state in the compacted stream are dropped.
///
/// Replaying the result rebuilds **identical live state**: tracker,
/// in-flight attempts, and armed deadlines of every non-completed
/// workflow match a replay of the original records, as do
/// `workflows_submitted` / `workflows_completed` / `workflows_abandoned`
/// / `jobs_completed`. Two things are knowingly given up for completed
/// workflows — they are gone, so nothing downstream reads them:
///
/// * diagnostics counters (`dispatches`, `resubmissions`,
///   `duplicate_completions`, `deferred_retries`) reflect the synthetic
///   one-attempt history rather than the real one, and
/// * the resume clock rewinds to the newest *kept* record, which is safe
///   because every kept input is at or before it.
///
/// All submission records are kept (in order, with their journaled
/// shard), so global workflow ids stay dense and sharded placement
/// survives.
pub fn compact_records(
    records: &[JournalRecord],
    registry: &Registry,
    config: EngineConfig,
) -> io::Result<Vec<JournalRecord>> {
    let fetch = |workflow: u32| {
        registry.get(WorkflowId(workflow)).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal references workflow {workflow} absent from registry"),
            )
        })
    };

    // Pass 1: replay everything (a single engine accepts sharded journals
    // — ids are global either way) to learn which workflows completed and
    // which ack actually completed each of their jobs.
    let mut engine = config.build();
    let mut sink: Vec<Action> = Vec::new();
    let mut completed: BTreeSet<u32> = BTreeSet::new();
    let mut completions: BTreeMap<u32, Vec<AckMsg>> = BTreeMap::new();
    for rec in records {
        match *rec {
            JournalRecord::Submit { workflow, at, .. } => {
                engine.submit_workflow(fetch(workflow)?, at, &mut sink);
            }
            JournalRecord::Ack { ack, at } => {
                let before = engine.job_state(ack.job);
                engine.on_ack(ack, at, &mut sink);
                if ack.kind == AckKind::Completed
                    && before != Some(JobState::Completed)
                    && engine.job_state(ack.job) == Some(JobState::Completed)
                {
                    completions.entry(ack.job.workflow.0).or_default().push(ack);
                }
            }
            JournalRecord::Scan { at } => engine.check_timeouts(at, &mut sink),
            JournalRecord::Worker { .. } => {}
        }
        for action in &sink {
            if let Action::WorkflowCompleted { workflow, .. } = action {
                completed.insert(workflow.0);
            }
        }
        sink.clear();
    }

    // Pass 2: candidate stream — submissions keep their place; a
    // completed workflow's effective completions follow its submission
    // immediately, re-timed to the submission instant (the whole workflow
    // replays in one step, leaving no deadline armed for a later scan to
    // misfire on); everything else of a completed workflow is dropped.
    let mut candidate: Vec<JournalRecord> = Vec::with_capacity(records.len());
    for rec in records {
        match *rec {
            JournalRecord::Submit { workflow, at, .. } => {
                candidate.push(*rec);
                if completed.contains(&workflow) {
                    for &ack in completions.get(&workflow).into_iter().flatten() {
                        candidate.push(JournalRecord::Ack { ack, at });
                    }
                }
            }
            JournalRecord::Ack { ack, .. } => {
                if !completed.contains(&ack.job.workflow.0) {
                    candidate.push(*rec);
                }
            }
            JournalRecord::Scan { .. } => candidate.push(*rec),
            // Lifecycle history is kept verbatim: transitions are rare,
            // and the replayed liveness table (generations, phases,
            // expiry counters) must survive compaction unchanged.
            JournalRecord::Worker { .. } => candidate.push(*rec),
        }
    }

    // Pass 3: replay the candidate, keeping only scans that still change
    // state (any state change emits at least one action). Live-workflow
    // deadline state is untouched by the elisions, so a scan's effect on
    // live workflows is the same here as in the original stream.
    let mut engine = config.build();
    let mut out: Vec<JournalRecord> = Vec::with_capacity(candidate.len());
    for rec in candidate {
        match rec {
            JournalRecord::Submit { workflow, at, .. } => {
                engine.submit_workflow(fetch(workflow)?, at, &mut sink);
                out.push(rec);
            }
            JournalRecord::Ack { ack, at } => {
                engine.on_ack(ack, at, &mut sink);
                out.push(rec);
            }
            JournalRecord::Scan { at } => {
                engine.check_timeouts(at, &mut sink);
                if !sink.is_empty() {
                    out.push(rec);
                }
            }
            JournalRecord::Worker { .. } => out.push(rec),
        }
        sink.clear();
    }
    Ok(out)
}

fn parse_time(tok: &str) -> Option<f64> {
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

fn parse_record(line: &str) -> Option<JournalRecord> {
    let mut t = line.split_ascii_whitespace();
    match t.next()? {
        "S" => {
            let workflow = t.next()?.parse().ok()?;
            let at = parse_time(t.next()?)?;
            // Pre-sharding journals end the record here; missing = shard 0.
            let shard = match t.next() {
                Some(tok) => tok.parse().ok()?,
                None => 0,
            };
            Some(JournalRecord::Submit { workflow, at, shard })
        }
        "A" => {
            let wf: u32 = t.next()?.parse().ok()?;
            let job: u32 = t.next()?.parse().ok()?;
            let worker = t.next()?.parse().ok()?;
            let kind = AckKind::from_code(t.next()?.parse().ok()?)?;
            let attempt = t.next()?.parse().ok()?;
            let at = parse_time(t.next()?)?;
            Some(JournalRecord::Ack {
                ack: AckMsg {
                    job: EnsembleJobId::new(WorkflowId(wf), JobId(job)),
                    worker,
                    kind,
                    attempt,
                },
                at,
            })
        }
        "T" => Some(JournalRecord::Scan { at: parse_time(t.next()?)? }),
        "W" => {
            let worker = t.next()?.parse().ok()?;
            let generation = t.next()?.parse().ok()?;
            let phase = WorkerPhase::from_code(t.next()?.parse().ok()?)?;
            let at = parse_time(t.next()?)?;
            Some(JournalRecord::Worker { worker, generation, phase, at })
        }
        _ => None,
    }
}

/// Read every intact record from a journal file. A malformed *final* line
/// (torn write at crash time) is discarded; a malformed line in the middle
/// is corruption and returns an error.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut pending_bad: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if let Some(bad) = pending_bad {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt journal record at line {}", bad + 1),
            ));
        }
        match parse_record(&line) {
            Some(r) => records.push(r),
            None => pending_bad = Some(idx), // tolerated only as the tail
        }
    }
    Ok(records)
}

/// Outcome of a journal replay: the rebuilt engine plus what the restarted
/// master must do next.
pub struct Recovery<E = EnsembleEngine> {
    /// Engine with tracker / in-flight / deadline state rebuilt.
    pub engine: E,
    /// The last journaled engine time — the recovered clock resumes here.
    pub resume_at: f64,
    /// In-flight attempts to republish (pre-crash queue state is unknown).
    pub redispatch: Vec<DispatchMsg>,
}

/// Replay records into any engine. With `forced_placement` submissions go
/// through [`EngineCore::submit_workflow_to`] using the journaled shard;
/// otherwise the shard field is ignored (a single engine has no
/// placement, and global ids are dense either way).
fn replay_records<E: EngineCore>(
    records: &[JournalRecord],
    registry: &Registry,
    mut engine: E,
    forced_placement: bool,
) -> io::Result<Recovery<E>> {
    let mut sink: Vec<Action> = Vec::new();
    let mut resume_at = 0.0f64;
    for rec in records {
        resume_at = resume_at.max(rec.at());
        match *rec {
            JournalRecord::Submit { workflow, at, shard } => {
                let wf = registry.get(WorkflowId(workflow)).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal references workflow {workflow} absent from registry"),
                    )
                })?;
                let id = if forced_placement {
                    if shard as usize >= engine.shard_count() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "journal places workflow {workflow} on shard {shard}, \
                                 but the engine has {} shards",
                                engine.shard_count()
                            ),
                        ));
                    }
                    engine.submit_workflow_to(shard as usize, Arc::clone(&wf), at, &mut sink)
                } else {
                    engine.submit_workflow(Arc::clone(&wf), at, &mut sink)
                };
                if id.0 != workflow {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal submission order mismatch: got {id:?}, want {workflow}"),
                    ));
                }
                sink.clear();
            }
            JournalRecord::Ack { ack, at } => {
                engine.on_ack(ack, at, &mut sink);
                sink.clear();
            }
            JournalRecord::Scan { at } => {
                engine.check_timeouts(at, &mut sink);
                sink.clear();
            }
            // Lifecycle records are liveness-table inputs, not engine
            // inputs: [`replay_liveness`] consumes them.
            JournalRecord::Worker { .. } => {}
        }
    }
    let mut redispatch = Vec::new();
    engine.inflight_dispatches(&mut redispatch);
    Ok(Recovery { engine, resume_at, redispatch })
}

/// Rebuild the master's [`LivenessTable`] by replaying journal records:
/// `W` records apply their journaled transitions, ack records replay the
/// same assignment/lease bookkeeping the live master performed. The
/// result matches the pre-crash table exactly — `W` records commit
/// immediately, rejected acks were never journaled, and the master
/// applies transitions within the same poll cycle that journals them
/// (the `stale_acks_rejected` counter alone does not survive, since its
/// inputs were dropped before journaling by design).
///
/// The recovering master should follow up with
/// [`LivenessTable::grant_grace`] at the resume clock so surviving
/// workers get a fresh lease — and workers that never come back are
/// expired with a structured warning instead of being waited on forever.
pub fn replay_liveness(records: &[JournalRecord], lease_secs: f64) -> LivenessTable {
    let mut table = LivenessTable::new(lease_secs);
    let mut transitions = Vec::new();
    for rec in records {
        match *rec {
            JournalRecord::Worker { worker, generation, phase, at } => {
                table.apply_transition(worker, generation, phase, at);
            }
            JournalRecord::Ack { ack, at } => {
                table.admit_ack(&ack, at, &mut transitions);
                transitions.clear();
            }
            JournalRecord::Submit { .. } | JournalRecord::Scan { .. } => {}
        }
    }
    table
}

/// Rebuild a single engine by replaying journal records. Workflows are
/// fetched from `registry` by their journaled index; replay actions are
/// discarded (their dispatches either already happened or are covered by
/// `redispatch`).
pub fn recover(
    records: &[JournalRecord],
    registry: &Registry,
    config: EngineConfig,
) -> io::Result<Recovery> {
    replay_records(records, registry, config.build(), false)
}

/// Rebuild a [`ShardedEngine`] by replaying journal records, forcing each
/// workflow onto its journaled shard so post-recovery placement (and
/// therefore per-shard worker fan-out) matches the pre-crash master
/// regardless of the router.
pub fn recover_sharded(
    records: &[JournalRecord],
    registry: &Registry,
    config: EngineConfig,
    shards: usize,
) -> io::Result<Recovery<ShardedEngine>> {
    replay_records(records, registry, config.build_sharded(shards), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DispatchMsg;
    use dewe_dag::WorkflowBuilder;
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dewe-journal-{}-{}", std::process::id(), name));
        p
    }

    fn chain(n: usize) -> Arc<dewe_dag::Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("j{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn records_round_trip_exactly() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        let ack = AckMsg {
            job: EnsembleJobId::new(WorkflowId(3), JobId(17)),
            worker: 9,
            kind: AckKind::Completed,
            attempt: 4,
        };
        j.record_submit(WorkflowId(0), 3, 0.125).unwrap();
        j.record_ack(&ack, 1.0000000001).unwrap();
        j.record_scan(2.5).unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(
            recs,
            vec![
                JournalRecord::Submit { workflow: 0, at: 0.125, shard: 3 },
                JournalRecord::Ack { ack, at: 1.0000000001 },
                JournalRecord::Scan { at: 2.5 },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_buffers_until_commit_or_max_records() {
        let path = tmp("group-commit");
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 3 });
        let ack = |attempt| AckMsg {
            job: EnsembleJobId::new(WorkflowId(0), JobId(0)),
            worker: 0,
            kind: AckKind::Running,
            attempt,
        };
        j.record_ack(&ack(1), 1.0).unwrap();
        j.record_ack(&ack(2), 2.0).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 0, "two acks still buffered");
        j.commit().unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 2, "commit flushes the window");
        // Hitting max_records flushes without an explicit commit.
        j.record_ack(&ack(3), 3.0).unwrap();
        j.record_ack(&ack(4), 4.0).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 2);
        j.record_ack(&ack(5), 5.0).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 5, "3rd buffered record forces a flush");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submissions_commit_immediately_under_group_commit() {
        let path = tmp("group-commit-submit");
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        j.record_submit(WorkflowId(0), 0, 0.0).unwrap();
        assert_eq!(
            read_journal(&path).unwrap(),
            vec![JournalRecord::Submit { workflow: 0, at: 0.0, shard: 0 }],
            "a submit record must never sit in the group-commit buffer"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropping_the_writer_flushes_buffered_records() {
        // A clean shutdown (as opposed to a crash) loses nothing: the
        // BufWriter flushes on drop under either policy.
        let path = tmp("group-commit-drop");
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        j.record_scan(1.0).unwrap();
        j.record_scan(2.0).unwrap();
        drop(j);
        assert_eq!(read_journal(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_commits_buffered_records_first() {
        let path = tmp("group-commit-compact");
        let (registry, config, records) = noisy_history();
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        for rec in &records {
            match *rec {
                JournalRecord::Submit { workflow, at, shard } => {
                    j.record_submit(WorkflowId(workflow), shard as usize, at).unwrap()
                }
                JournalRecord::Ack { ack, at } => j.record_ack(&ack, at).unwrap(),
                JournalRecord::Scan { at } => j.record_scan(at).unwrap(),
                JournalRecord::Worker { worker, generation, phase, at } => {
                    j.record_worker(worker, generation, phase, at).unwrap()
                }
            }
        }
        // The tail of the history (acks + scan after the last submit) is
        // still buffered; compaction must not lose it.
        assert!(j.maybe_compact(&registry, config, 8).unwrap());
        drop(j);
        let lean = recover(&read_journal(&path).unwrap(), &registry, config).unwrap();
        let full = recover(&records, &registry, config).unwrap();
        assert_eq!(lean.engine.stats().workflows_completed, 1);
        assert_eq!(full.redispatch, lean.redispatch, "buffered tail survived compaction");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worker_records_round_trip_exactly() {
        let path = tmp("worker-rec");
        let mut j = Journal::create(&path).unwrap();
        j.record_worker(3, 1, WorkerPhase::Live, 0.5).unwrap();
        j.record_worker(3, 1, WorkerPhase::Expired, 2.5).unwrap();
        drop(j);
        assert_eq!(
            read_journal(&path).unwrap(),
            vec![
                JournalRecord::Worker {
                    worker: 3,
                    generation: 1,
                    phase: WorkerPhase::Live,
                    at: 0.5
                },
                JournalRecord::Worker {
                    worker: 3,
                    generation: 1,
                    phase: WorkerPhase::Expired,
                    at: 2.5
                },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worker_records_commit_immediately_under_group_commit() {
        let path = tmp("worker-rec-commit");
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        j.record_worker(1, 0, WorkerPhase::Live, 0.0).unwrap();
        assert_eq!(
            read_journal(&path).unwrap().len(),
            1,
            "a lifecycle record must never sit in the group-commit buffer"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_mid_window_then_reopen_loses_nothing() {
        // A clean shutdown mid-group-commit-window must flush the tail
        // explicitly (Journal's Drop impl), and a writer reopened on the
        // file must append after it without gaps.
        let path = tmp("drop-reopen");
        let mut j = Journal::create(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        let ack = |attempt| AckMsg {
            job: EnsembleJobId::new(WorkflowId(0), JobId(0)),
            worker: 0,
            kind: AckKind::Running,
            attempt,
        };
        j.record_submit(WorkflowId(0), 0, 0.0).unwrap();
        j.record_ack(&ack(1), 1.0).unwrap();
        j.record_ack(&ack(2), 2.0).unwrap(); // both acks still buffered
        drop(j); // clean shutdown mid-window
        assert_eq!(read_journal(&path).unwrap().len(), 3, "drop flushed the window");

        let mut j = Journal::append(&path)
            .unwrap()
            .with_policy(JournalCommitPolicy::GroupCommit { max_records: 1000 });
        j.note_existing(3);
        j.record_ack(&ack(3), 3.0).unwrap();
        drop(j);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[3], JournalRecord::Ack { ack: ack(3), at: 3.0 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_liveness_rebuilds_the_pre_crash_table() {
        use crate::realtime::liveness::REQUEUE_WORKER;
        // The journaled history of a worker that registered, checked a
        // job out, expired, and had the job requeued.
        let job = EnsembleJobId::new(WorkflowId(0), JobId(0));
        let records = vec![
            JournalRecord::Worker { worker: 4, generation: 0, phase: WorkerPhase::Live, at: 0.0 },
            JournalRecord::Ack {
                ack: AckMsg { job, worker: 4, kind: AckKind::Running, attempt: 1 },
                at: 0.5,
            },
            JournalRecord::Worker {
                worker: 4,
                generation: 0,
                phase: WorkerPhase::Expired,
                at: 2.0,
            },
            JournalRecord::Ack {
                ack: AckMsg { job, worker: REQUEUE_WORKER, kind: AckKind::Failed, attempt: 1 },
                at: 2.0,
            },
        ];
        let table = replay_liveness(&records, 1.0);
        let snap = table.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!((snap[0].worker, snap[0].phase), (4, WorkerPhase::Expired));
        assert_eq!(table.stats().workers_expired, 1);
        assert_eq!(table.stats().jobs_requeued_on_expiry, 1);
        assert_eq!(table.assignment_count(), 0);
    }

    #[test]
    fn compaction_keeps_lifecycle_records() {
        let (registry, config, mut records) = noisy_history();
        records.insert(
            0,
            JournalRecord::Worker { worker: 0, generation: 0, phase: WorkerPhase::Live, at: 0.0 },
        );
        records.push(JournalRecord::Worker {
            worker: 0,
            generation: 0,
            phase: WorkerPhase::Expired,
            at: 13.0,
        });
        let compacted = compact_records(&records, &registry, config).unwrap();
        let kept: Vec<_> =
            compacted.iter().filter(|r| matches!(r, JournalRecord::Worker { .. })).collect();
        assert_eq!(kept.len(), 2, "lifecycle history survives compaction verbatim");
    }

    #[test]
    fn pre_sharding_submit_record_parses_as_shard_zero() {
        let path = tmp("legacy");
        std::fs::write(&path, "S 4 3ff0000000000000\n").unwrap();
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs, vec![JournalRecord::Submit { workflow: 4, at: 1.0, shard: 0 }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_line_is_discarded() {
        let path = tmp("torn");
        let mut j = Journal::create(&path).unwrap();
        j.record_scan(1.0).unwrap();
        drop(j);
        // Simulate a crash mid-write of the next record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"A 0 0 1").unwrap();
        drop(f);
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs, vec![JournalRecord::Scan { at: 1.0 }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "T 3ff0000000000000\nGARBAGE\nT 4000000000000000\n").unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_rebuilds_engine_state() {
        let path = tmp("recover");
        let registry = Registry::new();
        let wf = chain(2);
        registry.insert(WorkflowId(0), Arc::clone(&wf));

        // Live master: submit, check out the root, then "crash".
        let config = EngineConfig { default_timeout_secs: 10.0, ..EngineConfig::default() };
        let mut live = config.build();
        let mut j = Journal::create(&path).unwrap();
        let mut sink = Vec::new();
        j.record_submit(WorkflowId(0), 0, 0.0).unwrap();
        live.submit_workflow(Arc::clone(&wf), 0.0, &mut sink);
        let Action::Dispatch(d) = sink[0].clone() else { panic!("root dispatch") };
        sink.clear();
        let run = AckMsg { job: d.job, worker: 0, kind: AckKind::Running, attempt: 1 };
        j.record_ack(&run, 1.0).unwrap();
        live.on_ack(run, 1.0, &mut sink);
        sink.clear();
        drop(j); // crash

        let rec = recover(&read_journal(&path).unwrap(), &registry, config).unwrap();
        let mut engine = rec.engine;
        assert_eq!(rec.resume_at, 1.0);
        assert_eq!(engine.stats(), live.stats(), "replayed stats match live");
        assert_eq!(rec.redispatch, vec![DispatchMsg { job: d.job, attempt: 1 }]);
        // The rebuilt deadline heap still times the checkout out at 11.0.
        assert_eq!(engine.next_deadline(), Some(11.0));
        let mut actions = Vec::new();
        engine.check_timeouts(11.0, &mut actions);
        assert!(actions.iter().any(|a| matches!(a, Action::Dispatch(d2) if d2.attempt == 2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_rejects_missing_workflow() {
        let recs = vec![JournalRecord::Submit { workflow: 0, at: 0.0, shard: 0 }];
        let err = recover(&recs, &Registry::new(), EngineConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn sharded_recovery_restores_journaled_placement() {
        // A least-loaded-style placement (not derivable from submission
        // order) must come back exactly as journaled.
        let registry = Registry::new();
        let mut recs = Vec::new();
        for (i, shard) in [2u32, 2, 0, 1].into_iter().enumerate() {
            registry.insert(WorkflowId(i as u32), chain(1));
            recs.push(JournalRecord::Submit { workflow: i as u32, at: i as f64, shard });
        }
        let rec = recover_sharded(&recs, &registry, EngineConfig::default(), 3).unwrap();
        for (i, &shard) in [2usize, 2, 0, 1].iter().enumerate() {
            assert_eq!(rec.engine.shard_of(WorkflowId(i as u32)), shard);
        }
        // All four roots were in flight at the crash; every redispatch
        // carries its global workflow id.
        let mut wfs: Vec<u32> = rec.redispatch.iter().map(|d| d.job.workflow.0).collect();
        wfs.sort_unstable();
        assert_eq!(wfs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sharded_recovery_rejects_out_of_range_shard() {
        let registry = Registry::new();
        registry.insert(WorkflowId(0), chain(1));
        let recs = vec![JournalRecord::Submit { workflow: 0, at: 0.0, shard: 5 }];
        assert!(recover_sharded(&recs, &registry, EngineConfig::default(), 2).is_err());
    }

    /// A retry-heavy history: wf0 completes after a failed first attempt
    /// (9 records of noise), wf1 is still live with a timed-out root.
    fn noisy_history() -> (Registry, EngineConfig, Vec<JournalRecord>) {
        let registry = Registry::new();
        registry.insert(WorkflowId(0), chain(2));
        registry.insert(WorkflowId(1), chain(2));
        let config = EngineConfig {
            default_timeout_secs: 10.0,
            retry: crate::RetryPolicy { max_attempts: Some(3), ..Default::default() },
            ..EngineConfig::default()
        };
        let ack = |wf: u32, job: u32, kind: AckKind, attempt: u32, at: f64| JournalRecord::Ack {
            ack: AckMsg {
                job: EnsembleJobId::new(WorkflowId(wf), JobId(job)),
                worker: 0,
                kind,
                attempt,
            },
            at,
        };
        let records = vec![
            JournalRecord::Submit { workflow: 0, at: 0.0, shard: 0 },
            ack(0, 0, AckKind::Running, 1, 0.1),
            ack(0, 0, AckKind::Failed, 1, 1.0), // immediate resubmit (attempt 2)
            ack(0, 0, AckKind::Running, 2, 1.2),
            JournalRecord::Submit { workflow: 1, at: 2.0, shard: 0 },
            ack(1, 0, AckKind::Running, 1, 2.5), // times out at 12.5
            ack(0, 0, AckKind::Completed, 2, 3.0),
            ack(0, 1, AckKind::Running, 1, 3.5),
            ack(0, 1, AckKind::Completed, 1, 4.0), // wf0 done
            JournalRecord::Scan { at: 12.6 },      // resubmits wf1's root
        ];
        (registry, config, records)
    }

    #[test]
    fn compaction_elides_completed_workflows_and_preserves_live_state() {
        let (registry, config, records) = noisy_history();
        let compacted = compact_records(&records, &registry, config).unwrap();
        // wf0 shrinks to its submission + one Completed ack per job; wf1
        // keeps its full history, including the still-effective scan.
        assert_eq!(compacted.len(), 6, "{compacted:?}");
        assert!(compacted.iter().all(|r| !matches!(
            r,
            JournalRecord::Ack { ack, .. }
                if ack.job.workflow.0 == 0 && ack.kind != AckKind::Completed
        )));

        let full = recover(&records, &registry, config).unwrap();
        let lean = recover(&compacted, &registry, config).unwrap();
        let (fs, ls) = (full.engine.stats(), lean.engine.stats());
        assert_eq!(fs.workflows_submitted, ls.workflows_submitted);
        assert_eq!(fs.workflows_completed, ls.workflows_completed);
        assert_eq!(fs.workflows_abandoned, ls.workflows_abandoned);
        assert_eq!(fs.jobs_completed, ls.jobs_completed);
        assert_eq!(full.redispatch, lean.redispatch, "in-flight attempts survive");
        let mut f = full.engine;
        let mut l = lean.engine;
        assert_eq!(f.next_deadline(), l.next_deadline());
        for j in 0..2u32 {
            let id = EnsembleJobId::new(WorkflowId(1), JobId(j));
            assert_eq!(f.job_state(id), l.job_state(id), "live job {j}");
        }
    }

    #[test]
    fn compaction_keeps_abandoned_workflow_history() {
        let registry = Registry::new();
        registry.insert(WorkflowId(0), chain(2));
        let config = EngineConfig {
            retry: crate::RetryPolicy { max_attempts: Some(1), ..Default::default() },
            ..EngineConfig::default()
        };
        let records = vec![
            JournalRecord::Submit { workflow: 0, at: 0.0, shard: 0 },
            JournalRecord::Ack {
                ack: AckMsg {
                    job: EnsembleJobId::new(WorkflowId(0), JobId(0)),
                    worker: 0,
                    kind: AckKind::Failed,
                    attempt: 1,
                },
                at: 1.0,
            },
        ];
        let compacted = compact_records(&records, &registry, config).unwrap();
        assert_eq!(compacted, records, "abandonment history is not elided");
        let rec = recover(&compacted, &registry, config).unwrap();
        assert_eq!(rec.engine.stats().workflows_abandoned, 1);
        assert_eq!(rec.engine.stats().dead_lettered, 1);
    }

    #[test]
    fn compact_then_recover_through_the_file() {
        let path = tmp("compact");
        let (registry, config, records) = noisy_history();
        let mut j = Journal::create(&path).unwrap();
        for rec in &records {
            match *rec {
                JournalRecord::Submit { workflow, at, shard } => {
                    j.record_submit(WorkflowId(workflow), shard as usize, at).unwrap()
                }
                JournalRecord::Ack { ack, at } => j.record_ack(&ack, at).unwrap(),
                JournalRecord::Scan { at } => j.record_scan(at).unwrap(),
                JournalRecord::Worker { worker, generation, phase, at } => {
                    j.record_worker(worker, generation, phase, at).unwrap()
                }
            }
        }
        assert_eq!(j.record_count(), records.len());
        assert!(j.maybe_compact(&registry, config, 8).unwrap());
        assert_eq!(j.record_count(), 6);

        // The reopened writer appends to the compacted file.
        let late = AckMsg {
            job: EnsembleJobId::new(WorkflowId(1), JobId(0)),
            worker: 0,
            kind: AckKind::Completed,
            attempt: 2,
        };
        j.record_ack(&late, 13.0).unwrap();
        drop(j);

        let rec = recover(&read_journal(&path).unwrap(), &registry, config).unwrap();
        let mut engine = rec.engine;
        assert_eq!(engine.stats().workflows_completed, 1);
        assert_eq!(engine.stats().jobs_completed, 3);
        // The recovered master can finish wf1 normally.
        let mut sink = Vec::new();
        engine.on_ack(
            AckMsg {
                job: EnsembleJobId::new(WorkflowId(1), JobId(1)),
                worker: 0,
                kind: AckKind::Completed,
                attempt: 1,
            },
            14.0,
            &mut sink,
        );
        assert_eq!(engine.stats().workflows_completed, 2);
        assert!(engine.all_complete());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maybe_compact_waits_for_the_wal_to_double() {
        let path = tmp("floor");
        let registry = Registry::new();
        registry.insert(WorkflowId(0), chain(3));
        let config = EngineConfig::default();
        let mut j = Journal::create(&path).unwrap();
        // A live-only journal: nothing can be elided.
        j.record_submit(WorkflowId(0), 0, 0.0).unwrap();
        let run = AckMsg {
            job: EnsembleJobId::new(WorkflowId(0), JobId(0)),
            worker: 0,
            kind: AckKind::Running,
            attempt: 1,
        };
        j.record_ack(&run, 0.5).unwrap();
        assert!(j.maybe_compact(&registry, config, 2).unwrap());
        assert_eq!(j.record_count(), 2, "nothing elided");
        // Below 2x the post-compaction size: no rewrite despite threshold.
        j.record_ack(&run, 0.6).unwrap();
        assert!(!j.maybe_compact(&registry, config, 2).unwrap());
        j.record_ack(&run, 0.7).unwrap();
        assert!(j.maybe_compact(&registry, config, 2).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_journal_replays_into_a_single_engine() {
        // Global ids are dense in submission order in both shapes, so a
        // journal written by a sharded master still rebuilds a single
        // engine (the shard field is ignored).
        let registry = Registry::new();
        for i in 0..3u32 {
            registry.insert(WorkflowId(i), chain(1));
        }
        let recs: Vec<_> = (0..3u32)
            .map(|i| JournalRecord::Submit { workflow: i, at: f64::from(i), shard: 2 - i })
            .collect();
        let rec = recover(&recs, &registry, EngineConfig::default()).unwrap();
        assert_eq!(rec.engine.stats().workflows_submitted, 3);
        assert_eq!(rec.redispatch.len(), 3);
    }
}
