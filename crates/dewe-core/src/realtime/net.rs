//! The TCP transport: a networked master/worker runtime over the same
//! serve loops as the in-process bus.
//!
//! [`TcpMaster`] implements [`Transport`] (and therefore
//! `MasterTransport`), so `spawn_master_on` drives an entire remote
//! fleet with the exact master loop — LivenessTable lifecycle, retry
//! machinery, WAL journal — that the in-process oracle paths exercise.
//! [`TcpWorkerLink`] implements [`WorkerTransport`], so `spawn_worker_on`
//! runs the unchanged slot/heartbeat loops against a remote master.
//!
//! ## Wire model
//!
//! Every connection speaks length-prefixed [`WireMsg`] frames
//! (`dewe_mq::read_frame` / `write_frame`); the first frame after
//! `accept` is a handshake — [`WireMsg::Hello`] for workers,
//! [`WireMsg::SubmitterHello`] for submission clients — and any version
//! skew or garbage drops the connection before it touches master state.
//!
//! ## Backpressure
//!
//! Each worker offers a dispatch *window* in its Hello: the maximum
//! unsettled dispatches the master may hold on that connection
//! ([`dewe_mq::SendWindow`] credit). A terminal acknowledgment
//! (Completed/Failed) or an explicit [`WireMsg::Return`] refunds one
//! credit; dispatches that find no credit anywhere queue inside the
//! master transport and drain as credit frees up. A slow worker
//! therefore throttles only itself — the paper's pull-based competition,
//! recreated over push-with-credit.
//!
//! ## Registry mirroring
//!
//! Networked workers cannot share the master's in-memory [`Registry`],
//! so the master broadcasts every accepted workflow as a
//! [`WireMsg::Workflow`] announcement (and replays the full set to
//! late-joining workers at Hello). The worker link inserts each DAG into
//! its local registry mirror — its stand-in for the paper's shared file
//! system. With a state directory configured, announcements are also
//! spooled to disk (`wf-<id>.dag`) so a restarted master process can
//! rebuild its registry before WAL recovery.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dewe_dag::{parse_workflow, write_workflow, Workflow, WorkflowId};
use dewe_mq::{
    bind_reuse, read_frame, write_frame, SendWindow, Topic, Transport, WorkerTransport,
    DEFAULT_MAX_FRAME,
};
use parking_lot::Mutex;

use super::bus::Registry;
use crate::protocol::{
    AckKind, AckMsg, DispatchMsg, LifecycleMsg, SubmissionMsg, WireMsg, WorkflowAnnounce,
};

/// How often blocked I/O helper threads re-check their stop flags.
const IO_TICK: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------------
// Master side
// ---------------------------------------------------------------------------

/// Options for [`TcpMaster::bind`].
#[derive(Debug, Clone)]
pub struct TcpMasterOptions {
    /// Spool accepted workflows to `wf-<id>.dag` files in this directory
    /// so a restarted master process can rebuild its registry (see
    /// [`load_spool`]). `None` disables spooling.
    pub state_dir: Option<PathBuf>,
    /// Maximum accepted frame size; larger frames drop the connection.
    pub max_frame: usize,
}

impl Default for TcpMasterOptions {
    fn default() -> Self {
        Self { state_dir: None, max_frame: DEFAULT_MAX_FRAME }
    }
}

/// One connected worker, from the master's side.
struct Conn {
    /// Outbound frames; a dedicated writer thread drains this, so the
    /// master loop never blocks on a slow worker's socket.
    out: Topic<Vec<u8>>,
    /// Dispatch credit for this connection.
    window: SendWindow,
    /// Shard pin from the Hello; `None` serves every shard.
    shard: Option<u32>,
    /// For unblocking the reader on shutdown.
    stream: TcpStream,
}

impl Conn {
    fn serves(&self, shard: usize) -> bool {
        self.shard.is_none_or(|s| s as usize == shard)
    }

    fn send(&self, msg: &WireMsg) {
        self.out.publish(msg.encode());
    }
}

struct MasterInner {
    local_addr: SocketAddr,
    stop: AtomicBool,
    submission: Topic<SubmissionMsg>,
    ack: Topic<AckMsg>,
    lifecycle: Topic<LifecycleMsg>,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_conn: AtomicU64,
    /// Dispatches that found no window credit, FIFO per arrival.
    pending: Mutex<VecDeque<(usize, DispatchMsg)>>,
    /// Everything announced so far, replayed to late-joining workers.
    /// Also the synchronization point between `announce` broadcasts and
    /// Hello replays (see `register_worker_conn`).
    announced: Mutex<Vec<WorkflowAnnounce>>,
    state_dir: Option<PathBuf>,
    max_frame: usize,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

/// The master's TCP endpoint: accepts worker and submitter connections
/// and exposes them to the serve loop as a [`Transport`]. Clones share
/// the endpoint.
#[derive(Clone)]
pub struct TcpMaster {
    inner: Arc<MasterInner>,
}

impl TcpMaster {
    /// Bind the master endpoint and start accepting connections.
    /// `addr` may use port 0 to let the OS pick (see
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, options: TcpMasterOptions) -> io::Result<Self> {
        if let Some(dir) = &options.state_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = bind_reuse(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(MasterInner {
            local_addr,
            stop: AtomicBool::new(false),
            submission: Topic::default(),
            ack: Topic::default(),
            lifecycle: Topic::default(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            pending: Mutex::new(VecDeque::new()),
            announced: Mutex::new(Vec::new()),
            state_dir: options.state_dir,
            max_frame: options.max_frame,
            accept_thread: Mutex::new(None),
        });
        let accept_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("dewe-master-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))
            .expect("spawn accept thread");
        *inner.accept_thread.lock() = Some(handle);
        Ok(Self { inner })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Number of currently connected worker connections.
    pub fn worker_conns(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Stop the endpoint gracefully: send [`WireMsg::Bye`] to every
    /// worker (telling their links not to reconnect — the ensemble is
    /// done), close the internal topics (releasing the serve loop), and
    /// join the accept thread. Connection threads exit as their sockets
    /// close.
    pub fn shutdown(&self) {
        self.stop(true);
    }

    /// Kill the endpoint abruptly — connections drop with *no* Bye, as a
    /// crashed master would drop them — so worker links keep
    /// reconnecting and ride out a restart. The crash half of the
    /// kill/restart recovery drill.
    pub fn kill(&self) {
        self.stop(false);
    }

    fn stop(&self, say_bye: bool) {
        let inner = &self.inner;
        if inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let conns = inner.conns.lock();
            for conn in conns.values() {
                if say_bye {
                    conn.send(&WireMsg::Bye);
                }
                // Close after Bye: the writer drains queued frames
                // (including the Bye) before exiting.
                conn.out.close();
                let _ = conn.stream.shutdown(std::net::Shutdown::Read);
            }
        }
        inner.submission.close();
        inner.ack.close();
        inner.lifecycle.close();
        if let Some(t) = inner.accept_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Transport for TcpMaster {
    type Submission = SubmissionMsg;
    type Dispatch = DispatchMsg;
    type Ack = AckMsg;
    type Lifecycle = LifecycleMsg;
    type Announce = WorkflowAnnounce;

    fn try_pull_submission(&self) -> Option<SubmissionMsg> {
        self.inner.submission.try_pull()
    }

    fn pull_ack(&self, timeout: Duration) -> Option<AckMsg> {
        self.inner.ack.pull_timeout(timeout)
    }

    fn pull_ack_batch(&self, out: &mut Vec<AckMsg>, max: usize) -> usize {
        self.inner.ack.try_pull_batch(out, max)
    }

    fn try_pull_lifecycle(&self) -> Option<LifecycleMsg> {
        self.inner.lifecycle.try_pull()
    }

    fn publish_dispatch(&self, shard: usize, dispatch: DispatchMsg) {
        if !self.inner.try_send_dispatch(shard, dispatch) {
            self.inner.pending.lock().push_back((shard, dispatch));
            // Re-drain once: credit may have been refunded between the
            // failed placement and the enqueue.
            self.inner.drain_pending();
        }
    }

    fn publish_dispatch_batch(&self, shard: usize, batch: &mut Vec<DispatchMsg>) {
        self.inner.try_send_batch(shard, batch);
        if !batch.is_empty() {
            let mut pending = self.inner.pending.lock();
            for d in batch.drain(..) {
                pending.push_back((shard, d));
            }
            drop(pending);
            self.inner.drain_pending();
        }
    }

    fn announce(&self, announce: WorkflowAnnounce) {
        if let Some(dir) = &self.inner.state_dir {
            if let Err(e) = spool_workflow(dir, &announce) {
                eprintln!(
                    "dewe-master: failed to spool workflow {} to {}: {e}",
                    announce.id.0,
                    dir.display()
                );
            }
        }
        let msg = WireMsg::Workflow {
            id: announce.id,
            name: announce.name.clone(),
            dag: write_workflow(&announce.workflow),
        };
        // Holding `announced` across the broadcast closes the race with
        // a concurrent Hello replay: a late-joining worker either shows
        // up in `conns` here, or snapshots this workflow from
        // `announced` — never neither.
        let mut announced = self.inner.announced.lock();
        for conn in self.inner.conns.lock().values() {
            conn.send(&msg);
        }
        announced.push(announce);
    }

    fn ack_closed(&self) -> bool {
        self.inner.ack.is_closed()
    }
}

impl MasterInner {
    /// Place a dispatch on some connection serving `shard` with free
    /// credit. Returns false when no such connection exists right now.
    fn try_send_dispatch(&self, shard: usize, dispatch: DispatchMsg) -> bool {
        let conns = self.conns.lock();
        for conn in conns.values() {
            if conn.serves(shard) && conn.window.try_acquire() {
                conn.send(&WireMsg::Dispatch(dispatch));
                return true;
            }
        }
        false
    }

    /// Place a run of dispatches for `shard`, spending window credit in
    /// batch debits and splitting across connections as credit allows.
    /// Sent dispatches are drained from the front of `batch` (delivery
    /// order preserved); whatever found no credit stays behind. Returns
    /// how many were sent. Runs of one travel as plain [`WireMsg::
    /// Dispatch`] frames; longer runs coalesce into one
    /// [`WireMsg::DispatchBatch`] frame per granted connection.
    fn try_send_batch(&self, shard: usize, batch: &mut Vec<DispatchMsg>) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let mut sent = 0;
        {
            let conns = self.conns.lock();
            for conn in conns.values() {
                if sent == batch.len() {
                    break;
                }
                if !conn.serves(shard) {
                    continue;
                }
                let want = (batch.len() - sent) as u32;
                let granted = conn.window.try_acquire_n(want) as usize;
                if granted == 0 {
                    continue;
                }
                let run = &batch[sent..sent + granted];
                if granted == 1 {
                    conn.send(&WireMsg::Dispatch(run[0]));
                } else {
                    conn.send(&WireMsg::DispatchBatch(run.to_vec()));
                }
                sent += granted;
            }
        }
        batch.drain(..sent);
        sent
    }

    /// Retry queued dispatches against current credit, coalescing each
    /// contiguous same-shard run into one batch placement. Called
    /// whenever credit is refunded or a new worker connects.
    fn drain_pending(&self) {
        let mut pending = self.pending.lock();
        let mut i = 0;
        let mut batch = Vec::new();
        while i < pending.len() {
            let shard = pending[i].0;
            let mut j = i + 1;
            while j < pending.len() && pending[j].0 == shard {
                j += 1;
            }
            // Collect no more of the run than the shard's total free
            // credit: a deep backlog drains one refund at a time, and
            // copying the whole run to have try_send_batch grant one
            // dispatch would turn each refund into an O(queue) scan.
            // The estimate is racy only in the safe direction — a
            // concurrent release adds credit the next drain will use.
            let free: usize = {
                let conns = self.conns.lock();
                conns
                    .values()
                    .filter(|c| c.serves(shard))
                    .map(|c| c.window.limit().saturating_sub(c.window.in_flight()) as usize)
                    .sum()
            };
            if free == 0 {
                i = j;
                continue;
            }
            let take = (j - i).min(free);
            batch.clear();
            batch.extend(pending.range(i..i + take).map(|&(_, d)| d));
            let sent = self.try_send_batch(shard, &mut batch);
            for _ in 0..sent {
                pending.remove(i);
            }
            // Unsent leftovers mean this shard's connections are out of
            // credit; skip past the run and try the next shard's.
            i += (j - i) - sent;
        }
    }

    /// Drop a connection from the routing map and close its out topic.
    /// Deliberately does NOT shut the socket down: a graceful stop parks
    /// the Bye frame on the out topic, and the writer thread must drain
    /// it onto the wire first. The conn loop joins the writer and then
    /// hard-closes the socket itself.
    fn remove_conn(&self, id: u64) {
        if let Some(conn) = self.conns.lock().remove(&id) {
            conn.out.close();
        }
    }
}

fn accept_loop(inner: Arc<MasterInner>, listener: std::net::TcpListener) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("dewe-master-conn".into())
                    .spawn(move || serve_conn(conn_inner, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IO_TICK);
            }
            Err(_) => break,
        }
    }
}

/// Handle one inbound connection: handshake, then the per-role frame
/// loop. Any decode error (version skew first) drops the connection.
fn serve_conn(inner: Arc<MasterInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let hello = match read_frame(&mut reader, inner.max_frame) {
        Ok(Some(frame)) => match WireMsg::decode(&frame) {
            Ok(msg) => msg,
            Err(e) => {
                eprintln!("dewe-master: rejecting connection: {e}");
                return;
            }
        },
        _ => return,
    };
    match hello {
        WireMsg::Hello { worker, generation, shard, window } => {
            let _ = (worker, generation); // liveness identity arrives via Lifecycle frames
            worker_conn_loop(inner, stream, reader, shard, window);
        }
        WireMsg::SubmitterHello => submitter_conn_loop(inner, reader),
        other => {
            eprintln!("dewe-master: unexpected handshake {other:?}; dropping connection");
        }
    }
}

fn worker_conn_loop(
    inner: Arc<MasterInner>,
    stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    shard: Option<u32>,
    window: u32,
) {
    let conn = Arc::new(Conn {
        out: Topic::default(),
        window: SendWindow::new(window),
        shard,
        stream: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    });
    let id = inner.next_conn.fetch_add(1, Ordering::Relaxed);

    // Writer thread: drains the out topic onto the socket.
    let writer_conn = Arc::clone(&conn);
    let writer = std::thread::Builder::new()
        .name("dewe-master-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(stream);
            while let Some(frame) = writer_conn.out.pull() {
                if write_frame(&mut w, &frame).is_err() {
                    break;
                }
            }
        })
        .expect("spawn conn writer");

    // Registry replay + registration, synchronized against `announce`.
    {
        let announced = inner.announced.lock();
        for a in announced.iter() {
            conn.send(&WireMsg::Workflow {
                id: a.id,
                name: a.name.clone(),
                dag: write_workflow(&a.workflow),
            });
        }
        inner.conns.lock().insert(id, Arc::clone(&conn));
    }
    inner.drain_pending();

    // Credits refunded since the last pending-queue drain. Refunds are
    // coalesced per read burst: a flood of terminal acks sitting in the
    // read buffer releases all its credit *before* the drain runs, so a
    // deep dispatch backlog leaves as one DispatchBatch frame instead
    // of one frame per ack.
    let mut refunds = 0u32;
    while !inner.stop.load(Ordering::Relaxed) {
        let frame = match read_frame(&mut reader, inner.max_frame) {
            Ok(Some(f)) => f,
            _ => break,
        };
        match WireMsg::decode(&frame) {
            Ok(WireMsg::Ack(ack)) => {
                // Terminal acks settle a dispatch: refund the credit
                // before the serve loop even sees the ack.
                if matches!(ack.kind, AckKind::Completed | AckKind::Failed) {
                    conn.window.release();
                    refunds += 1;
                }
                inner.ack.publish(ack);
            }
            Ok(WireMsg::Lifecycle(msg)) => inner.lifecycle.publish(msg),
            Ok(WireMsg::Return(d)) => {
                // A stopping worker hands back an unstarted checkout:
                // refund and redeliver to whoever has credit.
                conn.window.release();
                refunds += 1;
                let shard = conn.shard.unwrap_or(0) as usize;
                if !inner.try_send_dispatch(shard, d) {
                    inner.pending.lock().push_back((shard, d));
                }
            }
            Ok(other) => {
                eprintln!("dewe-master: unexpected worker frame {other:?}; dropping connection");
                break;
            }
            Err(e) => {
                eprintln!("dewe-master: bad worker frame: {e}; dropping connection");
                break;
            }
        }
        // Drain once the read buffer empties (the burst is over and the
        // next read would block) — or every 64 refunds, so a sustained
        // ack flood cannot starve the pending queue indefinitely.
        if refunds > 0 && (refunds >= 64 || reader.buffer().is_empty()) {
            inner.drain_pending();
            refunds = 0;
        }
    }
    inner.remove_conn(id);
    if refunds > 0 {
        // The socket closed mid-burst (a stopping worker sends its
        // Returns and hangs up): redeliver what it handed back now that
        // its connection no longer competes for the credit.
        inner.drain_pending();
    }
    // Let the writer flush whatever is still queued — on a graceful stop
    // that includes the Bye telling the worker's link not to reconnect —
    // before hard-closing the socket. The writer cannot hang: the out
    // topic is closed (remove_conn above, or the stop path), so `pull`
    // returns None once the queue drains, and a dead peer fails the
    // write immediately.
    let _ = writer.join();
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
}

fn submitter_conn_loop(inner: Arc<MasterInner>, mut reader: BufReader<TcpStream>) {
    while !inner.stop.load(Ordering::Relaxed) {
        let frame = match read_frame(&mut reader, inner.max_frame) {
            Ok(Some(f)) => f,
            _ => break,
        };
        match WireMsg::decode(&frame) {
            Ok(WireMsg::Submit { name, dag }) => match parse_workflow(&dag) {
                Ok(wf) => {
                    inner.submission.publish(SubmissionMsg { name, workflow: Arc::new(wf) });
                }
                Err(e) => eprintln!("dewe-master: rejecting submission {name:?}: {e}"),
            },
            Ok(other) => {
                eprintln!("dewe-master: unexpected submitter frame {other:?}; dropping");
                break;
            }
            Err(e) => {
                eprintln!("dewe-master: bad submitter frame: {e}; dropping connection");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Options for [`TcpWorkerLink::connect`].
#[derive(Debug, Clone)]
pub struct TcpWorkerOptions {
    /// Worker identity sent in the Hello (informational; liveness
    /// identity travels in Lifecycle frames).
    pub worker_id: u32,
    /// Worker incarnation sent in the Hello.
    pub generation: u32,
    /// Shard pin offered to the master; `None` serves every shard.
    pub shard: Option<u32>,
    /// Dispatch window (unsettled-dispatch credit) offered to the
    /// master. Sensible default: slots × small factor.
    pub window: u32,
    /// Keep reconnecting (with `retry_interval` waits) when the master
    /// is unreachable or the connection drops — rides out a master
    /// restart. `false` gives up after the first failure.
    pub reconnect: bool,
    /// Delay between reconnect attempts.
    pub retry_interval: Duration,
    /// Maximum accepted frame size.
    pub max_frame: usize,
}

impl Default for TcpWorkerOptions {
    fn default() -> Self {
        Self {
            worker_id: 0,
            generation: 0,
            shard: None,
            window: 8,
            reconnect: true,
            retry_interval: Duration::from_millis(100),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

struct WorkerInner {
    addr: SocketAddr,
    opts: TcpWorkerOptions,
    registry: Registry,
    /// Dispatches delivered by the master, pulled by the slot loops.
    dispatch_in: Topic<DispatchMsg>,
    /// Frames to send; survives reconnects, so acks and heartbeats
    /// produced during a master outage are delivered after failover.
    outbound: Topic<Vec<u8>>,
    stop: AtomicBool,
    /// The master said Bye: don't reconnect, the ensemble is done.
    bye: AtomicBool,
    /// Current socket, for unblocking the reader on close.
    current: Mutex<Option<TcpStream>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

/// A worker daemon's connection to a remote master, with reconnect. The
/// [`WorkerTransport`] the standard worker slot/heartbeat loops drive.
#[derive(Clone)]
pub struct TcpWorkerLink {
    inner: Arc<WorkerInner>,
}

impl TcpWorkerLink {
    /// Connect to the master at `addr`, mirroring announced workflows
    /// into `registry`. Returns immediately; the connection (and any
    /// reconnects) are managed by a background thread. Fails only if
    /// `addr` does not resolve.
    pub fn connect(
        addr: impl ToSocketAddrs,
        registry: Registry,
        opts: TcpWorkerOptions,
    ) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolves empty"))?;
        let inner = Arc::new(WorkerInner {
            addr,
            opts,
            registry,
            dispatch_in: Topic::default(),
            outbound: Topic::default(),
            stop: AtomicBool::new(false),
            bye: AtomicBool::new(false),
            current: Mutex::new(None),
            supervisor: Mutex::new(None),
        });
        let sup_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("dewe-worker-link".into())
            .spawn(move || supervisor_loop(sup_inner))
            .expect("spawn worker link thread");
        *inner.supervisor.lock() = Some(handle);
        Ok(Self { inner })
    }

    /// True once the master announced completion ([`WireMsg::Bye`]).
    pub fn master_said_bye(&self) -> bool {
        self.inner.bye.load(Ordering::Relaxed)
    }

    /// Tear the link down: stop reconnecting, close the socket and the
    /// local topics (releasing slot loops), and join the supervisor.
    pub fn close(&self) {
        let inner = &self.inner;
        if inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(s) = inner.current.lock().as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        inner.dispatch_in.close();
        inner.outbound.close();
        if let Some(t) = inner.supervisor.lock().take() {
            let _ = t.join();
        }
    }
}

impl WorkerTransport for TcpWorkerLink {
    type Dispatch = DispatchMsg;
    type Ack = AckMsg;
    type Lifecycle = LifecycleMsg;

    fn pull_dispatch(&self, timeout: Duration) -> Option<DispatchMsg> {
        self.inner.dispatch_in.pull_timeout(timeout)
    }

    fn dispatch_closed(&self) -> bool {
        self.inner.dispatch_in.is_closed()
    }

    fn redeliver(&self, dispatch: DispatchMsg) {
        // Over the wire the checkout goes back to the master, which
        // refunds the window credit and redelivers elsewhere.
        self.inner.outbound.publish(WireMsg::Return(dispatch).encode());
    }

    fn publish_ack(&self, ack: AckMsg) {
        self.inner.outbound.publish(WireMsg::Ack(ack).encode());
    }

    fn publish_lifecycle(&self, msg: LifecycleMsg) {
        self.inner.outbound.publish(WireMsg::Lifecycle(msg).encode());
    }
}

/// Connect/reconnect loop: one live connection at a time, with the
/// reader on this thread and a writer thread per connection.
fn supervisor_loop(inner: Arc<WorkerInner>) {
    let mut first_attempt = true;
    while !inner.stop.load(Ordering::Relaxed) && !inner.bye.load(Ordering::Relaxed) {
        if !first_attempt && !inner.opts.reconnect {
            break;
        }
        let stream = match TcpStream::connect_timeout(&inner.addr, Duration::from_secs(2)) {
            Ok(s) => s,
            Err(_) => {
                first_attempt = false;
                if !inner.opts.reconnect {
                    break;
                }
                std::thread::sleep(inner.opts.retry_interval);
                continue;
            }
        };
        first_attempt = false;
        let _ = stream.set_nodelay(true);
        run_connection(&inner, stream);
        if inner.opts.reconnect && !inner.stop.load(Ordering::Relaxed) {
            std::thread::sleep(inner.opts.retry_interval);
        }
    }
    // No more deliveries are coming: release blocked slot loops.
    inner.dispatch_in.close();
}

fn run_connection(inner: &Arc<WorkerInner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let Ok(write_half) = stream.try_clone() else { return };
    *inner.current.lock() = Some(stream);

    // Handshake, then hand the socket to the writer thread.
    let hello = WireMsg::Hello {
        worker: inner.opts.worker_id,
        generation: inner.opts.generation,
        shard: inner.opts.shard,
        window: inner.opts.window,
    };
    let conn_dead = Arc::new(AtomicBool::new(false));
    let writer = {
        let inner = Arc::clone(inner);
        let dead = Arc::clone(&conn_dead);
        std::thread::Builder::new()
            .name("dewe-worker-link-writer".into())
            .spawn(move || {
                let mut w = BufWriter::new(write_half);
                if write_frame(&mut w, &hello.encode()).is_err() {
                    dead.store(true, Ordering::Relaxed);
                    return;
                }
                while !dead.load(Ordering::Relaxed) {
                    let Some(frame) = inner.outbound.pull_timeout(IO_TICK) else {
                        if inner.outbound.is_closed() {
                            break;
                        }
                        continue;
                    };
                    if write_frame(&mut w, &frame).is_err() {
                        // Requeue: acks produced during a master outage
                        // must survive to the next connection.
                        inner.outbound.publish(frame);
                        dead.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            })
            .expect("spawn link writer")
    };

    let mut reader = BufReader::new(read_half);
    while let Ok(Some(frame)) = read_frame(&mut reader, inner.opts.max_frame) {
        match WireMsg::decode(&frame) {
            Ok(WireMsg::Workflow { id, name, dag }) => match parse_workflow(&dag) {
                Ok(wf) => {
                    // Dense-insert guard: replays after a reconnect (the
                    // master resends its whole registry) are skipped.
                    if id.index() == inner.registry.len() {
                        inner.registry.insert(id, Arc::new(wf));
                    }
                    let _ = name;
                }
                Err(e) => eprintln!("dewe-worker: bad workflow {id:?} from master: {e}"),
            },
            Ok(WireMsg::Dispatch(d)) => inner.dispatch_in.publish(d),
            Ok(WireMsg::DispatchBatch(batch)) => {
                // Explode in order: the slot loops pull per-job exactly
                // as if the run had arrived as individual frames.
                for d in batch {
                    inner.dispatch_in.publish(d);
                }
            }
            Ok(WireMsg::Bye) => {
                inner.bye.store(true, Ordering::Relaxed);
                break;
            }
            Ok(other) => {
                eprintln!("dewe-worker: unexpected frame {other:?}; reconnecting");
                break;
            }
            Err(e) => {
                eprintln!("dewe-worker: bad frame from master: {e}; reconnecting");
                break;
            }
        }
    }
    conn_dead.store(true, Ordering::Relaxed);
    if let Some(s) = inner.current.lock().take() {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    let _ = writer.join();
}

// ---------------------------------------------------------------------------
// Submission client
// ---------------------------------------------------------------------------

/// Submit a workflow to a remote master over TCP (the networked
/// `dewectl submit`). Fire-and-forget: the frame is flushed onto a
/// healthy connection; if the master dies before ingesting it, resubmit.
pub fn submit_over_tcp(
    addr: impl ToSocketAddrs,
    name: impl Into<String>,
    workflow: &Workflow,
) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut w = BufWriter::new(stream);
    write_frame(&mut w, &WireMsg::SubmitterHello.encode())?;
    let msg = WireMsg::Submit { name: name.into(), dag: write_workflow(workflow) };
    write_frame(&mut w, &msg.encode())?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Workflow spool (master state directory)
// ---------------------------------------------------------------------------

/// Write one announced workflow to `dir/wf-<id>.dag`: the name on the
/// first line, the DAG text after it. Atomic via rename, so a crash
/// mid-write never leaves a torn spool entry.
pub fn spool_workflow(dir: &Path, announce: &WorkflowAnnounce) -> io::Result<()> {
    let final_path = dir.join(format!("wf-{:08}.dag", announce.id.0));
    let tmp_path = dir.join(format!(".wf-{:08}.dag.tmp", announce.id.0));
    let mut content = String::with_capacity(announce.name.len() + 1);
    content.push_str(&announce.name);
    content.push('\n');
    content.push_str(&write_workflow(&announce.workflow));
    std::fs::write(&tmp_path, content)?;
    std::fs::rename(&tmp_path, &final_path)
}

/// Load every spooled workflow from `dir`, sorted by id and verified
/// dense — the registry rebuild for a restarted master process. An
/// empty or missing directory loads nothing (a cold start).
pub fn load_spool(dir: &Path) -> io::Result<Vec<(WorkflowId, String, Arc<Workflow>)>> {
    let mut entries: Vec<(u32, PathBuf)> = Vec::new();
    let read_dir = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    for entry in read_dir {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name.strip_prefix("wf-").and_then(|s| s.strip_suffix(".dag")) else {
            continue;
        };
        let Ok(id) = idx.parse::<u32>() else { continue };
        entries.push((id, entry.path()));
    }
    entries.sort_by_key(|(id, _)| *id);
    let mut out = Vec::with_capacity(entries.len());
    for (i, (id, path)) in entries.iter().enumerate() {
        if *id as usize != i {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spool is not dense: expected wf-{i:08}, found wf-{id:08}"),
            ));
        }
        let content = std::fs::read_to_string(path)?;
        let (name, dag) = content.split_once('\n').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: missing name line", path.display()),
            )
        })?;
        let wf = parse_workflow(dag).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })?;
        out.push((WorkflowId(*id), name.to_string(), Arc::new(wf)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    fn wf(name: &str, jobs: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new(name);
        for i in 0..jobs {
            b.job(format!("j{i}"), "t", 1.0).build();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn spool_round_trips_and_rejects_sparse() {
        let dir = std::env::temp_dir().join(format!("dewe-spool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..3u32 {
            let a = WorkflowAnnounce {
                id: WorkflowId(i),
                name: format!("w{i}"),
                workflow: wf(&format!("w{i}"), 2),
            };
            spool_workflow(&dir, &a).unwrap();
        }
        let loaded = load_spool(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[1].0, WorkflowId(1));
        assert_eq!(loaded[1].1, "w1");
        assert_eq!(loaded[2].2.job_count(), 2);
        // Punch a hole: a sparse spool is corrupt and must fail loud.
        std::fs::remove_file(dir.join("wf-00000001.dag")).unwrap();
        assert!(load_spool(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_spool_of_missing_dir_is_a_cold_start() {
        let dir = std::env::temp_dir().join("dewe-spool-definitely-missing");
        assert!(load_spool(&dir).unwrap().is_empty());
    }

    #[test]
    fn tcp_link_delivers_dispatches_and_acks() {
        // Transport-level smoke: master endpoint + one worker link, no
        // serve loop — drive the Transport/WorkerTransport traits by hand.
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let registry = Registry::new();
        let link = TcpWorkerLink::connect(
            master.local_addr(),
            registry.clone(),
            TcpWorkerOptions { worker_id: 3, window: 4, ..TcpWorkerOptions::default() },
        )
        .unwrap();

        // Announce, then dispatch: the worker mirror must hold the DAG
        // before the dispatch arrives.
        let workflow = wf("net", 2);
        master.announce(WorkflowAnnounce {
            id: WorkflowId(0),
            name: "net".into(),
            workflow: Arc::clone(&workflow),
        });
        let job = dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(1));
        master.publish_dispatch(0, DispatchMsg::new(job, 1));

        let d = link.pull_dispatch(Duration::from_secs(10)).expect("dispatch arrives");
        assert_eq!(d.job, job);
        assert_eq!(registry.len(), 1, "workflow mirrored before dispatch");
        assert_eq!(registry.get(WorkflowId(0)).unwrap().job_count(), 2);

        link.publish_ack(AckMsg::new(job, 3, AckKind::Running, 1));
        link.publish_ack(AckMsg::new(job, 3, AckKind::Completed, 1));
        let a1 = master.pull_ack(Duration::from_secs(10)).expect("running ack");
        assert_eq!(a1.kind, AckKind::Running);
        let a2 = master.pull_ack(Duration::from_secs(10)).expect("completed ack");
        assert_eq!(a2.kind, AckKind::Completed);

        master.shutdown();
        assert!(master.ack_closed());
        link.close();
    }

    #[test]
    fn window_credit_throttles_and_terminal_acks_refund() {
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let registry = Registry::new();
        let link = TcpWorkerLink::connect(
            master.local_addr(),
            registry,
            TcpWorkerOptions { worker_id: 0, window: 1, ..TcpWorkerOptions::default() },
        )
        .unwrap();
        // Wait for the link to register.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while master.worker_conns() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(master.worker_conns(), 1);

        let job = |j: u32| dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(j));
        master.publish_dispatch(0, DispatchMsg::new(job(0), 1));
        master.publish_dispatch(0, DispatchMsg::new(job(1), 1));
        let d0 = link.pull_dispatch(Duration::from_secs(10)).expect("first dispatch");
        assert_eq!(d0.job, job(0));
        // Window is 1: the second dispatch is held back until the first
        // settles.
        assert!(link.pull_dispatch(Duration::from_millis(200)).is_none(), "window throttles");
        link.publish_ack(AckMsg::new(job(0), 0, AckKind::Completed, 1));
        let d1 = link.pull_dispatch(Duration::from_secs(10)).expect("second after refund");
        assert_eq!(d1.job, job(1));

        master.shutdown();
        link.close();
    }

    #[test]
    fn dispatch_batch_round_trips_in_order() {
        // publish_dispatch_batch with credit available for the whole run
        // sends one DispatchBatch frame; the worker explodes it back
        // into per-job dispatches in emission order.
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let link = TcpWorkerLink::connect(
            master.local_addr(),
            Registry::new(),
            TcpWorkerOptions { worker_id: 7, window: 8, ..TcpWorkerOptions::default() },
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while master.worker_conns() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let job = |j: u32| dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(j));
        let mut batch: Vec<DispatchMsg> = (0..5).map(|j| DispatchMsg::new(job(j), 1)).collect();
        master.publish_dispatch_batch(0, &mut batch);
        assert!(batch.is_empty(), "batch publish drains its buffer");
        for j in 0..5 {
            let d = link.pull_dispatch(Duration::from_secs(10)).expect("batched dispatch");
            assert_eq!(d.job, job(j), "in-shard order preserved");
        }
        master.shutdown();
        link.close();
    }

    #[test]
    fn dispatch_batch_splits_at_the_window_and_resumes_on_refund() {
        // A run longer than the worker's window is debited atomically up
        // to the free credit; the overflow parks in pending and flows as
        // terminal acks refund — same semantics as per-job publishes.
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let link = TcpWorkerLink::connect(
            master.local_addr(),
            Registry::new(),
            TcpWorkerOptions { worker_id: 1, window: 2, ..TcpWorkerOptions::default() },
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while master.worker_conns() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let job = |j: u32| dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(j));
        let mut batch: Vec<DispatchMsg> = (0..4).map(|j| DispatchMsg::new(job(j), 1)).collect();
        master.publish_dispatch_batch(0, &mut batch);
        let d0 = link.pull_dispatch(Duration::from_secs(10)).expect("first of split batch");
        let d1 = link.pull_dispatch(Duration::from_secs(10)).expect("second of split batch");
        assert_eq!((d0.job, d1.job), (job(0), job(1)));
        assert!(
            link.pull_dispatch(Duration::from_millis(200)).is_none(),
            "window of 2 holds the rest back"
        );
        link.publish_ack(AckMsg::new(job(0), 1, AckKind::Completed, 1));
        link.publish_ack(AckMsg::new(job(1), 1, AckKind::Failed, 1));
        let d2 = link.pull_dispatch(Duration::from_secs(10)).expect("third after refund");
        let d3 = link.pull_dispatch(Duration::from_secs(10)).expect("fourth after refund");
        assert_eq!((d2.job, d3.job), (job(2), job(3)));
        master.shutdown();
        link.close();
    }

    #[test]
    fn returned_checkout_is_redelivered() {
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let link = TcpWorkerLink::connect(
            master.local_addr(),
            Registry::new(),
            TcpWorkerOptions::default(),
        )
        .unwrap();
        let job = dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(0));
        master.publish_dispatch(0, DispatchMsg::new(job, 1));
        let d = link.pull_dispatch(Duration::from_secs(10)).expect("dispatch");
        // The worker hands it back (kill path) — the master redelivers.
        link.redeliver(d);
        let d2 = link.pull_dispatch(Duration::from_secs(10)).expect("redelivered");
        assert_eq!(d2.job, job);
        master.shutdown();
        link.close();
    }

    #[test]
    fn submit_over_tcp_reaches_the_submission_topic() {
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        submit_over_tcp(master.local_addr(), "net-sub", &wf("net-sub", 3)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let sub = loop {
            if let Some(s) = master.try_pull_submission() {
                break s;
            }
            assert!(std::time::Instant::now() < deadline, "submission never arrived");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(sub.name, "net-sub");
        assert_eq!(sub.workflow.job_count(), 3);
        master.shutdown();
    }

    #[test]
    fn worker_link_survives_master_restart_on_same_port() {
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let addr = master.local_addr();
        let registry = Registry::new();
        let link = TcpWorkerLink::connect(
            addr,
            registry.clone(),
            TcpWorkerOptions {
                retry_interval: Duration::from_millis(20),
                ..TcpWorkerOptions::default()
            },
        )
        .unwrap();
        master.announce(WorkflowAnnounce {
            id: WorkflowId(0),
            name: "a".into(),
            workflow: wf("a", 1),
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(registry.len(), 1);
        // Kill the master endpoint abruptly (no Bye — a crash), then
        // bind a replacement on the same port (SO_REUSEADDR path) and
        // re-announce.
        master.kill();
        let master2 = TcpMaster::bind(addr, TcpMasterOptions::default()).unwrap();
        master2.announce(WorkflowAnnounce {
            id: WorkflowId(0),
            name: "a".into(),
            workflow: wf("a", 1),
        });
        master2.announce(WorkflowAnnounce {
            id: WorkflowId(1),
            name: "b".into(),
            workflow: wf("b", 1),
        });
        // The link reconnects and mirrors the new announcement; the
        // replayed wf-0 is skipped by the dense-insert guard.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(registry.len(), 2, "reconnected and mirrored");
        // And an ack published after the restart still arrives.
        let job = dewe_dag::EnsembleJobId::new(WorkflowId(1), dewe_dag::JobId(0));
        link.publish_ack(AckMsg::new(job, 0, AckKind::Completed, 1));
        let ack = master2.pull_ack(Duration::from_secs(10)).expect("ack after failover");
        assert_eq!(ack.job, job);
        master2.shutdown();
        link.close();
    }

    #[test]
    fn version_skew_drops_the_connection_loudly() {
        use std::io::Write as _;
        let master = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let mut stream = TcpStream::connect(master.local_addr()).unwrap();
        // A "future protocol" hello: bumped version byte.
        let mut frame =
            WireMsg::Hello { worker: 0, generation: 0, shard: None, window: 1 }.encode();
        frame[0] = crate::protocol::PROTOCOL_VERSION + 1;
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        stream.write_all(&buf).unwrap();
        stream.flush().unwrap();
        // The master must close the connection without registering it.
        use std::io::Read as _;
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut probe = [0u8; 1];
        match stream.read(&mut probe) {
            Ok(0) => {} // EOF: dropped, as required
            Ok(_) => panic!("master should not talk to a version-skewed peer"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                panic!("master kept a version-skewed connection open")
            }
            Err(_) => {} // reset: dropped, as required
        }
        assert_eq!(master.worker_conns(), 0);
        master.shutdown();
    }
}
