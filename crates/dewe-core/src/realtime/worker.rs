//! The worker daemon: stateless pull-based job execution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dewe_mq::WorkerTransport;

use super::bus::{BusWorkerLink, MessageBus, Registry};
use super::runner::{JobOutcome, JobRunner, RunContext};
use crate::protocol::{AckKind, AckMsg, DispatchMsg, LifecycleKind, LifecycleMsg};

/// The transport a worker daemon drives, with the wire types pinned to
/// the DEWE protocol. Held as a trait object so [`WorkerHandle`] (and
/// every test harness storing one) stays non-generic across the
/// in-process and TCP transports.
pub type DynWorkerTransport =
    Arc<dyn WorkerTransport<Dispatch = DispatchMsg, Ack = AckMsg, Lifecycle = LifecycleMsg>>;

/// Worker daemon configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Worker identity (appears in acknowledgments).
    pub worker_id: u32,
    /// Worker incarnation. A replacement worker reusing a crashed
    /// worker's id registers with a higher generation; the master's
    /// liveness table supersedes the old incarnation and requeues
    /// whatever it still held.
    pub generation: u32,
    /// Concurrent job threads — the paper caps this at the node's CPU
    /// count: "the worker daemon stops pulling the job dispatching topic
    /// when the number of concurrent job execution threads equals the
    /// number of CPUs" (§III.D).
    pub slots: usize,
    /// How long an idle slot waits on the dispatch topic per pull.
    pub pull_timeout: Duration,
    /// Pin this worker to one engine shard: its slots pull that shard's
    /// dispatch topic (see [`MessageBus::dispatch_topic`]). `None` pulls
    /// the shared topic — the only dispatch source of an un-sharded
    /// master.
    pub shard: Option<usize>,
    /// When set, a dedicated thread registers the worker on the
    /// lifecycle topic and then heartbeats at this cadence, letting a
    /// lease-enabled master detect silence. `None` (default) sends no
    /// lifecycle traffic at all — the pre-lease wire behaviour.
    pub heartbeat_interval: Option<Duration>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            worker_id: 0,
            generation: 0,
            slots: 4,
            pull_timeout: Duration::from_millis(50),
            shard: None,
            heartbeat_interval: None,
        }
    }
}

/// Handle to a running worker daemon.
pub struct WorkerHandle {
    threads: Vec<std::thread::JoinHandle<u64>>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    hb_pause: Arc<AtomicBool>,
    transport: DynWorkerTransport,
    worker_id: u32,
    generation: u32,
}

impl WorkerHandle {
    /// Graceful stop: slots finish their current job (acknowledging it)
    /// and exit. Returns total jobs executed.
    pub fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.join()
    }

    /// Crash the worker (paper §V.A.3): in-flight jobs are abandoned
    /// *without* a completion acknowledgment, and heartbeats cease
    /// abruptly, so the master must recover them via timeouts or — with
    /// leases enabled — lease expiry. Returns total jobs executed
    /// (completed ones).
    pub fn kill(self) -> u64 {
        self.kill.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        self.join()
    }

    /// Announce a graceful drain on the lifecycle topic *without*
    /// stopping: the master marks the worker Draining (no new dispatch
    /// credit) while running jobs finish and ack. Models a spot
    /// revocation notice — call this at the notice, [`kill`](Self::kill)
    /// at the revocation.
    pub fn announce_drain(&self) {
        self.transport.publish_lifecycle(LifecycleMsg::new(
            self.worker_id,
            self.generation,
            LifecycleKind::Drain,
        ));
    }

    /// Full graceful drain: announce on the lifecycle topic, then stop —
    /// slots finish their current job, acknowledging it, and exit.
    /// Returns total jobs executed.
    pub fn drain(self) -> u64 {
        self.announce_drain();
        self.stop()
    }

    /// Suspend heartbeats without stopping the worker: jobs keep
    /// running, but a lease-enabled master sees silence. This is the
    /// stall/straggler fault — resume with
    /// [`resume_heartbeats`](Self::resume_heartbeats) to model a GC
    /// pause or network partition that heals.
    pub fn pause_heartbeats(&self) {
        self.hb_pause.store(true, Ordering::Relaxed);
    }

    /// Resume heartbeats after [`pause_heartbeats`](Self::pause_heartbeats).
    pub fn resume_heartbeats(&self) {
        self.hb_pause.store(false, Ordering::Relaxed);
    }

    fn join(self) -> u64 {
        let total =
            self.threads.into_iter().map(|t| t.join().expect("worker thread panicked")).sum();
        if let Some(hb) = self.heartbeat {
            hb.join().expect("heartbeat thread panicked");
        }
        total
    }
}

/// Spawn a worker daemon with `config.slots` pulling threads over the
/// in-process bus.
///
/// The worker is stateless: its only knowledge of the system is the bus
/// (the message-queue address) and the registry (the shared file system).
/// It never learns the master's identity or other workers' existence.
pub fn spawn_worker(
    bus: MessageBus,
    registry: Registry,
    runner: Arc<dyn JobRunner>,
    config: WorkerConfig,
) -> WorkerHandle {
    let link = BusWorkerLink::new(bus, config.shard);
    spawn_worker_on(Arc::new(link), registry, runner, config)
}

/// Spawn a worker daemon over any [`WorkerTransport`] — the in-process
/// [`BusWorkerLink`] or a TCP link to a remote master. The slot and
/// heartbeat loops are written once against the trait; the transport
/// decides what "the dispatch topic" means.
pub fn spawn_worker_on(
    transport: DynWorkerTransport,
    registry: Registry,
    runner: Arc<dyn JobRunner>,
    config: WorkerConfig,
) -> WorkerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let kill = Arc::new(AtomicBool::new(false));
    let hb_pause = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(config.slots);
    for slot in 0..config.slots {
        let transport = Arc::clone(&transport);
        let registry = registry.clone();
        let runner = Arc::clone(&runner);
        let stop = Arc::clone(&stop);
        let kill = Arc::clone(&kill);
        let cfg = config.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("dewe-worker-{}-{slot}", config.worker_id))
                .spawn(move || slot_loop(transport, registry, runner, stop, kill, cfg))
                .expect("spawn worker thread"),
        );
    }
    let heartbeat = config.heartbeat_interval.map(|interval| {
        let transport = Arc::clone(&transport);
        let stop = Arc::clone(&stop);
        let pause = Arc::clone(&hb_pause);
        let (worker, generation) = (config.worker_id, config.generation);
        std::thread::Builder::new()
            .name(format!("dewe-worker-{worker}-hb"))
            .spawn(move || heartbeat_loop(transport, stop, pause, worker, generation, interval))
            .expect("spawn heartbeat thread")
    });
    WorkerHandle {
        threads,
        heartbeat,
        stop,
        kill,
        hb_pause,
        transport,
        worker_id: config.worker_id,
        generation: config.generation,
    }
}

/// Register once, then heartbeat every `interval` until stopped. The
/// loop ticks well under the interval so stop and pause requests take
/// effect promptly; a paused thread keeps ticking silently, which is
/// exactly what a stalled-but-alive worker looks like on the wire.
fn heartbeat_loop(
    transport: DynWorkerTransport,
    stop: Arc<AtomicBool>,
    pause: Arc<AtomicBool>,
    worker: u32,
    generation: u32,
    interval: Duration,
) {
    transport.publish_lifecycle(LifecycleMsg::new(worker, generation, LifecycleKind::Register));
    let tick = (interval / 4).clamp(Duration::from_millis(1), Duration::from_millis(25));
    let mut since_beat = Duration::ZERO;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        since_beat += tick;
        if since_beat >= interval {
            since_beat = Duration::ZERO;
            if !pause.load(Ordering::Relaxed) {
                transport.publish_lifecycle(LifecycleMsg::new(
                    worker,
                    generation,
                    LifecycleKind::Heartbeat,
                ));
            }
        }
    }
}

fn slot_loop(
    transport: DynWorkerTransport,
    registry: Registry,
    runner: Arc<dyn JobRunner>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    config: WorkerConfig,
) -> u64 {
    let mut executed = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let Some(dispatch) = transport.pull_dispatch(config.pull_timeout) else {
            if transport.dispatch_closed() {
                break;
            }
            continue;
        };
        // A worker killed right after the pull vanishes; the broker
        // redelivers the unacknowledged checkout (RabbitMQ semantics) so
        // the job is not lost while the master thinks it is still queued.
        if kill.load(Ordering::Relaxed) {
            transport.redeliver(dispatch);
            break;
        }
        let Some(workflow) = registry.get(dispatch.job.workflow) else {
            // Unknown workflow: impossible under correct master ordering;
            // drop the message (it will be recovered by timeout).
            continue;
        };
        transport.publish_ack(AckMsg::new(
            dispatch.job,
            config.worker_id,
            AckKind::Running,
            dispatch.attempt,
        ));
        let ctx = RunContext {
            cancelled: Arc::clone(&kill),
            worker: config.worker_id,
            workflow_id: dispatch.job.workflow,
            attempt: dispatch.attempt,
        };
        // A panicking job executable must not take the whole slot thread
        // (and, via `WorkerHandle::join`, the harness) down with it: treat
        // the panic as a job failure and keep serving. The master's retry
        // budget decides whether the job gets another chance.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run(&workflow, dispatch.job.job, &ctx)
        }))
        .unwrap_or_else(|payload| {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            JobOutcome::Failed(format!("panic: {reason}"))
        });
        match outcome {
            JobOutcome::Success => {
                executed += 1;
                transport.publish_ack(AckMsg::new(
                    dispatch.job,
                    config.worker_id,
                    AckKind::Completed,
                    dispatch.attempt,
                ));
            }
            JobOutcome::Failed(_reason) => {
                transport.publish_ack(AckMsg::new(
                    dispatch.job,
                    config.worker_id,
                    AckKind::Failed,
                    dispatch.attempt,
                ));
            }
            JobOutcome::Cancelled => {
                // Crash semantics: no acknowledgment at all.
                break;
            }
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DispatchMsg;
    use crate::realtime::runner::NoopRunner;
    use dewe_dag::{EnsembleJobId, JobId, WorkflowBuilder, WorkflowId};
    use std::sync::Arc;

    fn one_job_registry() -> Registry {
        let registry = Registry::new();
        let mut b = WorkflowBuilder::new("w");
        b.job("a", "t", 1.0).build();
        registry.insert(WorkflowId(0), Arc::new(b.finish().unwrap()));
        registry
    }

    #[test]
    fn worker_executes_and_acks() {
        let bus = MessageBus::new();
        let registry = one_job_registry();
        let handle = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(NoopRunner),
            WorkerConfig {
                worker_id: 7,
                slots: 2,
                pull_timeout: Duration::from_millis(10),
                ..WorkerConfig::default()
            },
        );
        bus.dispatch
            .publish(DispatchMsg { job: EnsembleJobId::new(WorkflowId(0), JobId(0)), attempt: 1 });
        let running = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(running.kind, AckKind::Running);
        assert_eq!(running.worker, 7);
        let completed = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completed.kind, AckKind::Completed);
        assert_eq!(handle.stop(), 1);
    }

    #[test]
    fn killed_worker_abandons_job_without_ack() {
        struct Slow;
        impl crate::realtime::JobRunner for Slow {
            fn run(
                &self,
                _w: &dewe_dag::Workflow,
                _j: JobId,
                ctx: &crate::realtime::RunContext,
            ) -> JobOutcome {
                for _ in 0..1000 {
                    if ctx.is_cancelled() {
                        return JobOutcome::Cancelled;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                JobOutcome::Success
            }
        }
        let bus = MessageBus::new();
        let registry = one_job_registry();
        let handle = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(Slow),
            WorkerConfig {
                worker_id: 1,
                slots: 1,
                pull_timeout: Duration::from_millis(10),
                ..WorkerConfig::default()
            },
        );
        bus.dispatch
            .publish(DispatchMsg { job: EnsembleJobId::new(WorkflowId(0), JobId(0)), attempt: 1 });
        let running = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(running.kind, AckKind::Running);
        assert_eq!(handle.kill(), 0, "no job completed");
        // No completion ack must ever arrive.
        assert!(bus.ack.pull_timeout(Duration::from_millis(100)).is_none());
    }

    #[test]
    fn panicking_job_acks_failed_and_slot_survives() {
        struct Bomb;
        impl crate::realtime::JobRunner for Bomb {
            fn run(
                &self,
                _w: &dewe_dag::Workflow,
                j: JobId,
                _ctx: &crate::realtime::RunContext,
            ) -> JobOutcome {
                if j.index() == 0 {
                    panic!("executable segfaulted");
                }
                JobOutcome::Success
            }
        }
        let bus = MessageBus::new();
        let registry = Registry::new();
        let mut b = WorkflowBuilder::new("w");
        b.job("a", "t", 1.0).build();
        b.job("b", "t", 1.0).build();
        registry.insert(WorkflowId(0), Arc::new(b.finish().unwrap()));
        let handle = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(Bomb),
            WorkerConfig {
                worker_id: 2,
                slots: 1,
                pull_timeout: Duration::from_millis(10),
                ..WorkerConfig::default()
            },
        );
        // Job 0 panics mid-run: the slot must ack it Failed and survive.
        bus.dispatch
            .publish(DispatchMsg { job: EnsembleJobId::new(WorkflowId(0), JobId(0)), attempt: 1 });
        let running = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(running.kind, AckKind::Running);
        let failed = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(failed.kind, AckKind::Failed);
        // Same slot still serves the next job.
        bus.dispatch
            .publish(DispatchMsg { job: EnsembleJobId::new(WorkflowId(0), JobId(1)), attempt: 1 });
        let running = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(running.kind, AckKind::Running);
        let completed = bus.ack.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completed.kind, AckKind::Completed);
        assert_eq!(handle.stop(), 1);
    }

    #[test]
    fn worker_registers_heartbeats_pauses_and_drains() {
        let bus = MessageBus::new();
        let registry = one_job_registry();
        let handle = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(NoopRunner),
            WorkerConfig {
                worker_id: 3,
                generation: 2,
                slots: 1,
                pull_timeout: Duration::from_millis(5),
                heartbeat_interval: Some(Duration::from_millis(10)),
                ..WorkerConfig::default()
            },
        );
        // Registration arrives first, then a steady heartbeat.
        let reg = bus.lifecycle.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reg, LifecycleMsg { worker: 3, generation: 2, kind: LifecycleKind::Register });
        let hb = bus.lifecycle.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(hb.kind, LifecycleKind::Heartbeat);
        assert_eq!(hb.generation, 2);
        // The stall fault: paused heartbeats go silent without stopping
        // the worker. Drain any already-published backlog first.
        handle.pause_heartbeats();
        std::thread::sleep(Duration::from_millis(15));
        while bus.lifecycle.try_pull().is_some() {}
        assert!(
            bus.lifecycle.pull_timeout(Duration::from_millis(60)).is_none(),
            "paused worker is silent on the lifecycle topic"
        );
        handle.resume_heartbeats();
        let hb = bus.lifecycle.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(hb.kind, LifecycleKind::Heartbeat);
        // Graceful drain announces itself before stopping.
        assert_eq!(handle.drain(), 0);
        let mut saw_drain = false;
        while let Some(msg) = bus.lifecycle.try_pull() {
            if msg.kind == LifecycleKind::Drain {
                saw_drain = true;
            }
        }
        assert!(saw_drain, "drain announcement published");
    }

    #[test]
    fn stopped_worker_drains_quickly() {
        let bus = MessageBus::new();
        let registry = one_job_registry();
        let handle = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(NoopRunner),
            WorkerConfig {
                worker_id: 0,
                slots: 3,
                pull_timeout: Duration::from_millis(5),
                ..WorkerConfig::default()
            },
        );
        assert_eq!(handle.stop(), 0);
    }
}
