//! Pluggable job execution strategies for the realtime runtime.

use dewe_dag::{JobId, Workflow, WorkflowId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Execution context handed to runners.
pub struct RunContext {
    /// Set when the hosting worker daemon is being killed; runners should
    /// poll it and bail out promptly (the job then vanishes without an
    /// acknowledgment, like a crashed worker process).
    pub cancelled: Arc<AtomicBool>,
    /// Worker id, for diagnostics.
    pub worker: u32,
    /// Which ensemble workflow the job belongs to (the `&Workflow`
    /// argument is the DAG itself; this is its id on the bus).
    pub workflow_id: WorkflowId,
    /// Which dispatch attempt this execution serves (1-based) — lets
    /// runners script per-attempt behavior and test harnesses tap the
    /// execution trace.
    pub attempt: u32,
}

impl RunContext {
    /// True once the hosting worker is being torn down.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Success,
    /// Execution failed; the master will resubmit.
    Failed(String),
    /// The worker died mid-job; no acknowledgment is sent and the master's
    /// timeout mechanism must recover (paper §III.B).
    Cancelled,
}

/// Executes the actual work of a job on a worker.
pub trait JobRunner: Send + Sync {
    /// Run `job` of `workflow`.
    fn run(&self, workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome;
}

/// Runs jobs instantaneously — for protocol/throughput tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRunner;

impl JobRunner for NoopRunner {
    fn run(&self, _workflow: &Workflow, _job: JobId, ctx: &RunContext) -> JobOutcome {
        if ctx.is_cancelled() {
            JobOutcome::Cancelled
        } else {
            JobOutcome::Success
        }
    }
}

/// Sleeps `cpu_seconds * scale` in small cancellable slices — jobs take
/// real wall time proportional to their profile, so scaling behaviour can
/// be observed with real threads.
#[derive(Debug, Clone, Copy)]
pub struct SleepRunner {
    /// Multiplier on each job's `cpu_seconds` (e.g. 0.001 = 1 ms per
    /// CPU-second).
    pub scale: f64,
}

impl SleepRunner {
    /// A runner sleeping `scale` real seconds per CPU-second.
    pub fn new(scale: f64) -> Self {
        assert!(scale >= 0.0);
        Self { scale }
    }
}

impl JobRunner for SleepRunner {
    fn run(&self, workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome {
        let total = Duration::from_secs_f64(workflow.job(job).cpu_seconds * self.scale);
        let slice = Duration::from_millis(5).min(total.max(Duration::from_micros(100)));
        let deadline = std::time::Instant::now() + total;
        while std::time::Instant::now() < deadline {
            if ctx.is_cancelled() {
                return JobOutcome::Cancelled;
            }
            std::thread::sleep(slice);
        }
        if ctx.is_cancelled() {
            JobOutcome::Cancelled
        } else {
            JobOutcome::Success
        }
    }
}

/// Burns real CPU (a checked spin loop) for `cpu_seconds * scale` — unlike
/// [`SleepRunner`], concurrent jobs genuinely contend for cores, so
/// wall-clock speedup from adding worker slots is physical, not simulated.
#[derive(Debug, Clone, Copy)]
pub struct CpuRunner {
    /// Real seconds of spinning per CPU-second of profile.
    pub scale: f64,
}

impl CpuRunner {
    /// A runner burning `scale` real seconds per CPU-second.
    pub fn new(scale: f64) -> Self {
        assert!(scale >= 0.0);
        Self { scale }
    }
}

impl JobRunner for CpuRunner {
    fn run(&self, workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome {
        let total = Duration::from_secs_f64(workflow.job(job).cpu_seconds * self.scale);
        let deadline = std::time::Instant::now() + total;
        // Spin in small bounded chunks so cancellation stays responsive.
        let mut acc: u64 = 0x9E3779B97F4A7C15;
        while std::time::Instant::now() < deadline {
            if ctx.is_cancelled() {
                return JobOutcome::Cancelled;
            }
            for _ in 0..10_000 {
                acc = acc.rotate_left(7) ^ acc.wrapping_mul(0x100000001b3);
            }
            std::hint::black_box(acc);
        }
        if ctx.is_cancelled() {
            JobOutcome::Cancelled
        } else {
            JobOutcome::Success
        }
    }
}

/// Performs *real file I/O* in a workspace directory, mirroring the
/// paper's shared-file-system data flow: a job reads every input file
/// (verifying it exists and has the expected length) and writes every
/// output file. Because the master only dispatches a job once its parents
/// completed, each read must succeed — executing a workflow under
/// `FsRunner` is an end-to-end test of the precedence machinery.
///
/// File sizes are scaled down by `bytes_per_logical_byte` so a 35 GB
/// workflow can run in a tempdir.
#[derive(Debug, Clone)]
pub struct FsRunner {
    /// Workspace root (one subdirectory per workflow).
    pub root: PathBuf,
    /// Physical bytes written per logical byte of the file spec.
    pub bytes_per_logical_byte: f64,
}

impl FsRunner {
    /// New runner rooted at `root` with the given scale (e.g. `1e-6` turns
    /// a 2.9 MB input into ~3 bytes).
    pub fn new(root: impl Into<PathBuf>, bytes_per_logical_byte: f64) -> Self {
        Self { root: root.into(), bytes_per_logical_byte }
    }

    fn path_for(&self, workflow: &Workflow, file: dewe_dag::FileId) -> PathBuf {
        self.root.join(workflow.name()).join(&workflow.file(file).name)
    }

    fn scaled(&self, logical: u64) -> usize {
        ((logical as f64 * self.bytes_per_logical_byte).ceil() as usize).max(1)
    }

    /// Pre-stage all initial input files of a workflow (the paper downloads
    /// inputs to the storage device before the experiments).
    pub fn stage_inputs(&self, workflow: &Workflow) -> std::io::Result<()> {
        let dir = self.root.join(workflow.name());
        std::fs::create_dir_all(&dir)?;
        for f in workflow.file_ids() {
            let spec = workflow.file(f);
            if spec.initial {
                let bytes = Self::content(&spec.name, self.scaled(spec.size_bytes));
                std::fs::write(self.path_for(workflow, f), bytes)?;
            }
        }
        Ok(())
    }

    /// Deterministic pseudo-random file content derived from the file name
    /// (FNV-1a keystream). Because every run writes the same bytes for the
    /// same logical file, checksums are comparable across runs and engines.
    fn content(name: &str, len: usize) -> Vec<u8> {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut out = Vec::with_capacity(len);
        let mut x = h | 1;
        while out.len() < len {
            // xorshift64 keystream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// Checksum the workflow's terminal outputs (files produced by sink
    /// jobs) — the in-process analogue of the paper's verification that
    /// DEWE v2 and Pegasus produce byte-identical final mosaics ("we verify
    /// that the results ... are identical by comparing the size and MD5
    /// check sum of the final output images", §V.A).
    pub fn checksum_outputs(&self, workflow: &Workflow) -> std::io::Result<u64> {
        let mut h: u64 = 0xcbf29ce484222325;
        for sink in workflow.sinks() {
            for &f in &workflow.job(sink).outputs {
                let data = std::fs::read(self.path_for(workflow, f))?;
                for b in data {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
        }
        Ok(h)
    }
}

impl JobRunner for FsRunner {
    fn run(&self, workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome {
        if ctx.is_cancelled() {
            return JobOutcome::Cancelled;
        }
        let spec = workflow.job(job);
        // Read phase: every input must exist with the expected size.
        for &f in &spec.inputs {
            let path = self.path_for(workflow, f);
            match std::fs::read(&path) {
                Ok(data) => {
                    let expect = self.scaled(workflow.file(f).size_bytes);
                    if data.len() != expect {
                        return JobOutcome::Failed(format!(
                            "{}: input {} has {} bytes, expected {expect}",
                            spec.name,
                            path.display(),
                            data.len()
                        ));
                    }
                }
                Err(e) => {
                    return JobOutcome::Failed(format!(
                        "{}: missing input {}: {e}",
                        spec.name,
                        path.display()
                    ));
                }
            }
        }
        if ctx.is_cancelled() {
            return JobOutcome::Cancelled;
        }
        // Write phase: deterministic content keyed by file name, so final
        // outputs checksum identically across runs and engines.
        for &f in &spec.outputs {
            let path = self.path_for(workflow, f);
            let spec_f = workflow.file(f);
            let bytes = Self::content(&spec_f.name, self.scaled(spec_f.size_bytes));
            if let Err(e) = std::fs::write(&path, bytes) {
                return JobOutcome::Failed(format!(
                    "{}: cannot write {}: {e}",
                    spec.name,
                    path.display()
                ));
            }
        }
        JobOutcome::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    fn ctx() -> RunContext {
        RunContext {
            cancelled: Arc::new(AtomicBool::new(false)),
            worker: 0,
            workflow_id: WorkflowId(0),
            attempt: 1,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dewe_runner_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn noop_succeeds() {
        let wf = {
            let mut b = WorkflowBuilder::new("w");
            b.job("a", "t", 1.0).build();
            b.finish().unwrap()
        };
        assert_eq!(NoopRunner.run(&wf, dewe_dag::JobId(0), &ctx()), JobOutcome::Success);
    }

    #[test]
    fn sleep_runner_takes_scaled_time() {
        let wf = {
            let mut b = WorkflowBuilder::new("w");
            b.job("a", "t", 10.0).build();
            b.finish().unwrap()
        };
        let r = SleepRunner::new(0.005); // 10 cpu-sec -> 50 ms
        let start = std::time::Instant::now();
        assert_eq!(r.run(&wf, dewe_dag::JobId(0), &ctx()), JobOutcome::Success);
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn sleep_runner_cancels_promptly() {
        let wf = {
            let mut b = WorkflowBuilder::new("w");
            b.job("a", "t", 1000.0).build();
            b.finish().unwrap()
        };
        let c = ctx();
        c.cancelled.store(true, Ordering::Relaxed);
        let r = SleepRunner::new(1.0);
        let start = std::time::Instant::now();
        assert_eq!(r.run(&wf, dewe_dag::JobId(0), &c), JobOutcome::Cancelled);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn cpu_runner_burns_real_time_and_cancels() {
        let wf = {
            let mut b = WorkflowBuilder::new("w");
            b.job("a", "t", 10.0).build();
            b.finish().unwrap()
        };
        let r = CpuRunner::new(0.003); // 10 cpu-s -> 30 ms
        let start = std::time::Instant::now();
        assert_eq!(r.run(&wf, dewe_dag::JobId(0), &ctx()), JobOutcome::Success);
        assert!(start.elapsed() >= Duration::from_millis(25));

        let c = ctx();
        c.cancelled.store(true, Ordering::Relaxed);
        let r = CpuRunner::new(10.0);
        let start = std::time::Instant::now();
        assert_eq!(r.run(&wf, dewe_dag::JobId(0), &c), JobOutcome::Cancelled);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn fs_runner_dataflow_roundtrip() {
        let mut b = WorkflowBuilder::new("fsflow");
        let input = b.file("in.dat", 1000, true);
        let out = b.file("out.dat", 500, false);
        let j = b.job("copy", "t", 0.0).input(input).output(out).build();
        let wf = b.finish().unwrap();

        let r = FsRunner::new(tempdir("roundtrip"), 1.0);
        r.stage_inputs(&wf).unwrap();
        assert_eq!(r.run(&wf, j, &ctx()), JobOutcome::Success);
        let written = std::fs::read(r.root.join("fsflow/out.dat")).unwrap();
        assert_eq!(written.len(), 500);
    }

    #[test]
    fn fs_runner_fails_on_missing_input() {
        let mut b = WorkflowBuilder::new("fsmiss");
        let input = b.file("never_staged.dat", 10, false); // produced by nobody
        let j = b.job("reader", "t", 0.0).input(input).build();
        let wf = b.finish().unwrap();
        let r = FsRunner::new(tempdir("missing"), 1.0);
        std::fs::create_dir_all(r.root.join("fsmiss")).unwrap();
        match r.run(&wf, j, &ctx()) {
            JobOutcome::Failed(msg) => assert!(msg.contains("missing input")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checksums_are_reproducible_across_runs() {
        let build = || {
            let mut b = WorkflowBuilder::new("ck");
            let i = b.file("in.dat", 500, true);
            let o = b.file("out.dat", 300, false);
            let j = b.job("only", "t", 0.0).input(i).output(o).build();
            (b.finish().unwrap(), j)
        };
        let run = |tag: &str| {
            let (wf, j) = build();
            let r = FsRunner::new(tempdir(tag), 1.0);
            r.stage_inputs(&wf).unwrap();
            assert_eq!(r.run(&wf, j, &ctx()), JobOutcome::Success);
            r.checksum_outputs(&wf).unwrap()
        };
        assert_eq!(run("ck_a"), run("ck_b"), "same workflow => same final checksum");
    }

    #[test]
    fn content_is_name_dependent() {
        let a = FsRunner::content("a", 64);
        let b = FsRunner::content("b", 64);
        assert_ne!(a, b);
        assert_eq!(a.len(), 64);
        assert_eq!(FsRunner::content("a", 64), a, "deterministic");
    }

    #[test]
    fn fs_runner_scales_sizes() {
        let mut b = WorkflowBuilder::new("fsscale");
        let input = b.file("big.dat", 1_000_000, true);
        let j = b.job("touch", "t", 0.0).input(input).build();
        let wf = b.finish().unwrap();
        let r = FsRunner::new(tempdir("scale"), 1e-3);
        r.stage_inputs(&wf).unwrap();
        let staged = std::fs::read(r.root.join("fsscale/big.dat")).unwrap();
        assert_eq!(staged.len(), 1000);
        assert_eq!(r.run(&wf, j, &ctx()), JobOutcome::Success);
    }
}
