//! The master daemon thread.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dewe_dag::WorkflowId;
use dewe_mq::Transport;

use super::bus::{MessageBus, Registry};
use super::journal::{self, Journal, JournalCommitPolicy};
use super::liveness::{LivenessTable, LivenessTransition, MasterStats, RequeueEntry, WorkerView};
use crate::engine::{
    Action, EngineConfig, EngineCore, EngineStats, EnsembleEngine, RetryPolicy, TimerBackend,
};
use crate::protocol::{AckMsg, DispatchMsg, LifecycleMsg, SubmissionMsg, WorkflowAnnounce};
use crate::sharded::parallel::{DispatchSink, ParallelOptions, ParallelShardedEngine};
use crate::sharded::{HashRouter, ShardedEngine};

/// Every fabric the master can serve: a [`Transport`] pinned to the
/// realtime protocol types, cloneable so shard threads can publish
/// dispatches directly. Blanket-implemented — the in-process
/// [`MessageBus`] and the TCP runtime's
/// [`TcpMaster`](super::net::TcpMaster) both qualify.
pub trait MasterTransport:
    Transport<
        Submission = SubmissionMsg,
        Dispatch = DispatchMsg,
        Ack = AckMsg,
        Lifecycle = LifecycleMsg,
        Announce = WorkflowAnnounce,
    > + Clone
{
}

impl<T> MasterTransport for T where
    T: Transport<
            Submission = SubmissionMsg,
            Dispatch = DispatchMsg,
            Ack = AckMsg,
            Lifecycle = LifecycleMsg,
            Announce = WorkflowAnnounce,
        > + Clone
{
}

/// Master daemon configuration.
///
/// Opaque: construct with [`MasterConfig::builder`] and the chained
/// setters (the 0.10 deprecated public field aliases are gone as of
/// 0.11.0).
///
/// ```
/// use dewe_core::realtime::MasterConfig;
/// use std::time::Duration;
///
/// let config = MasterConfig::builder()
///     .expected_workflows(20)
///     .timeout_scan_interval(Duration::from_millis(10))
///     .shards(4)
///     .lease_secs(5.0)
///     .build();
/// ```
#[derive(Debug, Clone, Default)]
pub struct MasterConfig {
    cfg: ResolvedConfig,
}

/// The internal mirror of [`MasterConfig`]: every read in the serve
/// machinery goes through this flat struct rather than the opaque
/// public wrapper.
#[derive(Debug, Clone)]
struct ResolvedConfig {
    default_timeout_secs: f64,
    checkout_timeout_secs: Option<f64>,
    retry: RetryPolicy,
    timeout_scan_interval: Duration,
    expected_workflows: Option<usize>,
    ack_burst: usize,
    journal_path: Option<PathBuf>,
    recover: bool,
    shards: usize,
    threads: usize,
    journal_compact_threshold: Option<usize>,
    journal_commit: JournalCommitPolicy,
    lease_secs: Option<f64>,
    timer_backend: TimerBackend,
    dispatch_batch: bool,
}

impl Default for ResolvedConfig {
    fn default() -> Self {
        Self {
            default_timeout_secs: crate::engine::DEFAULT_TIMEOUT_SECS,
            checkout_timeout_secs: None,
            retry: RetryPolicy::default(),
            timeout_scan_interval: Duration::from_millis(50),
            expected_workflows: None,
            ack_burst: 128,
            journal_path: None,
            recover: false,
            shards: 1,
            threads: 0,
            journal_compact_threshold: None,
            journal_commit: JournalCommitPolicy::default(),
            lease_secs: None,
            timer_backend: TimerBackend::default(),
            dispatch_batch: true,
        }
    }
}

impl ResolvedConfig {
    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            default_timeout_secs: self.default_timeout_secs,
            checkout_timeout_secs: self.checkout_timeout_secs,
            retry: self.retry,
            timer_backend: self.timer_backend,
        }
    }
}

impl MasterConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> MasterConfigBuilder {
        MasterConfigBuilder { cfg: ResolvedConfig::default() }
    }

    fn resolve(&self) -> ResolvedConfig {
        self.cfg.clone()
    }
}

/// Builder for [`MasterConfig`], mirroring [`EngineConfig`]'s chained
/// setters. Obtain via [`MasterConfig::builder`].
#[derive(Debug, Clone)]
#[must_use = "finish the configuration with .build()"]
pub struct MasterConfigBuilder {
    cfg: ResolvedConfig,
}

impl MasterConfigBuilder {
    /// System-wide default job timeout, seconds (paper §III.B).
    pub fn default_timeout_secs(mut self, secs: f64) -> Self {
        self.cfg.default_timeout_secs = secs;
        self
    }

    /// Checkout deadline: resubmit a dispatch never acknowledged as
    /// Running within this many seconds.
    pub fn checkout_timeout_secs(mut self, secs: f64) -> Self {
        self.cfg.checkout_timeout_secs = Some(secs);
        self
    }

    /// Retry budget and backoff policy for failed/timed-out jobs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// How often the master examines running jobs for timeouts.
    pub fn timeout_scan_interval(mut self, interval: Duration) -> Self {
        self.cfg.timeout_scan_interval = interval;
        self
    }

    /// Exit once this many workflows have settled. Without it the
    /// master serves until the transport shuts down.
    pub fn expected_workflows(mut self, count: usize) -> Self {
        self.cfg.expected_workflows = Some(count);
        self
    }

    /// Maximum acknowledgments ingested per loop iteration.
    pub fn ack_burst(mut self, burst: usize) -> Self {
        self.cfg.ack_burst = burst;
        self
    }

    /// Write-ahead journal path.
    pub fn journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.journal_path = Some(path.into());
        self
    }

    /// Replay an existing journal on startup (master failover).
    pub fn recover(mut self, recover: bool) -> Self {
        self.cfg.recover = recover;
        self
    }

    /// Engine shard count (> 1 drives a [`ShardedEngine`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Worker threads for the free-running parallel master.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Compact the WAL after this many appended records.
    pub fn journal_compact_threshold(mut self, records: usize) -> Self {
        self.cfg.journal_compact_threshold = Some(records);
        self
    }

    /// Journal durability policy.
    pub fn journal_commit(mut self, policy: JournalCommitPolicy) -> Self {
        self.cfg.journal_commit = policy;
        self
    }

    /// Worker lease duration, seconds; enables the liveness plane.
    pub fn lease_secs(mut self, secs: f64) -> Self {
        self.cfg.lease_secs = Some(secs);
        self
    }

    /// Deadline-timer backend for the engines the master drives (the
    /// hierarchical [`TimerBackend::Wheel`] by default; see
    /// [`EngineConfig`]). The two backends are behaviourally identical —
    /// this knob exists for A/B benchmarking and differential testing.
    pub fn timer_backend(mut self, backend: TimerBackend) -> Self {
        self.cfg.timer_backend = backend;
        self
    }

    /// Coalesce same-poll-cycle dispatches into batch publishes
    /// (`Transport::publish_dispatch_batch`). On by default; disable to
    /// A/B the per-job publish path.
    pub fn dispatch_batch(mut self, enabled: bool) -> Self {
        self.cfg.dispatch_batch = enabled;
        self
    }

    /// Finish: produce the configuration.
    pub fn build(self) -> MasterConfig {
        MasterConfig { cfg: self.cfg }
    }
}

/// Progress notifications from the master.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterEvent {
    /// A workflow completed after `makespan_secs`.
    WorkflowCompleted {
        /// Which workflow.
        workflow: WorkflowId,
        /// Submission-to-completion wall seconds.
        makespan_secs: f64,
    },
    /// A workflow was abandoned: one of its jobs exhausted its retry
    /// budget, stranding `dead_lettered` job(s) and their dependents.
    WorkflowAbandoned {
        /// Which workflow.
        workflow: WorkflowId,
        /// Jobs in it that exhausted their retry budgets.
        dead_lettered: u64,
    },
    /// All expected workflows completed; the master is exiting.
    AllCompleted {
        /// Final engine statistics.
        stats: EngineStats,
    },
    /// All expected workflows settled but at least one was abandoned;
    /// the master is exiting with partial completion.
    AllSettled {
        /// Final engine statistics.
        stats: EngineStats,
    },
}

/// Liveness state the master mirrors out for observers (tests, the
/// bench harness, operators): fault-plane counters and the current
/// worker table. Updated by the serve loop as liveness events land.
#[derive(Default)]
struct FaultPlaneShared {
    stats: parking_lot::Mutex<MasterStats>,
    snapshot: parking_lot::Mutex<Vec<WorkerView>>,
    /// Dispatch-pipeline counters, owned by the serve loop (and its
    /// shard threads) rather than the liveness table — the table
    /// overwrites `stats` wholesale on every publish, so these live
    /// beside it and are merged into [`MasterHandle::master_stats`]
    /// reads.
    dispatch_batches: AtomicU64,
    batched_dispatches: AtomicU64,
    timer_cascades: AtomicU64,
}

/// Handle to a running master daemon.
pub struct MasterHandle {
    thread: Option<std::thread::JoinHandle<EngineStats>>,
    stop: Arc<AtomicBool>,
    shared: Arc<FaultPlaneShared>,
    /// Receiver for progress events.
    pub events: Receiver<MasterEvent>,
}

impl MasterHandle {
    /// Wait for the master to exit, returning final engine statistics.
    pub fn join(mut self) -> EngineStats {
        self.thread.take().expect("join called once").join().expect("master panicked")
    }

    /// Master-side counters: the fault plane (lease-tracking fields are
    /// all-zero unless `lease_secs` is configured) plus the dispatch
    /// pipeline (batch sizes, timer cascades). Readable while the
    /// master runs and after it exits (read before
    /// [`join`](Self::join)/[`kill`](Self::kill), which consume the
    /// handle).
    pub fn master_stats(&self) -> MasterStats {
        let mut stats = *self.shared.stats.lock();
        stats.dispatch_batches = self.shared.dispatch_batches.load(Ordering::Relaxed);
        stats.batched_dispatches = self.shared.batched_dispatches.load(Ordering::Relaxed);
        stats.timer_cascades = self.shared.timer_cascades.load(Ordering::Relaxed);
        stats
    }

    /// Current liveness table rows, ordered by worker id. Empty when
    /// leases are disabled.
    pub fn liveness_snapshot(&self) -> Vec<WorkerView> {
        self.shared.snapshot.lock().clone()
    }

    /// Simulate a master crash: the daemon stops serving immediately,
    /// abandoning its in-memory state. Workers and queued messages are
    /// untouched — exactly the failure a journaled restart recovers from.
    pub fn kill(self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread {
            let _ = thread.join();
        }
    }
}

/// Spawn the master daemon over the in-process [`MessageBus`].
///
/// It pulls the submission topic for new workflows, the ack topic for
/// worker progress, publishes eligible jobs to the dispatch topic, and
/// periodically resubmits timed-out jobs. With
/// [`MasterConfigBuilder::journal_path`] set it write-ahead journals
/// every input; with [`MasterConfigBuilder::recover`] it first replays
/// that journal, rebuilding the pre-crash engine and republishing
/// in-flight jobs.
pub fn spawn_master(bus: MessageBus, registry: Registry, config: MasterConfig) -> MasterHandle {
    spawn_master_on(bus, registry, config)
}

/// Spawn the master daemon over any [`MasterTransport`] — the same serve
/// loop (engine, journal, liveness plane, retry machinery) behind the
/// in-process bus or the TCP runtime.
pub fn spawn_master_on<T: MasterTransport>(
    transport: T,
    registry: Registry,
    config: MasterConfig,
) -> MasterHandle {
    let (tx, rx): (Sender<MasterEvent>, Receiver<MasterEvent>) = unbounded();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let shared = Arc::new(FaultPlaneShared::default());
    let shared2 = Arc::clone(&shared);
    let resolved = config.resolve();
    let thread = std::thread::Builder::new()
        .name("dewe-master".into())
        .spawn(move || master_loop(transport, registry, resolved, tx, stop2, shared2))
        .expect("spawn master thread");
    MasterHandle { thread: Some(thread), stop, shared, events: rx }
}

/// Ties an engine shape to its journal-recovery entry point, so the
/// serving loop stays generic while recovery rebuilds the right shape
/// (forced shard placement for [`ShardedEngine`]).
trait RecoverableEngine: EngineCore + Sized {
    fn recover_from(
        records: &[journal::JournalRecord],
        registry: &Registry,
        config: &ResolvedConfig,
    ) -> std::io::Result<journal::Recovery<Self>>;
}

impl RecoverableEngine for EnsembleEngine {
    fn recover_from(
        records: &[journal::JournalRecord],
        registry: &Registry,
        config: &ResolvedConfig,
    ) -> std::io::Result<journal::Recovery<Self>> {
        journal::recover(records, registry, config.engine_config())
    }
}

impl RecoverableEngine for ShardedEngine {
    fn recover_from(
        records: &[journal::JournalRecord],
        registry: &Registry,
        config: &ResolvedConfig,
    ) -> std::io::Result<journal::Recovery<Self>> {
        journal::recover_sharded(records, registry, config.engine_config(), config.shards)
    }
}

fn master_loop<T: MasterTransport>(
    transport: T,
    registry: Registry,
    config: ResolvedConfig,
    events: Sender<MasterEvent>,
    stop: Arc<AtomicBool>,
    shared: Arc<FaultPlaneShared>,
) -> EngineStats {
    assert!(config.shards >= 1, "shard count must be at least 1");
    if config.shards > 1 && config.threads >= 1 {
        serve_parallel(transport, registry, config, events, stop, shared)
    } else if config.shards > 1 {
        let engine = config.engine_config().build_sharded(config.shards);
        serve(transport, registry, config, events, stop, shared, engine)
    } else {
        let engine = config.engine_config().build();
        serve(transport, registry, config, events, stop, shared, engine)
    }
}

/// The liveness plane as driven from a serve loop: owns the
/// [`LivenessTable`], journals every transition as a `W` record, warns
/// when an expiry hits a worker the recovered journal referenced but
/// that never re-registered (the silent-fallback fix), and mirrors
/// counters/snapshot into the shared handle state.
struct LivenessPlane {
    table: LivenessTable,
    shared: Arc<FaultPlaneShared>,
    transitions: Vec<LivenessTransition>,
    requeues: Vec<RequeueEntry>,
}

impl LivenessPlane {
    fn new(table: LivenessTable, shared: Arc<FaultPlaneShared>) -> Self {
        let plane = Self { table, shared, transitions: Vec::new(), requeues: Vec::new() };
        plane.publish();
        plane
    }

    /// Pull every queued lifecycle message and expire lapsed leases.
    /// Freed in-flight jobs are appended to `requeue_acks` as synthetic
    /// `Failed` acks for the caller to journal and feed to the engine.
    fn poll<T: MasterTransport>(
        &mut self,
        transport: &T,
        wal: &mut Option<Journal>,
        now: f64,
        requeue_acks: &mut Vec<AckMsg>,
    ) {
        while let Some(msg) = transport.try_pull_lifecycle() {
            self.table.on_lifecycle(&msg, now, &mut self.transitions, &mut self.requeues);
        }
        self.table.expire_due(now, &mut self.transitions, &mut self.requeues);
        let changed = !self.transitions.is_empty() || !self.requeues.is_empty();
        self.flush_transitions(wal);
        for r in self.requeues.drain(..) {
            requeue_acks.push(r.as_failed_ack());
        }
        if changed {
            self.publish();
        }
    }

    /// Ack fence: returns `false` for an ack from an expired worker —
    /// the caller must drop it (not journal it, not feed the engine).
    fn admit(&mut self, ack: &AckMsg, wal: &mut Option<Journal>, now: f64) -> bool {
        let before = self.table.stats();
        let ok = self.table.admit_ack(ack, now, &mut self.transitions);
        // Implicit registrations and rejections move counters without
        // emitting a transition, so publish on any stats change.
        let changed = !self.transitions.is_empty() || self.table.stats() != before;
        self.flush_transitions(wal);
        if changed {
            self.publish();
        }
        ok
    }

    fn flush_transitions(&mut self, wal: &mut Option<Journal>) {
        for t in self.transitions.drain(..) {
            if t.lost_in_recovery {
                eprintln!(
                    "dewe-master: WARN worker_lost_in_recovery worker={} generation={}: \
                     journal references a worker that never re-registered; requeueing its jobs",
                    t.worker, t.generation
                );
            }
            if let Some(w) = wal.as_mut() {
                w.record_worker(t.worker, t.generation, t.phase, t.at).expect("journal worker");
            }
        }
    }

    fn publish(&self) {
        *self.shared.stats.lock() = self.table.stats();
        *self.shared.snapshot.lock() = self.table.snapshot();
    }
}

/// Build the liveness plane for a (possibly recovering) master. On
/// recovery the journal's lifecycle history is replayed and every
/// still-live worker gets a grace lease from `resume_at` — workers that
/// never make contact again are expired (and flagged) when it lapses.
fn build_plane(
    config: &ResolvedConfig,
    shared: &Arc<FaultPlaneShared>,
    recovered: Option<(&[journal::JournalRecord], f64)>,
) -> Option<LivenessPlane> {
    let lease = config.lease_secs?;
    let table = match recovered {
        Some((records, resume_at)) => {
            let mut t = journal::replay_liveness(records, lease);
            t.grant_grace(resume_at);
            t
        }
        None => LivenessTable::new(lease),
    };
    Some(LivenessPlane::new(table, Arc::clone(shared)))
}

/// The free-running threaded master: shard worker threads own the
/// engines and publish dispatches straight onto their per-shard topics;
/// this loop only routes. Inputs are journaled *before* they are
/// enqueued — cross-shard inputs commute (shards share no state), so the
/// single-writer WAL order replays into the same state the shard threads
/// reach, and `recover_sharded` + promotion rebuilds a threaded master.
fn serve_parallel<T: MasterTransport>(
    transport: T,
    registry: Registry,
    config: ResolvedConfig,
    events: Sender<MasterEvent>,
    stop: Arc<AtomicBool>,
    shared: Arc<FaultPlaneShared>,
) -> EngineStats {
    let mut time_base = 0.0f64;
    let mut wal: Option<Journal> = None;
    let mut actions: Vec<Action> = Vec::new();
    let mut ack_burst: Vec<crate::protocol::AckMsg> = Vec::with_capacity(config.ack_burst.max(1));
    let mut requeue_acks: Vec<AckMsg> = Vec::new();
    let mut liveness: Option<LivenessPlane> = None;
    let mut batcher = DispatchBatcher::new(config.dispatch_batch, Arc::clone(&shared));

    // Dispatches leave from the worker threads themselves: each shard
    // thread publishes through its own transport clone without crossing
    // back through this loop. The seat hands over the whole run its
    // input batch produced; batching coalesces it into one frame.
    let sink_transport = transport.clone();
    let sink_shared = Arc::clone(&shared);
    let sink_batch = config.dispatch_batch;
    let sink: Arc<DispatchSink> = Arc::new(move |shard, run: &mut Vec<DispatchMsg>| {
        if sink_batch && run.len() > 1 {
            sink_shared.dispatch_batches.fetch_add(1, Ordering::Relaxed);
            sink_shared.batched_dispatches.fetch_add(run.len() as u64, Ordering::Relaxed);
            sink_transport.publish_dispatch_batch(shard, run);
        } else {
            for d in run.drain(..) {
                sink_transport.publish_dispatch(shard, d);
            }
        }
    });
    let opts = ParallelOptions {
        threads: config.threads,
        dispatch_sink: Some(sink),
        ..ParallelOptions::default()
    };

    let mut engine = if let Some(path) = &config.journal_path {
        if config.recover && path.exists() {
            let records = journal::read_journal(path).expect("read journal");
            let rec = ShardedEngine::recover_from(&records, &registry, &config).expect("replay");
            time_base = rec.resume_at;
            liveness = build_plane(&config, &shared, Some((&records, rec.resume_at)));
            if liveness.is_some() {
                // Discard the pre-takeover lifecycle backlog (see the
                // sequential loop's recovery path for why).
                while transport.try_pull_lifecycle().is_some() {}
            }
            let recovered = rec.engine;
            // Re-announce every recovered workflow before anything is
            // redispatched: a networked transport starts with an empty
            // mirror, and workers must know a workflow before its jobs.
            announce_registry(&transport, &registry, recovered.workflow_count());
            // Same lease-aware republishing rule as the sequential loop:
            // attempts a grace-leased worker still holds are not
            // republished — lease lapse requeues them if it is gone.
            for d in rec.redispatch {
                let held = liveness.as_ref().is_some_and(
                    |p| matches!(p.table.assignment(d.job), Some((_, a)) if a == d.attempt),
                );
                if !held {
                    transport.publish_dispatch(recovered.shard_of(d.job.workflow), d);
                }
            }
            let mut j =
                Journal::append(path).expect("reopen journal").with_policy(config.journal_commit);
            j.note_existing(records.len());
            wal = Some(j);
            ParallelShardedEngine::from_sharded(recovered, opts)
        } else {
            wal = Some(
                Journal::create(path).expect("create journal").with_policy(config.journal_commit),
            );
            ParallelShardedEngine::with_options(
                config.engine_config(),
                config.shards,
                Box::new(HashRouter::default()),
                opts,
            )
        }
    } else {
        ParallelShardedEngine::with_options(
            config.engine_config(),
            config.shards,
            Box::new(HashRouter::default()),
            opts,
        )
    };
    if liveness.is_none() {
        liveness = build_plane(&config, &shared, None);
    }

    let start = Instant::now();
    let mut last_scan = time_base;
    loop {
        if stop.load(Ordering::Relaxed) {
            // Simulated crash: drop everything on the floor.
            return engine.stats();
        }
        mirror_cascades(&shared, &engine);
        // Group-commit point: whatever the previous poll cycle buffered
        // becomes durable before this cycle ingests more input.
        if let Some(w) = wal.as_mut() {
            w.commit().expect("journal commit");
        }
        let now = time_base + start.elapsed().as_secs_f64();

        // 1. Ingest new submissions: route, journal, enqueue to the
        // owning shard thread. Same registry-before-journal discipline
        // as the sequential loop; the announcement broadcast sits
        // between them so a networked transport has durably mirrored
        // the workflow before the journal promises it exists.
        while let Some(sub) = transport.try_pull_submission() {
            let now = time_base + start.elapsed().as_secs_f64();
            let expected_id = WorkflowId::from_index(engine.workflow_count());
            let shard = engine.route_next(&sub.workflow);
            registry.insert(expected_id, Arc::clone(&sub.workflow));
            transport.announce(WorkflowAnnounce {
                id: expected_id,
                name: sub.name.clone(),
                workflow: Arc::clone(&sub.workflow),
            });
            if let Some(w) = wal.as_mut() {
                w.record_submit(expected_id, shard, now).expect("journal submit");
            }
            let id = engine.enqueue_submit_to(shard, sub.workflow, now);
            debug_assert_eq!(id, expected_id);
        }

        // 2. Timeout scans fan out to every shard thread. Unlike the
        // sequential loop there is no synchronous before/after state
        // comparison, so scans are journaled unconditionally; replaying
        // a no-op scan is itself a no-op, and compaction keeps the WAL
        // from accumulating them.
        if now - last_scan >= config.timeout_scan_interval.as_secs_f64() {
            last_scan = now;
            if let Some(w) = wal.as_mut() {
                w.record_scan(now).expect("journal scan");
            }
            engine.enqueue_scan(now);
        }

        // 2b. Liveness plane (see the sequential loop): lifecycle
        // traffic, lease expiry, and synthetic requeue acks, journaled
        // before they are enqueued like every other input.
        if let Some(plane) = liveness.as_mut() {
            plane.poll(&transport, &mut wal, now, &mut requeue_acks);
            for ack in requeue_acks.drain(..) {
                if let Some(w) = wal.as_mut() {
                    w.record_ack(&ack, now).expect("journal ack");
                }
                engine.enqueue_ack(ack, now);
            }
        }

        engine.flush();
        engine.poll_actions(&mut actions);
        publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);

        // 3. Exit once the expected workload has settled. Stats cells
        // are only advanced by shard threads after the settling input is
        // fully processed, so this check never fires early; quiesce to
        // drain any progress events still in flight.
        if let Some(expected) = config.expected_workflows {
            let stats = engine.stats();
            if stats.workflows_completed + stats.workflows_abandoned >= expected {
                engine.quiesce(&mut actions);
                publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
                let stats = engine.stats();
                // Graceful exit: make the group-commit window durable
                // before announcing completion — drop-flushing is for
                // crashes, not clean returns.
                commit_wal_on_exit(&mut wal);
                let ev = if stats.workflows_abandoned == 0 {
                    MasterEvent::AllCompleted { stats }
                } else {
                    MasterEvent::AllSettled { stats }
                };
                let _ = events.send(ev);
                mirror_cascades(&shared, &engine);
                return stats;
            }
        }

        // 4. Pull worker acknowledgments, journal them in arrival order,
        // and batch them per shard onto the bounded queues — the
        // ack_burst pattern, applied cross-shard.
        match transport.pull_ack(config.timeout_scan_interval) {
            Some(first) => {
                ack_burst.push(first);
                if config.ack_burst > 1 {
                    transport.pull_ack_batch(&mut ack_burst, config.ack_burst - 1);
                }
                let now = time_base + start.elapsed().as_secs_f64();
                for ack in ack_burst.drain(..) {
                    // Zombie fence, as in the sequential loop.
                    if let Some(plane) = liveness.as_mut() {
                        if !plane.admit(&ack, &mut wal, now) {
                            continue;
                        }
                    }
                    if let Some(w) = wal.as_mut() {
                        w.record_ack(&ack, now).expect("journal ack");
                    }
                    engine.enqueue_ack(ack, now);
                }
                maybe_compact(&mut wal, &registry, &config);
                engine.flush();
                engine.poll_actions(&mut actions);
                publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
            }
            None => {
                if transport.ack_closed() {
                    engine.quiesce(&mut actions);
                    publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
                    // Transport-shutdown exit is as graceful as settling:
                    // commit the buffered window before returning.
                    commit_wal_on_exit(&mut wal);
                    mirror_cascades(&shared, &engine);
                    return engine.stats();
                }
            }
        }
    }
}

fn serve<T: MasterTransport, E: RecoverableEngine>(
    transport: T,
    registry: Registry,
    config: ResolvedConfig,
    events: Sender<MasterEvent>,
    stop: Arc<AtomicBool>,
    shared: Arc<FaultPlaneShared>,
    mut engine: E,
) -> EngineStats {
    // Engine time continues across restarts: a recovered master resumes
    // its clock from the last journaled instant so deadlines and
    // makespans never run backwards.
    let mut time_base = 0.0f64;
    let mut wal: Option<Journal> = None;
    let mut actions: Vec<Action> = Vec::new();
    let mut ack_burst: Vec<crate::protocol::AckMsg> = Vec::with_capacity(config.ack_burst.max(1));
    let mut requeue_acks: Vec<AckMsg> = Vec::new();
    let mut liveness: Option<LivenessPlane> = None;
    let mut batcher = DispatchBatcher::new(config.dispatch_batch, Arc::clone(&shared));

    if let Some(path) = &config.journal_path {
        if config.recover && path.exists() {
            let records = journal::read_journal(path).expect("read journal");
            let rec = E::recover_from(&records, &registry, &config).expect("replay");
            engine = rec.engine;
            time_base = rec.resume_at;
            liveness = build_plane(&config, &shared, Some((&records, rec.resume_at)));
            if liveness.is_some() {
                // The lifecycle backlog predates the takeover (heartbeats
                // of unknown age, possibly from workers that died during
                // the outage): discard it so stale traffic cannot pass
                // for post-recovery contact. Live workers re-prove
                // themselves within one heartbeat interval — well inside
                // the grace lease — and even a discarded one-shot
                // Register heals, since any later heartbeat or ack
                // grants an implicit lease.
                while transport.try_pull_lifecycle().is_some() {}
            }
            // Re-announce every recovered workflow before anything is
            // redispatched: a networked transport starts with an empty
            // mirror, and workers must know a workflow before its jobs.
            announce_registry(&transport, &registry, engine.workflow_count());
            // Pre-crash queue state is unknown; republish everything the
            // rebuilt engine believes is in flight. Workers that already
            // ran these attempts produce duplicate-completion noise the
            // engine tolerates. With leases enabled, attempts the replayed
            // table knows are checked out by a (grace-leased) worker are
            // NOT republished: a live worker is still running them, and a
            // dead one's lease lapse requeues them through the retry
            // machinery.
            for d in rec.redispatch {
                let held = liveness.as_ref().is_some_and(
                    |p| matches!(p.table.assignment(d.job), Some((_, a)) if a == d.attempt),
                );
                if !held {
                    transport.publish_dispatch(engine.shard_of(d.job.workflow), d);
                }
            }
            let mut j =
                Journal::append(path).expect("reopen journal").with_policy(config.journal_commit);
            j.note_existing(records.len());
            wal = Some(j);
        } else {
            wal = Some(
                Journal::create(path).expect("create journal").with_policy(config.journal_commit),
            );
        }
    }
    if liveness.is_none() {
        liveness = build_plane(&config, &shared, None);
    }

    let start = Instant::now();
    let mut last_scan = time_base;
    loop {
        if stop.load(Ordering::Relaxed) {
            // Simulated crash: drop everything on the floor.
            return engine.stats();
        }
        mirror_cascades(&shared, &engine);
        // Group-commit point: whatever the previous poll cycle buffered
        // becomes durable before this cycle ingests more input.
        if let Some(w) = wal.as_mut() {
            w.commit().expect("journal commit");
        }
        let now = time_base + start.elapsed().as_secs_f64();

        // 1. Ingest any newly submitted workflows.
        while let Some(sub) = transport.try_pull_submission() {
            let now = time_base + start.elapsed().as_secs_f64();
            // Insert into the registry BEFORE journaling or publishing so
            // neither a worker nor a recovering master can observe a job
            // of an unknown workflow. The routing decision is previewed
            // and journaled before the submission takes effect, so a
            // recovering master can force the identical placement. The
            // announcement broadcast sits between registry and journal so
            // a networked transport has durably mirrored the workflow
            // before the journal promises it exists.
            let expected_id = WorkflowId::from_index(engine.workflow_count());
            let shard = engine.route_next(&sub.workflow);
            registry.insert(expected_id, Arc::clone(&sub.workflow));
            transport.announce(WorkflowAnnounce {
                id: expected_id,
                name: sub.name.clone(),
                workflow: Arc::clone(&sub.workflow),
            });
            if let Some(w) = wal.as_mut() {
                w.record_submit(expected_id, shard, now).expect("journal submit");
            }
            let id = engine.submit_workflow_to(shard, sub.workflow, now, &mut actions);
            debug_assert_eq!(id, expected_id);
            publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
        }

        // 2. Timeout scan at the configured cadence. Scans are journaled
        // AFTER the fact and only when they changed engine state: if the
        // record is lost to a crash, the rebuilt deadline heap still holds
        // the expired entries and the recovered master's next scan redoes
        // the work (re-publishing at worst a duplicate dispatch).
        if now - last_scan >= config.timeout_scan_interval.as_secs_f64() {
            last_scan = now;
            let before = engine.stats();
            engine.check_timeouts(now, &mut actions);
            if !actions.is_empty() || engine.stats() != before {
                if let Some(w) = wal.as_mut() {
                    w.record_scan(now).expect("journal scan");
                }
            }
            publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
        }

        // 2b. Liveness plane: ingest lifecycle traffic, expire lapsed
        // leases, and push the freed jobs back through the retry
        // machinery as synthetic Failed acks — journaled like any other
        // engine input, so replay reconstructs the identical requeues.
        if let Some(plane) = liveness.as_mut() {
            plane.poll(&transport, &mut wal, now, &mut requeue_acks);
            for ack in requeue_acks.drain(..) {
                if let Some(w) = wal.as_mut() {
                    w.record_ack(&ack, now).expect("journal ack");
                }
                engine.on_ack(ack, now, &mut actions);
            }
            publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
        }

        // 3. Exit once the expected workload has settled. (The engine's
        // own `AllCompleted`/`AllSettled` only cover workflows submitted
        // *so far*; the master must keep serving when more submissions
        // are expected.)
        if let Some(expected) = config.expected_workflows {
            let stats = engine.stats();
            if stats.workflows_completed + stats.workflows_abandoned >= expected {
                // Graceful exit: make the group-commit window durable
                // before announcing completion — drop-flushing is for
                // crashes, not clean returns.
                commit_wal_on_exit(&mut wal);
                let ev = if stats.workflows_abandoned == 0 {
                    MasterEvent::AllCompleted { stats }
                } else {
                    MasterEvent::AllSettled { stats }
                };
                let _ = events.send(ev);
                mirror_cascades(&shared, &engine);
                return stats;
            }
        }

        // 4. Wait (briefly) for worker acknowledgments. The first pull
        // blocks up to the scan interval; once one ack arrives, the rest
        // of any burst is drained in a single batched grab so a flood of
        // completions costs one lock + one wakeup, not one per ack.
        match transport.pull_ack(config.timeout_scan_interval) {
            Some(first) => {
                ack_burst.push(first);
                if config.ack_burst > 1 {
                    transport.pull_ack_batch(&mut ack_burst, config.ack_burst - 1);
                }
                let now = time_base + start.elapsed().as_secs_f64();
                for ack in ack_burst.drain(..) {
                    // Zombie fence: acks from an expired worker are
                    // dropped before journaling — rejected input is not
                    // engine input.
                    if let Some(plane) = liveness.as_mut() {
                        if !plane.admit(&ack, &mut wal, now) {
                            continue;
                        }
                    }
                    if let Some(w) = wal.as_mut() {
                        w.record_ack(&ack, now).expect("journal ack");
                    }
                    engine.on_ack(ack, now, &mut actions);
                }
                maybe_compact(&mut wal, &registry, &config);
                publish_actions(&transport, &engine, &events, &mut actions, &mut batcher);
            }
            None => {
                if transport.ack_closed() {
                    // Transport-shutdown exit is as graceful as settling:
                    // commit the buffered window before returning.
                    commit_wal_on_exit(&mut wal);
                    mirror_cascades(&shared, &engine);
                    return engine.stats();
                }
            }
        }
    }
}

/// Make the group-commit window durable on a graceful serve-loop exit.
/// Before this hook, every non-crash return leaned on `Journal`'s drop
/// flush — which swallows errors by necessity. A failed final commit on
/// a clean exit is a real durability bug and must be loud.
fn commit_wal_on_exit(wal: &mut Option<Journal>) {
    if let Some(w) = wal.as_mut() {
        w.commit().expect("final journal commit on serve-loop exit");
    }
}

/// Broadcast the first `count` registry entries as workflow
/// announcements — the recovery-path mirror rebuild for networked
/// transports (the in-process bus drops announcements).
fn announce_registry<T: MasterTransport>(transport: &T, registry: &Registry, count: usize) {
    for idx in 0..count {
        let id = WorkflowId::from_index(idx);
        let Some(workflow) = registry.get(id) else {
            continue;
        };
        let name = workflow.name().to_string();
        transport.announce(WorkflowAnnounce { id, name, workflow });
    }
}

/// Compact the WAL once it crosses the configured record threshold —
/// completed workflows collapse to a synthetic prefix so recovery replay
/// stays proportional to live state, not ensemble lifetime. Compaction
/// failure is non-fatal: the journal keeps growing and recovery still
/// works, so log-and-continue beats taking the master down.
fn maybe_compact(wal: &mut Option<Journal>, registry: &Registry, config: &ResolvedConfig) {
    let (Some(w), Some(threshold)) = (wal.as_mut(), config.journal_compact_threshold) else {
        return;
    };
    if let Err(e) = w.maybe_compact(registry, config.engine_config(), threshold) {
        eprintln!("dewe-master: journal compaction failed (will retry): {e}");
    }
}

/// Mirror the engine's cumulative deadline-wheel cascade count into the
/// shared stats cell — a cheap atomic store, refreshed once per poll
/// cycle and at every graceful serve-loop exit so the final
/// [`MasterHandle::master_stats`] read is exact.
fn mirror_cascades<E: EngineCore>(shared: &FaultPlaneShared, engine: &E) {
    shared.timer_cascades.store(engine.timer_cascades(), Ordering::Relaxed);
}

/// Coalesces the consecutive same-shard dispatch runs one poll cycle
/// emits into single [`Transport::publish_dispatch_batch`] calls (one
/// wire frame, one window debit), counting runs of length ≥ 2 into the
/// shared [`MasterStats`] counters. With batching disabled every
/// dispatch goes out through the per-job path unchanged. The run buffer
/// is reused for the serve loop's lifetime.
struct DispatchBatcher {
    enabled: bool,
    run: Vec<DispatchMsg>,
    run_shard: usize,
    shared: Arc<FaultPlaneShared>,
}

impl DispatchBatcher {
    fn new(enabled: bool, shared: Arc<FaultPlaneShared>) -> Self {
        Self { enabled, run: Vec::new(), run_shard: 0, shared }
    }

    /// Queue `d` for `shard`, flushing the open run first when the
    /// shard changes (dispatch order within a shard is preserved; order
    /// across shards is meaningless — they share no workers).
    fn push<T: MasterTransport>(&mut self, transport: &T, shard: usize, d: DispatchMsg) {
        if !self.enabled {
            transport.publish_dispatch(shard, d);
            return;
        }
        if shard != self.run_shard {
            self.flush(transport);
            self.run_shard = shard;
        }
        self.run.push(d);
    }

    /// Publish the open run: singletons take the per-job path (no frame
    /// overhead to amortize), longer runs go out as one batch.
    fn flush<T: MasterTransport>(&mut self, transport: &T) {
        match self.run.len() {
            0 => {}
            1 => {
                let d = self.run.pop().expect("run length checked");
                transport.publish_dispatch(self.run_shard, d);
            }
            n => {
                self.shared.dispatch_batches.fetch_add(1, Ordering::Relaxed);
                self.shared.batched_dispatches.fetch_add(n as u64, Ordering::Relaxed);
                transport.publish_dispatch_batch(self.run_shard, &mut self.run);
            }
        }
    }
}

/// Publish dispatch actions and forward progress events, draining the
/// caller's reusable buffer. Dispatches go to the owning workflow's shard
/// through the transport — coalesced per consecutive-shard run by the
/// batcher — and the run open at the end of the drain is flushed, so
/// every call publishes everything it was handed.
fn publish_actions<T: MasterTransport, E: EngineCore>(
    transport: &T,
    engine: &E,
    events: &Sender<MasterEvent>,
    actions: &mut Vec<Action>,
    batcher: &mut DispatchBatcher,
) {
    for action in actions.drain(..) {
        match action {
            Action::Dispatch(d) => {
                batcher.push(transport, engine.shard_of(d.job.workflow), d);
            }
            Action::WorkflowCompleted { workflow, makespan_secs } => {
                let _ = events.send(MasterEvent::WorkflowCompleted { workflow, makespan_secs });
            }
            Action::WorkflowAbandoned { workflow, dead_lettered, .. } => {
                let _ = events.send(MasterEvent::WorkflowAbandoned { workflow, dead_lettered });
            }
            Action::JobDeadLettered { .. } | Action::AllCompleted | Action::AllSettled => {}
        }
    }
    batcher.flush(transport);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AckKind, AckMsg};
    use dewe_dag::WorkflowBuilder;

    /// Drive the master with a hand-rolled "worker" on the test thread.
    #[test]
    fn master_runs_a_chain_to_completion() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(1)
                .build(),
        );

        let mut b = WorkflowBuilder::new("chain");
        let a = b.job("a", "t", 1.0).build();
        let c = b.job("b", "t", 1.0).build();
        b.edge(a, c);
        let wf = Arc::new(b.finish().unwrap());
        super::super::submit(&bus, "chain", wf);

        // Act as the sole worker.
        for _ in 0..2 {
            let d = bus.dispatch.pull_timeout(Duration::from_secs(5)).expect("dispatch");
            assert!(registry.get(d.job.workflow).is_some(), "registry populated first");
            bus.ack.publish(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Running,
                attempt: d.attempt,
            });
            bus.ack.publish(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Completed,
                attempt: d.attempt,
            });
        }

        // Completion event arrives, then shut the master down.
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::WorkflowCompleted { .. }));
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::AllCompleted { .. }));
        bus.shutdown();
        let stats = handle.join();
        assert_eq!(stats.jobs_completed, 2);
        assert_eq!(stats.workflows_completed, 1);
    }

    #[test]
    fn master_counts_coalesced_dispatch_runs() {
        // A 1 → 16 fan-out: the root's completion releases 16 jobs in
        // one poll cycle, so with batching on (the default) the serve
        // loop must publish at least one coalesced run and account for
        // it in the shared counters.
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(1)
                .build(),
        );

        let mut b = WorkflowBuilder::new("fan");
        let root = b.job("root", "t", 1.0).build();
        for i in 0..16 {
            let child = b.job(format!("c{i}"), "t", 1.0).build();
            b.edge(root, child);
        }
        let wf = Arc::new(b.finish().unwrap());
        super::super::submit(&bus, "fan", wf);

        for _ in 0..17 {
            let d = bus.dispatch.pull_timeout(Duration::from_secs(5)).expect("dispatch");
            bus.ack.publish(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Completed,
                attempt: d.attempt,
            });
        }
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::WorkflowCompleted { .. }));
        let stats = handle.master_stats();
        assert!(stats.dispatch_batches >= 1, "fan-out run was coalesced");
        assert!(
            stats.batched_dispatches >= 2 * stats.dispatch_batches,
            "every counted batch holds at least two dispatches"
        );
        assert_eq!(stats.timer_cascades, 0, "nothing timed out, nothing cascaded");
        bus.shutdown();
        handle.join();
    }

    #[test]
    fn master_ingests_ack_bursts_in_batches() {
        // 32 independent jobs, all acknowledged at once: the master must
        // drain the flood in batches (bounded by ack_burst) and still
        // account for every completion exactly once.
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(1)
                .ack_burst(5) // force several batches
                .build(),
        );
        let mut b = WorkflowBuilder::new("wide");
        for i in 0..32 {
            b.job(format!("j{i}"), "t", 1.0).build();
        }
        super::super::submit(&bus, "wide", Arc::new(b.finish().unwrap()));

        let mut acks = Vec::new();
        for _ in 0..32 {
            let d = bus.dispatch.pull_timeout(Duration::from_secs(5)).expect("dispatch");
            acks.push(AckMsg { job: d.job, worker: 0, kind: AckKind::Running, attempt: d.attempt });
            acks.push(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Completed,
                attempt: d.attempt,
            });
        }
        bus.ack.publish_all(acks);
        let stats = handle.join();
        assert_eq!(stats.jobs_completed, 32);
        assert_eq!(stats.duplicate_completions, 0);
        assert_eq!(stats.workflows_completed, 1);
    }

    #[test]
    fn master_resubmits_unacknowledged_job() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .default_timeout_secs(0.05)
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(1)
                .build(),
        );
        let mut b = WorkflowBuilder::new("one");
        b.job("a", "t", 1.0).build();
        super::super::submit(&bus, "one", Arc::new(b.finish().unwrap()));

        // First dispatch: check it out (Running ack) then crash — no
        // completion ever arrives, so the checkout timeout must fire.
        let d1 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d1.attempt, 1);
        bus.ack.publish(AckMsg { job: d1.job, worker: 0, kind: AckKind::Running, attempt: 1 });
        // Timeout fires; a resubmission appears.
        let d2 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d2.attempt, 2);
        // Complete it this time.
        bus.ack.publish(AckMsg { job: d2.job, worker: 1, kind: AckKind::Running, attempt: 2 });
        bus.ack.publish(AckMsg { job: d2.job, worker: 1, kind: AckKind::Completed, attempt: 2 });
        let stats = handle.join();
        assert_eq!(stats.resubmissions, 1);
        assert_eq!(stats.workflows_completed, 1);
    }

    #[test]
    fn sharded_master_fans_out_to_pinned_worker_pools() {
        use crate::realtime::runner::NoopRunner;
        use crate::realtime::worker::{spawn_worker, WorkerConfig};

        let bus = MessageBus::sharded(2);
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .shards(2)
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(6)
                .build(),
        );
        // One worker pool per shard, each pinned to its shard topic.
        let workers: Vec<_> = (0..2)
            .map(|shard| {
                spawn_worker(
                    bus.clone(),
                    registry.clone(),
                    Arc::new(NoopRunner),
                    WorkerConfig {
                        worker_id: shard as u32,
                        slots: 2,
                        shard: Some(shard),
                        ..WorkerConfig::default()
                    },
                )
            })
            .collect();
        for i in 0..6 {
            let mut b = WorkflowBuilder::new("wf");
            let a = b.job("a", "t", 1.0).build();
            let c = b.job("b", "t", 1.0).build();
            b.edge(a, c);
            super::super::submit(&bus, format!("wf{i}"), Arc::new(b.finish().unwrap()));
        }
        let stats = handle.join();
        assert_eq!(stats.workflows_completed, 6);
        assert_eq!(stats.jobs_completed, 12);
        let executed: u64 = workers.into_iter().map(|w| w.stop()).sum();
        assert_eq!(executed, 12, "pinned pools executed everything");
        // Nothing ever landed on the shared fallback topic.
        assert!(bus.dispatch.try_pull().is_none());
    }

    #[test]
    fn parallel_master_fans_out_from_shard_threads() {
        use crate::realtime::runner::NoopRunner;
        use crate::realtime::worker::{spawn_worker, WorkerConfig};

        // Free-running mode: two shard worker threads own the engines
        // and publish dispatches onto their pinned topics themselves.
        let bus = MessageBus::sharded(2);
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .shards(2)
                .threads(2)
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(6)
                .build(),
        );
        let workers: Vec<_> = (0..2)
            .map(|shard| {
                spawn_worker(
                    bus.clone(),
                    registry.clone(),
                    Arc::new(NoopRunner),
                    WorkerConfig {
                        worker_id: shard as u32,
                        slots: 2,
                        shard: Some(shard),
                        ..WorkerConfig::default()
                    },
                )
            })
            .collect();
        for i in 0..6 {
            let mut b = WorkflowBuilder::new("wf");
            let a = b.job("a", "t", 1.0).build();
            let c = b.job("b", "t", 1.0).build();
            b.edge(a, c);
            super::super::submit(&bus, format!("wf{i}"), Arc::new(b.finish().unwrap()));
        }
        let mut completions = 0;
        while let Ok(ev) = handle.events.recv_timeout(Duration::from_secs(10)) {
            match ev {
                MasterEvent::WorkflowCompleted { .. } => completions += 1,
                MasterEvent::AllCompleted { .. } => break,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(completions, 6, "every completion event forwarded");
        let stats = handle.join();
        assert_eq!(stats.workflows_completed, 6);
        assert_eq!(stats.jobs_completed, 12);
        let executed: u64 = workers.into_iter().map(|w| w.stop()).sum();
        assert_eq!(executed, 12, "pinned pools executed everything");
        assert!(bus.dispatch.try_pull().is_none(), "nothing on the fallback topic");
    }

    #[test]
    fn parallel_master_dead_letters_and_exits_settled() {
        let bus = MessageBus::sharded(2);
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .shards(2)
                .threads(1) // one worker thread owning both shards
                .timeout_scan_interval(Duration::from_millis(5))
                .expected_workflows(1)
                .retry(RetryPolicy { max_attempts: Some(2), ..RetryPolicy::default() })
                .build(),
        );
        let mut b = WorkflowBuilder::new("poison");
        b.job("a", "t", 1.0).build();
        super::super::submit(&bus, "poison", Arc::new(b.finish().unwrap()));

        let pull = |shard: usize| {
            bus.dispatch_topic(shard).pull_timeout(Duration::from_secs(5)).expect("dispatch")
        };
        // The lone workflow lands on some shard; fail it to the cap.
        let d1 = pull_any(&bus, 2).expect("first dispatch");
        let shard = d1.0;
        assert_eq!(d1.1.attempt, 1);
        bus.ack.publish(AckMsg { job: d1.1.job, worker: 0, kind: AckKind::Failed, attempt: 1 });
        let d2 = pull(shard);
        assert_eq!(d2.attempt, 2);
        bus.ack.publish(AckMsg { job: d2.job, worker: 0, kind: AckKind::Failed, attempt: 2 });

        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::WorkflowAbandoned { .. }), "got {ev:?}");
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::AllSettled { .. }));
        let stats = handle.join();
        assert_eq!(stats.dead_lettered, 1);
        assert_eq!(stats.workflows_abandoned, 1);
    }

    /// Pull the next dispatch from whichever shard topic produces one.
    fn pull_any(bus: &MessageBus, shards: usize) -> Option<(usize, crate::DispatchMsg)> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            for shard in 0..shards {
                if let Some(d) = bus.dispatch_topic(shard).try_pull() {
                    return Some((shard, d));
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn lease_expiry_requeues_a_dead_workers_job_and_fences_its_acks() {
        use crate::protocol::{LifecycleKind, LifecycleMsg};
        use crate::realtime::WorkerPhase;

        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            // Job timeout is deliberately long: recovery must come
            // from the lease, not the timeout scan.
            MasterConfig::builder()
                .default_timeout_secs(30.0)
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(1)
                .lease_secs(0.15)
                .build(),
        );
        let mut b = WorkflowBuilder::new("one");
        b.job("a", "t", 1.0).build();
        super::super::submit(&bus, "one", Arc::new(b.finish().unwrap()));

        // Worker 5 registers, checks the job out, then dies silently.
        let d1 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d1.attempt, 1);
        bus.lifecycle.publish(LifecycleMsg {
            worker: 5,
            generation: 0,
            kind: LifecycleKind::Register,
        });
        bus.ack.publish(AckMsg { job: d1.job, worker: 5, kind: AckKind::Running, attempt: 1 });

        // The lease lapses and the job is requeued as attempt 2.
        let d2 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d2.attempt, 2);
        // A zombie completion for the dead attempt is fenced out; a live
        // worker finishes the requeued attempt.
        bus.ack.publish(AckMsg { job: d1.job, worker: 5, kind: AckKind::Completed, attempt: 1 });
        bus.ack.publish(AckMsg { job: d2.job, worker: 6, kind: AckKind::Running, attempt: 2 });
        bus.ack.publish(AckMsg { job: d2.job, worker: 6, kind: AckKind::Completed, attempt: 2 });

        loop {
            match handle.events.recv_timeout(Duration::from_secs(5)).unwrap() {
                MasterEvent::AllCompleted { .. } => break,
                MasterEvent::WorkflowCompleted { .. } => {}
                other => panic!("unexpected event {other:?}"),
            }
        }
        let ms = handle.master_stats();
        assert_eq!(ms.workers_expired, 1);
        assert_eq!(ms.jobs_requeued_on_expiry, 1);
        assert_eq!(ms.stale_acks_rejected, 1);
        assert_eq!(ms.workers_registered, 2, "worker 6 got an implicit lease");
        let rows = handle.liveness_snapshot();
        assert_eq!(rows.iter().filter(|r| r.phase == WorkerPhase::Expired).count(), 1);
        let stats = handle.join();
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.duplicate_completions, 0, "fenced before the engine");
    }

    #[test]
    fn drained_worker_completes_gracefully_under_leases() {
        use crate::realtime::runner::NoopRunner;
        use crate::realtime::worker::{spawn_worker, WorkerConfig};

        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(10))
                .expected_workflows(4)
                .lease_secs(2.0)
                .build(),
        );
        let mk_worker = |id: u32| {
            spawn_worker(
                bus.clone(),
                registry.clone(),
                Arc::new(NoopRunner),
                WorkerConfig {
                    worker_id: id,
                    slots: 2,
                    pull_timeout: Duration::from_millis(5),
                    heartbeat_interval: Some(Duration::from_millis(20)),
                    ..WorkerConfig::default()
                },
            )
        };
        let w0 = mk_worker(0);
        let w1 = mk_worker(1);
        for i in 0..2 {
            let mut b = WorkflowBuilder::new("wf");
            b.job("a", "t", 1.0).build();
            b.job("b", "t", 1.0).build();
            super::super::submit(&bus, format!("wf{i}"), Arc::new(b.finish().unwrap()));
        }
        // Wait for the first batch to finish, then drain worker 1 and
        // submit more work — only worker 0 serves it.
        let mut settled = 0;
        while settled < 2 {
            if let MasterEvent::WorkflowCompleted { .. } =
                handle.events.recv_timeout(Duration::from_secs(10)).unwrap()
            {
                settled += 1;
            }
        }
        w1.drain();
        for i in 2..4 {
            let mut b = WorkflowBuilder::new("wf");
            b.job("a", "t", 1.0).build();
            b.job("b", "t", 1.0).build();
            super::super::submit(&bus, format!("wf{i}"), Arc::new(b.finish().unwrap()));
        }
        loop {
            match handle.events.recv_timeout(Duration::from_secs(10)).unwrap() {
                MasterEvent::AllCompleted { .. } => break,
                MasterEvent::WorkflowCompleted { .. } => {}
                other => panic!("unexpected event {other:?}"),
            }
        }
        let ms = handle.master_stats();
        assert_eq!(ms.drains_completed, 1);
        assert_eq!(ms.workers_expired, 0, "heartbeats kept every lease alive");
        assert_eq!(ms.jobs_requeued_on_expiry, 0);
        let stats = handle.join();
        assert_eq!(stats.workflows_completed, 4);
        w0.stop();
    }

    #[test]
    fn master_dead_letters_and_exits_settled() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(5))
                .expected_workflows(1)
                .retry(RetryPolicy { max_attempts: Some(2), ..RetryPolicy::default() })
                .build(),
        );
        let mut b = WorkflowBuilder::new("poison");
        b.job("a", "t", 1.0).build();
        super::super::submit(&bus, "poison", Arc::new(b.finish().unwrap()));

        // Fail every attempt; after the cap the workflow is abandoned and
        // the master exits with partial completion.
        for attempt in 1..=2 {
            let d = bus.dispatch.pull_timeout(Duration::from_secs(5)).expect("dispatch");
            assert_eq!(d.attempt, attempt);
            bus.ack.publish(AckMsg { job: d.job, worker: 0, kind: AckKind::Running, attempt });
            bus.ack.publish(AckMsg { job: d.job, worker: 0, kind: AckKind::Failed, attempt });
        }
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            ev,
            MasterEvent::WorkflowAbandoned { workflow: WorkflowId(0), dead_lettered: 1 }
        );
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::AllSettled { .. }));
        let stats = handle.join();
        assert_eq!(stats.dead_lettered, 1);
        assert_eq!(stats.workflows_abandoned, 1);
        assert_eq!(stats.workflows_completed, 0);
    }
}
