//! The master daemon thread.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dewe_dag::WorkflowId;

use super::bus::{MessageBus, Registry};
use crate::engine::{Action, EngineStats, EnsembleEngine};

/// Master daemon configuration.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// System-wide default job timeout, seconds (paper §III.B).
    pub default_timeout_secs: f64,
    /// How often the master examines running jobs for timeouts.
    pub timeout_scan_interval: Duration,
    /// The master exits once this many workflows have completed
    /// (`None` = run until the bus is shut down).
    pub expected_workflows: Option<usize>,
}

impl Default for MasterConfig {
    fn default() -> Self {
        Self {
            default_timeout_secs: crate::engine::DEFAULT_TIMEOUT_SECS,
            timeout_scan_interval: Duration::from_millis(50),
            expected_workflows: None,
        }
    }
}

/// Progress notifications from the master.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterEvent {
    /// A workflow completed after `makespan_secs`.
    WorkflowCompleted {
        /// Which workflow.
        workflow: WorkflowId,
        /// Submission-to-completion wall seconds.
        makespan_secs: f64,
    },
    /// All expected workflows completed; the master is exiting.
    AllCompleted {
        /// Final engine statistics.
        stats: EngineStats,
    },
}

/// Handle to a running master daemon.
pub struct MasterHandle {
    thread: Option<std::thread::JoinHandle<EngineStats>>,
    /// Receiver for progress events.
    pub events: Receiver<MasterEvent>,
}

impl MasterHandle {
    /// Wait for the master to exit, returning final engine statistics.
    pub fn join(mut self) -> EngineStats {
        self.thread.take().expect("join called once").join().expect("master panicked")
    }
}

/// Spawn the master daemon.
///
/// It pulls the submission topic for new workflows, the ack topic for
/// worker progress, publishes eligible jobs to the dispatch topic, and
/// periodically resubmits timed-out jobs.
pub fn spawn_master(bus: MessageBus, registry: Registry, config: MasterConfig) -> MasterHandle {
    let (tx, rx): (Sender<MasterEvent>, Receiver<MasterEvent>) = unbounded();
    let thread = std::thread::Builder::new()
        .name("dewe-master".into())
        .spawn(move || master_loop(bus, registry, config, tx))
        .expect("spawn master thread");
    MasterHandle { thread: Some(thread), events: rx }
}

fn master_loop(
    bus: MessageBus,
    registry: Registry,
    config: MasterConfig,
    events: Sender<MasterEvent>,
) -> EngineStats {
    let mut engine = EnsembleEngine::with_default_timeout(config.default_timeout_secs);
    let start = Instant::now();
    let mut last_scan = 0.0f64;
    // Reused across iterations so the serving loop does not allocate per
    // ack/scan in steady state.
    let mut actions: Vec<Action> = Vec::new();
    loop {
        let now = start.elapsed().as_secs_f64();

        // 1. Ingest any newly submitted workflows.
        while let Some(sub) = bus.submission.try_pull() {
            let now = start.elapsed().as_secs_f64();
            // Insert into the registry BEFORE publishing dispatches so no
            // worker can observe a job of an unknown workflow.
            let expected_id = WorkflowId::from_index(engine.workflow_count());
            registry.insert(expected_id, Arc::clone(&sub.workflow));
            let id = engine.submit_workflow_into(sub.workflow, now, &mut actions);
            debug_assert_eq!(id, expected_id);
            publish_actions(&bus, &events, &mut actions);
        }

        // 2. Timeout scan at the configured cadence.
        if now - last_scan >= config.timeout_scan_interval.as_secs_f64() {
            last_scan = now;
            engine.check_timeouts_into(now, &mut actions);
            publish_actions(&bus, &events, &mut actions);
        }

        // 3. Exit once the expected workload has completed. (The engine's
        // own `AllCompleted` only covers workflows submitted *so far*; the
        // master must keep serving when more submissions are expected.)
        if let Some(expected) = config.expected_workflows {
            if engine.stats().workflows_completed >= expected {
                let _ = events.send(MasterEvent::AllCompleted { stats: engine.stats() });
                return engine.stats();
            }
        }

        // 4. Wait (briefly) for worker acknowledgments.
        match bus.ack.pull_timeout(config.timeout_scan_interval) {
            Some(ack) => {
                let now = start.elapsed().as_secs_f64();
                engine.on_ack_into(ack, now, &mut actions);
                publish_actions(&bus, &events, &mut actions);
            }
            None => {
                if bus.ack.is_closed() {
                    return engine.stats();
                }
            }
        }
    }
}

/// Publish dispatch actions and forward progress events, draining the
/// caller's reusable buffer.
fn publish_actions(bus: &MessageBus, events: &Sender<MasterEvent>, actions: &mut Vec<Action>) {
    for action in actions.drain(..) {
        match action {
            Action::Dispatch(d) => bus.dispatch.publish(d),
            Action::WorkflowCompleted { workflow, makespan_secs } => {
                let _ = events.send(MasterEvent::WorkflowCompleted { workflow, makespan_secs });
            }
            Action::AllCompleted => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AckKind, AckMsg};
    use dewe_dag::WorkflowBuilder;

    /// Drive the master with a hand-rolled "worker" on the test thread.
    #[test]
    fn master_runs_a_chain_to_completion() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig {
                timeout_scan_interval: Duration::from_millis(10),
                expected_workflows: Some(1),
                ..MasterConfig::default()
            },
        );

        let mut b = WorkflowBuilder::new("chain");
        let a = b.job("a", "t", 1.0).build();
        let c = b.job("b", "t", 1.0).build();
        b.edge(a, c);
        let wf = Arc::new(b.finish().unwrap());
        super::super::submit(&bus, "chain", wf);

        // Act as the sole worker.
        for _ in 0..2 {
            let d = bus.dispatch.pull_timeout(Duration::from_secs(5)).expect("dispatch");
            assert!(registry.get(d.job.workflow).is_some(), "registry populated first");
            bus.ack.publish(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Running,
                attempt: d.attempt,
            });
            bus.ack.publish(AckMsg {
                job: d.job,
                worker: 0,
                kind: AckKind::Completed,
                attempt: d.attempt,
            });
        }

        // Completion event arrives, then shut the master down.
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::WorkflowCompleted { .. }));
        let ev = handle.events.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, MasterEvent::AllCompleted { .. }));
        bus.shutdown();
        let stats = handle.join();
        assert_eq!(stats.jobs_completed, 2);
        assert_eq!(stats.workflows_completed, 1);
    }

    #[test]
    fn master_resubmits_unacknowledged_job() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let handle = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig {
                default_timeout_secs: 0.05,
                timeout_scan_interval: Duration::from_millis(10),
                expected_workflows: Some(1),
            },
        );
        let mut b = WorkflowBuilder::new("one");
        b.job("a", "t", 1.0).build();
        super::super::submit(&bus, "one", Arc::new(b.finish().unwrap()));

        // First dispatch: check it out (Running ack) then crash — no
        // completion ever arrives, so the checkout timeout must fire.
        let d1 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d1.attempt, 1);
        bus.ack.publish(AckMsg { job: d1.job, worker: 0, kind: AckKind::Running, attempt: 1 });
        // Timeout fires; a resubmission appears.
        let d2 = bus.dispatch.pull_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d2.attempt, 2);
        // Complete it this time.
        bus.ack.publish(AckMsg { job: d2.job, worker: 1, kind: AckKind::Running, attempt: 2 });
        bus.ack.publish(AckMsg { job: d2.job, worker: 1, kind: AckKind::Completed, attempt: 2 });
        let stats = handle.join();
        assert_eq!(stats.resubmissions, 1);
        assert_eq!(stats.workflows_completed, 1);
    }
}
