//! Worker liveness: registration, heartbeats, leases, and requeue.
//!
//! The paper runs workers on rented cloud VMs, where nodes disappear
//! mid-job (spot revocation, VM failure). The master therefore cannot
//! assume every dispatched job is eventually acked by a live worker: it
//! keeps a [`LivenessTable`] with one lease per worker, renewed by
//! heartbeats (and by any accepted ack — a busy worker is alive even if
//! its heartbeat thread is starved). A worker silent past its lease is
//! **expired**: its in-flight jobs are requeued through the existing
//! retry/attempt machinery as synthetic `Failed` acks, and any ack it
//! sends later (a zombie that was merely stalled) is rejected until it
//! proves liveness again.
//!
//! ## Lifecycle state machine
//!
//! ```text
//!             Register/Heartbeat/ack           Drain
//! (unknown) ───────────────────────▶ Live ───────────▶ Draining
//!                                     │ ▲                 │   │
//!                         lease lapse │ │ Heartbeat/      │   │ last
//!                                     ▼ │ Register        │   │ assignment
//!                                  Expired ◀──────────────┘   │ cleared
//!                                         (lease lapse        ▼
//!                                          mid-drain)      Drained
//! ```
//!
//! * Generations distinguish incarnations of a worker id. A message with
//!   a *higher* generation supersedes the old incarnation (its jobs are
//!   requeued immediately — faster than waiting out the lease); a lower
//!   generation is a zombie and is ignored.
//! * An `Expired` worker that heartbeats again is revived to `Live`:
//!   rejecting its acks forever would blackhole every job it pulls after
//!   resuming. Acks sent *while* expired stay rejected — the requeue
//!   already re-dispatched those jobs, and the engine's attempt check
//!   discards any stale `Failed` that slips through.
//! * `Draining` workers keep their lease (they still heartbeat and must
//!   finish their current jobs) but the caller should stop routing new
//!   work to them; when their last assignment clears they are `Drained`.
//!
//! The table is pure (no threads, no clocks, no IO): the master drives
//! it from its serve loop, the journal replays it for recovery, and the
//! property tests drive it directly.

use std::collections::BTreeMap;

use dewe_dag::EnsembleJobId;

use crate::protocol::{AckKind, AckMsg, LifecycleKind, LifecycleMsg};

/// Sentinel worker id for master-synthesized requeue acks. Acks carrying
/// it bypass the per-worker lease bookkeeping entirely (they are engine
/// inputs manufactured by the master, not traffic from a real worker) —
/// both live and during journal replay, which is what keeps replayed
/// liveness state identical to pre-crash state.
pub const REQUEUE_WORKER: u32 = u32::MAX;

/// Phase of a worker's lifecycle (see the module-level state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPhase {
    /// Lease held; eligible for dispatch.
    Live,
    /// Announced shutdown; finishing current jobs, no new dispatch.
    Draining,
    /// Lease lapsed; in-flight jobs requeued, acks rejected.
    Expired,
    /// Drain finished: no assignments left; the worker may exit.
    Drained,
}

impl WorkerPhase {
    /// Compact code for the master's write-ahead journal.
    pub fn code(self) -> u8 {
        match self {
            WorkerPhase::Live => 0,
            WorkerPhase::Draining => 1,
            WorkerPhase::Expired => 2,
            WorkerPhase::Drained => 3,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(WorkerPhase::Live),
            1 => Some(WorkerPhase::Draining),
            2 => Some(WorkerPhase::Expired),
            3 => Some(WorkerPhase::Drained),
            _ => None,
        }
    }
}

/// Fault-plane counters kept by the master, alongside the engine's
/// [`EngineStats`](crate::EngineStats).
///
/// `workers_expired` counts lease lapses only; a fast restart that
/// supersedes its old incarnation by generation requeues jobs (counted
/// in `jobs_requeued_on_expiry` — the old lease is force-ended) without
/// counting as an expiry. Rejected acks are dropped *before* journaling
/// (rejected input is not engine input), so `stale_acks_rejected` does
/// not survive a master restart; every other counter is reconstructed
/// by journal replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MasterStats {
    /// Worker incarnations granted a lease (explicit or implicit).
    pub workers_registered: u64,
    /// Leases that lapsed with the worker silent.
    pub workers_expired: u64,
    /// In-flight jobs requeued because their worker's lease ended
    /// (expiry, or supersession by a newer incarnation).
    pub jobs_requeued_on_expiry: u64,
    /// Acks rejected because their worker was expired at arrival.
    pub stale_acks_rejected: u64,
    /// Graceful drains that ran to completion.
    pub drains_completed: u64,
    /// Workers expired after a master restart without ever making
    /// contact — the journal references them but they never came back.
    pub workers_lost_in_recovery: u64,
    /// Coalesced dispatch runs (length ≥ 2) published as one batch.
    /// Zero when dispatch batching is disabled. Maintained by the serve
    /// loop, not the liveness table, and not journaled.
    pub dispatch_batches: u64,
    /// Total dispatches that left inside those coalesced runs, so the
    /// mean per-poll-cycle batch size is
    /// `batched_dispatches / dispatch_batches`. Like
    /// [`dispatch_batches`](Self::dispatch_batches), serve-loop-owned
    /// and not journaled.
    pub batched_dispatches: u64,
    /// Deadline-wheel cascade re-files performed by the engine's timer
    /// (see `EngineCore::timer_cascades`). Zero under the heap backend.
    pub timer_cascades: u64,
}

/// One row of a liveness snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerView {
    /// Worker id.
    pub worker: u32,
    /// Current incarnation.
    pub generation: u32,
    /// Current phase.
    pub phase: WorkerPhase,
}

/// A state change the master must journal (`W` record) and may act on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessTransition {
    /// Worker id.
    pub worker: u32,
    /// Incarnation the transition applies to.
    pub generation: u32,
    /// Phase entered.
    pub phase: WorkerPhase,
    /// Engine time of the transition.
    pub at: f64,
    /// True when this expiry hit a worker that never made contact since
    /// the master recovered — the caller should emit a structured
    /// warning (the journal referenced a worker that never came back).
    /// Not journaled.
    pub lost_in_recovery: bool,
}

/// An in-flight job to requeue after its worker's lease ended. The
/// master feeds it back through the retry machinery as a synthetic
/// `Failed` ack from [`REQUEUE_WORKER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequeueEntry {
    /// The job.
    pub job: EnsembleJobId,
    /// The attempt the dead worker held.
    pub attempt: u32,
    /// The worker that held it (diagnostic).
    pub worker: u32,
}

impl RequeueEntry {
    /// The synthetic `Failed` ack that requeues this job.
    pub fn as_failed_ack(&self) -> AckMsg {
        AckMsg {
            job: self.job,
            worker: REQUEUE_WORKER,
            kind: AckKind::Failed,
            attempt: self.attempt,
        }
    }
}

struct WorkerEntry {
    generation: u32,
    phase: WorkerPhase,
    /// Lease expiry instant (engine time).
    deadline: f64,
    /// False between a master recovery and the worker's first
    /// post-recovery message; an expiry in that window means the worker
    /// never came back at all.
    seen_since_recovery: bool,
}

/// The master's per-worker lease table. Pure state machine: all inputs
/// arrive through [`on_lifecycle`](Self::on_lifecycle),
/// [`admit_ack`](Self::admit_ack) and
/// [`expire_due`](Self::expire_due); outputs are returned transitions
/// (for journaling) and requeue entries (for the retry machinery).
pub struct LivenessTable {
    lease_secs: f64,
    workers: BTreeMap<u32, WorkerEntry>,
    /// Current owner of each checked-out job: the latest worker that
    /// sent `Running` for it, with the attempt it holds.
    assignments: BTreeMap<EnsembleJobId, (u32, u32)>,
    stats: MasterStats,
}

impl LivenessTable {
    /// Fresh table; workers silent for `lease_secs` are expired.
    pub fn new(lease_secs: f64) -> Self {
        Self {
            lease_secs,
            workers: BTreeMap::new(),
            assignments: BTreeMap::new(),
            stats: MasterStats::default(),
        }
    }

    /// The lease duration.
    pub fn lease_secs(&self) -> f64 {
        self.lease_secs
    }

    /// Fault-plane counters.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Current (worker, generation, phase) rows, ordered by worker id.
    pub fn snapshot(&self) -> Vec<WorkerView> {
        self.workers
            .iter()
            .map(|(&worker, e)| WorkerView { worker, generation: e.generation, phase: e.phase })
            .collect()
    }

    /// Jobs currently assigned to `worker`.
    pub fn assignments_of(&self, worker: u32) -> Vec<(EnsembleJobId, u32)> {
        self.assignments
            .iter()
            .filter(|(_, &(w, _))| w == worker)
            .map(|(&job, &(_, attempt))| (job, attempt))
            .collect()
    }

    /// Total checked-out jobs tracked.
    pub fn assignment_count(&self) -> usize {
        self.assignments.len()
    }

    /// The `(worker, attempt)` currently holding `job`, if checked out.
    pub fn assignment(&self, job: EnsembleJobId) -> Option<(u32, u32)> {
        self.assignments.get(&job).copied()
    }

    /// True when `worker` holds a live (non-expired) lease and is not
    /// draining — i.e. the master may keep counting on it.
    pub fn is_dispatchable(&self, worker: u32) -> bool {
        matches!(self.workers.get(&worker), Some(e) if e.phase == WorkerPhase::Live)
    }

    fn maybe_drained(&mut self, worker: u32, at: f64, transitions: &mut Vec<LivenessTransition>) {
        let has_jobs = self.assignments.values().any(|&(w, _)| w == worker);
        if has_jobs {
            return;
        }
        if let Some(e) = self.workers.get_mut(&worker) {
            if e.phase == WorkerPhase::Draining {
                e.phase = WorkerPhase::Drained;
                self.stats.drains_completed += 1;
                transitions.push(LivenessTransition {
                    worker,
                    generation: e.generation,
                    phase: WorkerPhase::Drained,
                    at,
                    lost_in_recovery: false,
                });
            }
        }
    }

    fn take_assignments(&mut self, worker: u32, requeue: &mut Vec<RequeueEntry>) -> u64 {
        let mut taken = 0u64;
        self.assignments.retain(|&job, &mut (w, attempt)| {
            if w == worker {
                requeue.push(RequeueEntry { job, attempt, worker });
                taken += 1;
                false
            } else {
                true
            }
        });
        taken
    }

    /// Process a lifecycle message. State changes are appended to
    /// `transitions` (journal them as `W` records); jobs freed by a
    /// superseding re-registration are appended to `requeue`.
    pub fn on_lifecycle(
        &mut self,
        msg: &LifecycleMsg,
        now: f64,
        transitions: &mut Vec<LivenessTransition>,
        requeue: &mut Vec<RequeueEntry>,
    ) {
        let lease = self.lease_secs;
        match self.workers.get_mut(&msg.worker) {
            None => {
                let phase = match msg.kind {
                    LifecycleKind::Register | LifecycleKind::Heartbeat => WorkerPhase::Live,
                    LifecycleKind::Drain => WorkerPhase::Draining,
                };
                self.workers.insert(
                    msg.worker,
                    WorkerEntry {
                        generation: msg.generation,
                        phase,
                        deadline: now + lease,
                        seen_since_recovery: true,
                    },
                );
                self.stats.workers_registered += 1;
                transitions.push(LivenessTransition {
                    worker: msg.worker,
                    generation: msg.generation,
                    phase,
                    at: now,
                    lost_in_recovery: false,
                });
                if phase == WorkerPhase::Draining {
                    self.maybe_drained(msg.worker, now, transitions);
                }
            }
            Some(e) if msg.generation < e.generation => {
                // Zombie incarnation: ignore.
            }
            Some(e) if msg.generation > e.generation => {
                // A newer incarnation supersedes the old one: requeue its
                // jobs now instead of waiting out the lease.
                e.generation = msg.generation;
                e.phase = match msg.kind {
                    LifecycleKind::Register | LifecycleKind::Heartbeat => WorkerPhase::Live,
                    LifecycleKind::Drain => WorkerPhase::Draining,
                };
                e.deadline = now + lease;
                e.seen_since_recovery = true;
                let phase = e.phase;
                let requeued = self.take_assignments(msg.worker, requeue);
                self.stats.jobs_requeued_on_expiry += requeued;
                self.stats.workers_registered += 1;
                transitions.push(LivenessTransition {
                    worker: msg.worker,
                    generation: msg.generation,
                    phase,
                    at: now,
                    lost_in_recovery: false,
                });
                if phase == WorkerPhase::Draining {
                    self.maybe_drained(msg.worker, now, transitions);
                }
            }
            Some(e) => {
                // Same incarnation.
                e.seen_since_recovery = true;
                match (msg.kind, e.phase) {
                    (_, WorkerPhase::Drained) => {}
                    (LifecycleKind::Register | LifecycleKind::Heartbeat, WorkerPhase::Expired) => {
                        // Revival: a stalled worker proved liveness again.
                        e.phase = WorkerPhase::Live;
                        e.deadline = now + lease;
                        transitions.push(LivenessTransition {
                            worker: msg.worker,
                            generation: msg.generation,
                            phase: WorkerPhase::Live,
                            at: now,
                            lost_in_recovery: false,
                        });
                    }
                    (LifecycleKind::Register | LifecycleKind::Heartbeat, _) => {
                        e.deadline = now + lease;
                    }
                    (LifecycleKind::Drain, WorkerPhase::Live) => {
                        e.phase = WorkerPhase::Draining;
                        e.deadline = now + lease;
                        transitions.push(LivenessTransition {
                            worker: msg.worker,
                            generation: msg.generation,
                            phase: WorkerPhase::Draining,
                            at: now,
                            lost_in_recovery: false,
                        });
                        self.maybe_drained(msg.worker, now, transitions);
                    }
                    (LifecycleKind::Drain, _) => {}
                }
            }
        }
    }

    /// Decide whether to accept an ack, updating assignment bookkeeping
    /// when accepted. Returns `false` for acks from an expired worker
    /// (the zombie-fencing check): the caller must drop them without
    /// journaling or feeding the engine. A drain that completes as a
    /// side effect (last assignment cleared) lands in `transitions`.
    pub fn admit_ack(
        &mut self,
        ack: &AckMsg,
        now: f64,
        transitions: &mut Vec<LivenessTransition>,
    ) -> bool {
        if ack.worker != REQUEUE_WORKER {
            let lease = self.lease_secs;
            match self.workers.get_mut(&ack.worker) {
                Some(e) if e.phase == WorkerPhase::Expired => {
                    self.stats.stale_acks_rejected += 1;
                    return false;
                }
                Some(e) => {
                    // An accepted ack renews the lease (a busy worker is
                    // alive even if its heartbeat thread is starved) but
                    // does NOT count as post-recovery contact: acks
                    // queued on the bus before a master crash drain into
                    // the replacement right after recovery, so only
                    // fresh lifecycle traffic proves the worker itself
                    // came back.
                    if matches!(e.phase, WorkerPhase::Live | WorkerPhase::Draining) {
                        e.deadline = now + lease;
                    }
                }
                None => {
                    // First contact without registration: grant an
                    // implicit lease so this worker's jobs are protected.
                    // (Workers are expected to heartbeat whenever the
                    // master runs with leases enabled.)
                    self.workers.insert(
                        ack.worker,
                        WorkerEntry {
                            generation: 0,
                            phase: WorkerPhase::Live,
                            deadline: now + lease,
                            seen_since_recovery: true,
                        },
                    );
                    self.stats.workers_registered += 1;
                }
            }
        }
        match ack.kind {
            AckKind::Running => {
                let old = self.assignments.insert(ack.job, (ack.worker, ack.attempt));
                if let Some((ow, _)) = old {
                    if ow != ack.worker {
                        self.maybe_drained(ow, now, transitions);
                    }
                }
            }
            AckKind::Completed | AckKind::Failed => {
                if let Some((ow, _)) = self.assignments.remove(&ack.job) {
                    self.maybe_drained(ow, now, transitions);
                }
            }
        }
        true
    }

    /// Expire every worker whose lease lapsed at or before `now`,
    /// appending its freed jobs to `requeue` and the `Expired`
    /// transitions (with `lost_in_recovery` set where applicable) to
    /// `transitions`.
    pub fn expire_due(
        &mut self,
        now: f64,
        transitions: &mut Vec<LivenessTransition>,
        requeue: &mut Vec<RequeueEntry>,
    ) {
        let due: Vec<u32> = self
            .workers
            .iter()
            .filter(|(_, e)| {
                matches!(e.phase, WorkerPhase::Live | WorkerPhase::Draining) && e.deadline <= now
            })
            .map(|(&w, _)| w)
            .collect();
        for worker in due {
            let requeued = self.take_assignments(worker, requeue);
            let e = self.workers.get_mut(&worker).expect("entry exists");
            e.phase = WorkerPhase::Expired;
            let lost = !e.seen_since_recovery;
            let generation = e.generation;
            self.stats.workers_expired += 1;
            self.stats.jobs_requeued_on_expiry += requeued;
            if lost {
                self.stats.workers_lost_in_recovery += 1;
            }
            transitions.push(LivenessTransition {
                worker,
                generation,
                phase: WorkerPhase::Expired,
                at: now,
                lost_in_recovery: lost,
            });
        }
    }

    /// Apply a journaled transition during replay. Mirrors the live
    /// counting: a generation bump retires the old incarnation's
    /// assignments, an `Expired` record drops the worker's assignments
    /// (the synthetic requeue acks follow in the journal), `Drained`
    /// counts a completed drain.
    pub fn apply_transition(&mut self, worker: u32, generation: u32, phase: WorkerPhase, at: f64) {
        let lease = self.lease_secs;
        match self.workers.get_mut(&worker) {
            None => {
                self.workers.insert(
                    worker,
                    WorkerEntry {
                        generation,
                        phase,
                        deadline: at + lease,
                        seen_since_recovery: true,
                    },
                );
                match phase {
                    WorkerPhase::Expired => self.stats.workers_expired += 1,
                    WorkerPhase::Drained => self.stats.drains_completed += 1,
                    _ => self.stats.workers_registered += 1,
                }
            }
            Some(e) => {
                if generation > e.generation {
                    e.generation = generation;
                    e.phase = phase;
                    e.deadline = at + lease;
                    let mut dropped = Vec::new();
                    let requeued = self.take_assignments(worker, &mut dropped);
                    self.stats.jobs_requeued_on_expiry += requeued;
                    self.stats.workers_registered += 1;
                } else {
                    let was = e.phase;
                    e.phase = phase;
                    e.deadline = at + lease;
                    match phase {
                        WorkerPhase::Expired => {
                            let mut dropped = Vec::new();
                            let requeued = self.take_assignments(worker, &mut dropped);
                            self.stats.workers_expired += 1;
                            self.stats.jobs_requeued_on_expiry += requeued;
                        }
                        WorkerPhase::Drained if was != WorkerPhase::Drained => {
                            self.stats.drains_completed += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Grant every live worker a grace lease after a master recovery:
    /// deadlines restart at `resume_at` + lease, and contact tracking
    /// resets so workers that never come back are flagged
    /// (`lost_in_recovery`) when the grace lease lapses.
    pub fn grant_grace(&mut self, resume_at: f64) {
        for e in self.workers.values_mut() {
            if matches!(e.phase, WorkerPhase::Live | WorkerPhase::Draining) {
                e.deadline = resume_at + self.lease_secs;
                e.seen_since_recovery = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{JobId, WorkflowId};

    fn job(wf: u32, j: u32) -> EnsembleJobId {
        EnsembleJobId::new(WorkflowId(wf), JobId(j))
    }

    fn hb(worker: u32, generation: u32) -> LifecycleMsg {
        LifecycleMsg { worker, generation, kind: LifecycleKind::Heartbeat }
    }

    fn running(worker: u32, wf: u32, j: u32, attempt: u32) -> AckMsg {
        AckMsg { job: job(wf, j), worker, kind: AckKind::Running, attempt }
    }

    fn completed(worker: u32, wf: u32, j: u32, attempt: u32) -> AckMsg {
        AckMsg { job: job(wf, j), worker, kind: AckKind::Completed, attempt }
    }

    #[test]
    fn silence_expires_and_requeues_then_acks_are_fenced() {
        let mut t = LivenessTable::new(1.0);
        let (mut tr, mut rq) = (Vec::new(), Vec::new());
        t.on_lifecycle(&hb(7, 0), 0.0, &mut tr, &mut rq);
        assert!(t.admit_ack(&running(7, 0, 0, 1), 0.1, &mut tr));
        assert!(t.admit_ack(&running(7, 0, 1, 1), 0.2, &mut tr));
        // Heartbeat at 0.5 renews: nothing expires at 1.0.
        t.on_lifecycle(&hb(7, 0), 0.5, &mut tr, &mut rq);
        t.expire_due(1.2, &mut tr, &mut rq);
        assert!(rq.is_empty());
        // Silence past the lease: both jobs requeued, acks rejected.
        t.expire_due(1.6, &mut tr, &mut rq);
        assert_eq!(rq.len(), 2);
        assert_eq!(t.stats().workers_expired, 1);
        assert_eq!(t.stats().jobs_requeued_on_expiry, 2);
        assert!(!t.admit_ack(&completed(7, 0, 0, 1), 1.7, &mut tr));
        assert_eq!(t.stats().stale_acks_rejected, 1);
        // The requeue ack itself always passes the fence.
        assert!(t.admit_ack(&rq[0].as_failed_ack(), 1.7, &mut tr));
        // A heartbeat revives the worker; its acks flow again.
        t.on_lifecycle(&hb(7, 0), 2.0, &mut tr, &mut rq);
        assert!(t.is_dispatchable(7));
        assert!(t.admit_ack(&running(7, 0, 2, 2), 2.1, &mut tr));
    }

    #[test]
    fn drain_completes_when_last_assignment_clears() {
        let mut t = LivenessTable::new(10.0);
        let (mut tr, mut rq) = (Vec::new(), Vec::new());
        t.on_lifecycle(&hb(3, 0), 0.0, &mut tr, &mut rq);
        assert!(t.admit_ack(&running(3, 0, 0, 1), 0.1, &mut tr));
        tr.clear();
        t.on_lifecycle(
            &LifecycleMsg { worker: 3, generation: 0, kind: LifecycleKind::Drain },
            0.2,
            &mut tr,
            &mut rq,
        );
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].phase, WorkerPhase::Draining);
        assert!(!t.is_dispatchable(3));
        tr.clear();
        assert!(t.admit_ack(&completed(3, 0, 0, 1), 0.5, &mut tr));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].phase, WorkerPhase::Drained);
        assert_eq!(t.stats().drains_completed, 1);
    }

    #[test]
    fn newer_generation_supersedes_and_requeues_immediately() {
        let mut t = LivenessTable::new(10.0);
        let (mut tr, mut rq) = (Vec::new(), Vec::new());
        t.on_lifecycle(&hb(1, 0), 0.0, &mut tr, &mut rq);
        assert!(t.admit_ack(&running(1, 0, 0, 1), 0.1, &mut tr));
        t.on_lifecycle(&hb(1, 1), 0.5, &mut tr, &mut rq);
        assert_eq!(rq, vec![RequeueEntry { job: job(0, 0), attempt: 1, worker: 1 }]);
        assert_eq!(t.stats().jobs_requeued_on_expiry, 1);
        assert_eq!(t.stats().workers_expired, 0, "supersession is not a lease expiry");
        // The old incarnation is now the zombie: its messages are ignored.
        tr.clear();
        t.on_lifecycle(&hb(1, 0), 0.6, &mut tr, &mut rq);
        assert!(tr.is_empty());
        assert_eq!(
            t.snapshot(),
            vec![WorkerView { worker: 1, generation: 1, phase: WorkerPhase::Live }]
        );
    }

    #[test]
    fn replaying_transitions_rebuilds_the_snapshot() {
        // Drive a live table; apply its emitted transitions (plus the
        // accepted acks) to a fresh table; snapshots must match — the
        // property journal replay depends on.
        let mut live = LivenessTable::new(1.0);
        let (mut tr, mut rq) = (Vec::new(), Vec::new());
        let acks = [running(5, 0, 0, 1), running(6, 0, 1, 1), completed(6, 0, 1, 1)];
        live.on_lifecycle(&hb(5, 0), 0.0, &mut tr, &mut rq);
        live.on_lifecycle(&hb(6, 0), 0.0, &mut tr, &mut rq);
        for (i, a) in acks.iter().enumerate() {
            assert!(live.admit_ack(a, 0.1 + i as f64 * 0.1, &mut tr));
        }
        live.expire_due(2.0, &mut tr, &mut rq); // both silent: expired

        let mut replayed = LivenessTable::new(1.0);
        let mut tr2 = Vec::new();
        for t in &tr {
            replayed.apply_transition(t.worker, t.generation, t.phase, t.at);
        }
        for (i, a) in acks.iter().enumerate() {
            replayed.admit_ack(a, 0.1 + i as f64 * 0.1, &mut tr2);
        }
        assert_eq!(replayed.snapshot(), live.snapshot());
        assert_eq!(replayed.stats().workers_expired, live.stats().workers_expired);
    }

    #[test]
    fn grace_lease_flags_workers_that_never_come_back() {
        let mut t = LivenessTable::new(1.0);
        let (mut tr, mut rq) = (Vec::new(), Vec::new());
        t.on_lifecycle(&hb(1, 0), 0.0, &mut tr, &mut rq);
        t.on_lifecycle(&hb(2, 0), 0.0, &mut tr, &mut rq);
        assert!(t.admit_ack(&running(2, 0, 0, 1), 0.1, &mut tr));
        t.grant_grace(5.0);
        // Worker 1 heartbeats after recovery; worker 2 stays dead.
        t.on_lifecycle(&hb(1, 0), 5.5, &mut tr, &mut rq);
        tr.clear();
        t.expire_due(6.2, &mut tr, &mut rq);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].worker, 2);
        assert!(tr[0].lost_in_recovery);
        assert_eq!(t.stats().workers_lost_in_recovery, 1);
        assert_eq!(rq, vec![RequeueEntry { job: job(0, 0), attempt: 1, worker: 2 }]);
    }
}
