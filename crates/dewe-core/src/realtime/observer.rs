//! Realtime observability: periodic sampling of the message bus.
//!
//! The paper's monitoring runs mpstat/iostat on every node; the threaded
//! runtime's equivalent observable state is the broker itself — dispatch
//! backlog, acknowledgment flow, submission arrivals. [`spawn_observer`]
//! samples those counters on a fixed cadence into [`TimeSeries`], giving
//! realtime runs the same queue-depth visibility the simulator reports
//! (e.g. to eyeball when a deployment is worker-starved versus
//! master-bound).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dewe_metrics::TimeSeries;
use parking_lot::Mutex;

use super::bus::MessageBus;

/// Sampled series, shared with the observer thread.
#[derive(Debug, Default)]
pub struct BusSeries {
    /// Dispatch-topic depth (jobs published, not yet pulled).
    pub dispatch_depth: TimeSeries,
    /// Cumulative jobs delivered to workers.
    pub dispatched_total: TimeSeries,
    /// Cumulative acknowledgments consumed by the master.
    pub acks_total: TimeSeries,
}

/// Handle to a running observer.
pub struct ObserverHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    series: Arc<Mutex<BusSeries>>,
}

impl ObserverHandle {
    /// Snapshot the series collected so far.
    pub fn snapshot(&self) -> BusSeries {
        let s = self.series.lock();
        BusSeries {
            dispatch_depth: s.dispatch_depth.clone(),
            dispatched_total: s.dispatched_total.clone(),
            acks_total: s.acks_total.clone(),
        }
    }

    /// Stop sampling and return the final series.
    pub fn stop(mut self) -> BusSeries {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let s = self.series.lock();
        BusSeries {
            dispatch_depth: s.dispatch_depth.clone(),
            dispatched_total: s.dispatched_total.clone(),
            acks_total: s.acks_total.clone(),
        }
    }
}

impl Drop for ObserverHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start sampling the bus every `interval`.
pub fn spawn_observer(bus: MessageBus, interval: Duration) -> ObserverHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let series = Arc::new(Mutex::new(BusSeries {
        dispatch_depth: TimeSeries::new("dispatch_depth"),
        dispatched_total: TimeSeries::new("dispatched_total"),
        acks_total: TimeSeries::new("acks_total"),
    }));
    let thread = {
        let stop = Arc::clone(&stop);
        let series = Arc::clone(&series);
        std::thread::Builder::new()
            .name("dewe-observer".into())
            .spawn(move || {
                let start = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    let t = start.elapsed().as_secs_f64();
                    let dispatch = bus.dispatch.stats();
                    let ack = bus.ack.stats();
                    {
                        let mut s = series.lock();
                        s.dispatch_depth.push(t, dispatch.depth as f64);
                        s.dispatched_total.push(t, dispatch.delivered as f64);
                        s.acks_total.push(t, ack.delivered as f64);
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn observer thread")
    };
    ObserverHandle { stop, thread: Some(thread), series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realtime::{
        spawn_master, spawn_worker, submit, MasterConfig, NoopRunner, Registry, SleepRunner,
        WorkerConfig,
    };
    use dewe_dag::WorkflowBuilder;

    #[test]
    fn observer_samples_bus_counters() {
        let bus = MessageBus::new();
        let observer = spawn_observer(bus.clone(), Duration::from_millis(5));
        // Publish directly: depth should become visible.
        for i in 0..20 {
            bus.dispatch.publish(crate::protocol::DispatchMsg {
                job: dewe_dag::EnsembleJobId::new(dewe_dag::WorkflowId(0), dewe_dag::JobId(i)),
                attempt: 1,
            });
        }
        std::thread::sleep(Duration::from_millis(40));
        let series = observer.stop();
        assert!(!series.dispatch_depth.is_empty());
        assert!(series.dispatch_depth.max() >= 20.0);
    }

    #[test]
    fn observer_tracks_a_full_run() {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let observer = spawn_observer(bus.clone(), Duration::from_millis(2));
        let master = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder().expected_workflows(1).build(),
        );
        let worker = spawn_worker(
            bus.clone(),
            registry,
            Arc::new(SleepRunner::new(0.0002)),
            WorkerConfig { worker_id: 0, slots: 2, ..WorkerConfig::default() },
        );
        let mut b = WorkflowBuilder::new("obs");
        for i in 0..30 {
            b.job(format!("j{i}"), "t", 50.0).build(); // 10 ms each
        }
        submit(&bus, "obs", Arc::new(b.finish().unwrap()));
        let stats = master.join();
        worker.stop();
        let series = observer.stop();
        assert_eq!(stats.jobs_completed, 30);
        // All 30 dispatches and 60 acks eventually observed.
        assert!(series.dispatched_total.max() >= 30.0);
        assert!(series.acks_total.max() >= 59.0, "acks {}", series.acks_total.max());
        // The backlog was visible at some point (2 slots, 30 jobs).
        assert!(series.dispatch_depth.max() >= 1.0);
    }

    #[test]
    fn drop_stops_the_thread() {
        let bus = MessageBus::new();
        let observer = spawn_observer(bus, Duration::from_millis(1));
        drop(observer); // must not hang or panic
        let _ = NoopRunner; // silence unused import on some cfgs
    }
}
