//! Seeded fault injection for the *threaded* realtime transport.
//!
//! [`ChaosConfig`] has always modeled drop / duplicate / **delay**, but
//! until now only the discrete-event simulator applied chaos — the
//! realtime master and workers talked over plain [`MessageBus`] topics.
//! [`ChaosLink`] closes that gap: it interposes a pair of pump threads
//! between a master-side bus and a worker-side bus, pushing every dispatch
//! and acknowledgment through a [`ChaosTopic`] so all three fault kinds —
//! including delay, which needs real wall-clock holds and a periodic
//! flush, something a passive wrapper cannot provide on a sparse topic —
//! act on live daemon traffic:
//!
//! ```text
//!  master ──▶ master_bus.dispatch ──▶ [pump: chaos] ──▶ worker_bus.dispatch ──▶ workers
//!  master ◀── master_bus.ack      ◀── [pump: chaos] ◀── worker_bus.ack      ◀── workers
//! ```
//!
//! The submission topic is shared untouched (submissions are the test
//! harness's own inputs). Delayed messages are parked inside the chaos
//! wrapper and flushed by the pump's periodic tick, so a hold expires on
//! time even when no new traffic arrives to piggyback on. Decisions come
//! from the same pure seeded [`ChaosDecider`] the simulator uses, and an
//! optional [`ChaosTrace`] captures the applied fault schedule for
//! post-mortem replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dewe_mq::chaos::streams;
use dewe_mq::{ChaosConfig, ChaosDecider, ChaosStats, ChaosTopic, ChaosTrace, Topic};

use super::bus::MessageBus;

/// A chaos-injecting interposer between the master's bus and the workers'
/// bus. Dropping faults vanish messages, duplicates deliver twice, delays
/// hold messages back `delay_secs` of real wall time.
pub struct ChaosLink {
    /// The bus the master daemon must be spawned on.
    pub master_bus: MessageBus,
    /// The bus worker daemons must be spawned on.
    pub worker_bus: MessageBus,
    dispatch_chaos: ChaosTopic<crate::protocol::DispatchMsg>,
    ack_chaos: ChaosTopic<crate::protocol::AckMsg>,
    pumps: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl ChaosLink {
    /// Interpose seeded chaos between a fresh master-side and worker-side
    /// bus pair.
    pub fn new(cfg: ChaosConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Like [`new`](Self::new), additionally recording every applied
    /// fault decision to `trace` (dispatch and ack streams share it).
    pub fn traced(cfg: ChaosConfig, trace: ChaosTrace) -> Self {
        Self::build(cfg, Some(trace))
    }

    fn build(cfg: ChaosConfig, trace: Option<ChaosTrace>) -> Self {
        let master_bus = MessageBus::new();
        // Workers get their own dispatch/ack topics; submission passes
        // through untouched (it is the harness's own input channel), as
        // does the lifecycle topic — heartbeat loss is injected by the
        // fault plane (worker stalls), not by message chaos, so lease
        // expiries stay deterministic per scenario.
        let worker_bus = MessageBus {
            submission: master_bus.submission.clone(),
            dispatch: Topic::new(),
            dispatch_shards: Vec::new(),
            ack: Topic::new(),
            lifecycle: master_bus.lifecycle.clone(),
        };
        let decider = Arc::new(ChaosDecider::new(cfg));
        let mut dispatch_chaos =
            ChaosTopic::new(worker_bus.dispatch.clone(), Arc::clone(&decider), streams::DISPATCH);
        let mut ack_chaos =
            ChaosTopic::new(master_bus.ack.clone(), Arc::clone(&decider), streams::ACK);
        if let Some(t) = trace {
            dispatch_chaos = dispatch_chaos.with_trace(t.clone());
            ack_chaos = ack_chaos.with_trace(t);
        }
        // The pump tick bounds both how late a due delayed message can
        // flush and how long shutdown takes; well under delay_secs keeps
        // holds accurate without busy-spinning.
        let tick = Duration::from_secs_f64((cfg.delay_secs / 4.0).clamp(0.001, 0.005));
        let stop = Arc::new(AtomicBool::new(false));
        let pumps = vec![
            spawn_pump(
                "dewe-chaos-dispatch",
                master_bus.dispatch.clone(),
                dispatch_chaos.clone(),
                Arc::clone(&stop),
                tick,
            ),
            spawn_pump(
                "dewe-chaos-ack",
                worker_bus.ack.clone(),
                ack_chaos.clone(),
                Arc::clone(&stop),
                tick,
            ),
        ];
        Self { master_bus, worker_bus, dispatch_chaos, ack_chaos, pumps, stop }
    }

    /// Injection counters for the master → worker dispatch direction.
    pub fn dispatch_stats(&self) -> ChaosStats {
        self.dispatch_chaos.stats()
    }

    /// Injection counters for the worker → master ack direction.
    pub fn ack_stats(&self) -> ChaosStats {
        self.ack_chaos.stats()
    }

    /// Tear the link down: closes both buses, stops the pumps (still-held
    /// delayed messages are discarded — the crash semantics of a fabric
    /// going away) and joins them.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.master_bus.shutdown();
        self.worker_bus.shutdown();
        for pump in self.pumps {
            pump.join().expect("chaos pump panicked");
        }
    }
}

/// Move messages from `upstream` through `chaos` (whose inner topic is the
/// downstream side), ticking `flush_due` so delay holds expire on time.
/// Exits when told to stop, or when the upstream is closed, drained, and
/// no delayed message is still pending; the downstream topic is closed on
/// the way out so its consumers wake.
fn spawn_pump<T: Clone + Send + 'static>(
    name: &str,
    upstream: Topic<T>,
    chaos: ChaosTopic<T>,
    stop: Arc<AtomicBool>,
    tick: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match upstream.pull_timeout(tick) {
                    Some(message) => chaos.publish(message),
                    None => {
                        chaos.flush_due();
                        if upstream.is_closed()
                            && upstream.is_empty()
                            && chaos.pending_delayed() == 0
                        {
                            break;
                        }
                    }
                }
            }
            // Late stragglers published after close are still drainable;
            // forward them before closing the downstream side.
            while let Some(message) = upstream.try_pull() {
                chaos.publish(message);
            }
            chaos.inner().close();
        })
        .expect("spawn chaos pump thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AckKind, AckMsg, DispatchMsg};
    use crate::realtime::{spawn_master, spawn_worker, MasterConfig, NoopRunner, WorkerConfig};
    use dewe_dag::{EnsembleJobId, JobId, WorkflowBuilder, WorkflowId};
    use dewe_mq::Fault;

    fn dispatch(n: u32) -> DispatchMsg {
        DispatchMsg { job: EnsembleJobId::new(WorkflowId(0), JobId(n)), attempt: 1 }
    }

    #[test]
    fn delay_chaos_holds_dispatches_back_in_real_time() {
        let cfg =
            ChaosConfig { seed: 1, delay_prob: 1.0, delay_secs: 0.06, ..ChaosConfig::default() };
        let link = ChaosLink::new(cfg);
        let start = std::time::Instant::now();
        link.master_bus.dispatch.publish(dispatch(0));
        // Held: nothing surfaces on the worker side before the hold ends.
        assert!(link.worker_bus.dispatch.pull_timeout(Duration::from_millis(20)).is_none());
        let got = link.worker_bus.dispatch.pull_timeout(Duration::from_secs(5));
        assert_eq!(got, Some(dispatch(0)), "surfaced after the hold");
        assert!(start.elapsed() >= Duration::from_millis(50), "hold was real wall time");
        assert_eq!(link.dispatch_stats().delayed, 1);
        link.shutdown();
    }

    #[test]
    fn acks_flow_back_through_their_own_chaos_stream() {
        let link = ChaosLink::new(ChaosConfig::default());
        let ack = AckMsg {
            job: EnsembleJobId::new(WorkflowId(0), JobId(0)),
            worker: 3,
            kind: AckKind::Completed,
            attempt: 1,
        };
        link.worker_bus.ack.publish(ack);
        assert_eq!(link.master_bus.ack.pull_timeout(Duration::from_secs(5)), Some(ack));
        assert_eq!(link.ack_stats().published, 1);
        link.shutdown();
    }

    #[test]
    fn trace_captures_the_applied_schedule() {
        let trace = ChaosTrace::new();
        let cfg = ChaosConfig { seed: 9, drop_prob: 0.5, ..ChaosConfig::default() };
        let link = ChaosLink::traced(cfg, trace.clone());
        for n in 0..64 {
            link.master_bus.dispatch.publish(dispatch(n));
        }
        // Wait until the pump has decided every message.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while trace.len() < 64 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(trace.len(), 64);
        let drops = trace.faults().iter().filter(|e| e.fault == Fault::Drop).count();
        assert_eq!(drops as u64, link.dispatch_stats().dropped);
        assert!(drops > 10, "seed 9 at p=0.5 must drop a good fraction, got {drops}");
        link.shutdown();
    }

    /// End-to-end: a real master and worker complete a diamond workflow
    /// while every message on both streams is delayed — the paper's
    /// pulling protocol is insensitive to fabric latency.
    #[test]
    fn master_and_worker_complete_under_delay_chaos() {
        let cfg =
            ChaosConfig { seed: 5, delay_prob: 1.0, delay_secs: 0.02, ..ChaosConfig::default() };
        let link = ChaosLink::new(cfg);
        // The registry is shared state (the "shared file system"), not bus
        // traffic: one instance serves both sides of the link.
        let registry = crate::realtime::Registry::new();
        let master = spawn_master(
            link.master_bus.clone(),
            registry.clone(),
            MasterConfig::builder()
                .timeout_scan_interval(Duration::from_millis(5))
                .expected_workflows(1)
                .build(),
        );
        let worker = spawn_worker(
            link.worker_bus.clone(),
            registry.clone(),
            Arc::new(NoopRunner),
            WorkerConfig {
                worker_id: 0,
                slots: 2,
                pull_timeout: Duration::from_millis(5),
                ..WorkerConfig::default()
            },
        );

        let mut b = WorkflowBuilder::new("diamond");
        let a = b.job("a", "t", 1.0).build();
        let l = b.job("l", "t", 1.0).build();
        let r = b.job("r", "t", 1.0).build();
        let d = b.job("d", "t", 1.0).build();
        b.edge(a, l);
        b.edge(a, r);
        b.edge(l, d);
        b.edge(r, d);
        crate::realtime::submit(&link.master_bus, "diamond", Arc::new(b.finish().unwrap()));

        let stats = master.join();
        assert_eq!(stats.jobs_completed, 4);
        assert_eq!(stats.workflows_completed, 1);
        assert!(link.dispatch_stats().delayed >= 4, "every dispatch was held");
        worker.stop();
        link.shutdown();
    }
}
