//! The message bus (typed topics) and the shared workflow registry.

use crate::protocol::{AckMsg, DispatchMsg, LifecycleMsg, SubmissionMsg, WorkflowAnnounce};
use dewe_dag::{Workflow, WorkflowId};
use dewe_mq::{Topic, Transport, WorkerTransport};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// The DEWE v2 topics as typed queues (the in-process RabbitMQ): the
/// paper's three (submission/dispatch/ack) plus the worker lifecycle
/// topic added by the liveness plane.
///
/// Cloning shares the underlying topics, like every daemon connecting to
/// the same broker endpoint.
#[derive(Clone, Default)]
pub struct MessageBus {
    /// Workflow submission topic (submission app → master).
    pub submission: Topic<SubmissionMsg>,
    /// Job dispatching topic (master → workers). With a sharded master
    /// this is the fallback for workers not pinned to a shard.
    pub dispatch: Topic<DispatchMsg>,
    /// Per-shard dispatch topics (sharded master → per-shard worker
    /// pools). Empty on an un-sharded bus.
    pub dispatch_shards: Vec<Topic<DispatchMsg>>,
    /// Job acknowledgment topic (workers → master).
    pub ack: Topic<AckMsg>,
    /// Worker lifecycle topic (workers → master): registration,
    /// heartbeats, and drain announcements for the liveness plane.
    pub lifecycle: Topic<LifecycleMsg>,
}

impl MessageBus {
    /// Fresh bus with empty topics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh bus with `shards` per-shard dispatch topics, for fanning a
    /// sharded master's work out to dedicated worker pools.
    pub fn sharded(shards: usize) -> Self {
        Self { dispatch_shards: (0..shards).map(|_| Topic::default()).collect(), ..Self::default() }
    }

    /// The dispatch topic serving `shard`: its dedicated topic when the
    /// bus has one, otherwise the shared fallback topic (so un-sharded
    /// buses and out-of-range shards keep working through `dispatch`).
    pub fn dispatch_topic(&self, shard: usize) -> &Topic<DispatchMsg> {
        self.dispatch_shards.get(shard).unwrap_or(&self.dispatch)
    }

    /// Close every topic, releasing blocked daemons.
    pub fn shutdown(&self) {
        self.submission.close();
        self.dispatch.close();
        for t in &self.dispatch_shards {
            t.close();
        }
        self.ack.close();
        self.lifecycle.close();
    }
}

/// The in-process bus *is* a master transport: the serve loops drive it
/// through the same trait surface the TCP runtime implements, so the
/// oracle paths and a networked fleet share one master implementation.
/// Announcements are dropped — in-process workers share the [`Registry`]
/// object, so there is nothing to mirror.
impl Transport for MessageBus {
    type Submission = SubmissionMsg;
    type Dispatch = DispatchMsg;
    type Ack = AckMsg;
    type Lifecycle = LifecycleMsg;
    type Announce = WorkflowAnnounce;

    fn try_pull_submission(&self) -> Option<SubmissionMsg> {
        self.submission.try_pull()
    }

    fn pull_ack(&self, timeout: Duration) -> Option<AckMsg> {
        self.ack.pull_timeout(timeout)
    }

    fn pull_ack_batch(&self, out: &mut Vec<AckMsg>, max: usize) -> usize {
        self.ack.try_pull_batch(out, max)
    }

    fn try_pull_lifecycle(&self) -> Option<LifecycleMsg> {
        self.lifecycle.try_pull()
    }

    fn publish_dispatch(&self, shard: usize, dispatch: DispatchMsg) {
        self.dispatch_topic(shard).publish(dispatch);
    }

    fn announce(&self, _announce: WorkflowAnnounce) {}

    fn ack_closed(&self) -> bool {
        self.ack.is_closed()
    }
}

/// One worker's view of the in-process bus: the [`WorkerTransport`] the
/// thread-pool worker daemon drives, pinned (or not) to a shard topic.
/// The TCP runtime's `TcpWorkerLink` implements the same trait, so the
/// worker slot/heartbeat loops are written once.
#[derive(Clone)]
pub struct BusWorkerLink {
    bus: MessageBus,
    shard: Option<usize>,
}

impl BusWorkerLink {
    /// A link over `bus`, pulling `shard`'s dispatch topic (`None` pulls
    /// the shared topic — the only source of an un-sharded master).
    pub fn new(bus: MessageBus, shard: Option<usize>) -> Self {
        Self { bus, shard }
    }

    fn dispatch_topic(&self) -> &Topic<DispatchMsg> {
        match self.shard {
            Some(shard) => self.bus.dispatch_topic(shard),
            None => &self.bus.dispatch,
        }
    }
}

impl WorkerTransport for BusWorkerLink {
    type Dispatch = DispatchMsg;
    type Ack = AckMsg;
    type Lifecycle = LifecycleMsg;

    fn pull_dispatch(&self, timeout: Duration) -> Option<DispatchMsg> {
        self.dispatch_topic().pull_timeout(timeout)
    }

    fn dispatch_closed(&self) -> bool {
        self.dispatch_topic().is_closed()
    }

    fn redeliver(&self, dispatch: DispatchMsg) {
        // The broker redelivers the unacknowledged checkout (RabbitMQ
        // semantics): back onto the same topic for another worker.
        self.dispatch_topic().publish(dispatch);
    }

    fn publish_ack(&self, ack: AckMsg) {
        self.bus.ack.publish(ack);
    }

    fn publish_lifecycle(&self, msg: LifecycleMsg) {
        self.bus.lifecycle.publish(msg);
    }
}

/// The stand-in for the shared file system's workflow folders: workers look
/// up the DAG (and, conceptually, binaries and data paths) of a dispatched
/// job by its workflow id. The master inserts each workflow *before*
/// publishing any of its jobs, so lookups by dispatch consumers never miss.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<Vec<Arc<Workflow>>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the workflow for `id`. Ids are assigned densely by the
    /// master in submission order.
    pub fn insert(&self, id: WorkflowId, workflow: Arc<Workflow>) {
        let mut inner = self.inner.write();
        assert_eq!(inner.len(), id.index(), "registry insertions must be dense and in order");
        inner.push(workflow);
    }

    /// Look up a workflow.
    pub fn get(&self, id: WorkflowId) -> Option<Arc<Workflow>> {
        self.inner.read().get(id.index()).cloned()
    }

    /// Number of registered workflows.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    #[test]
    fn bus_topics_are_shared_across_clones() {
        let bus = MessageBus::new();
        let bus2 = bus.clone();
        bus.ack.publish(AckMsg {
            job: dewe_dag::EnsembleJobId::new(WorkflowId(0), dewe_dag::JobId(0)),
            worker: 1,
            kind: crate::protocol::AckKind::Running,
            attempt: 1,
        });
        assert!(bus2.ack.try_pull().is_some());
    }

    #[test]
    fn dispatch_topic_falls_back_to_shared() {
        let flat = MessageBus::new();
        assert!(std::ptr::eq(flat.dispatch_topic(3), &flat.dispatch));
        let sharded = MessageBus::sharded(2);
        assert!(std::ptr::eq(sharded.dispatch_topic(0), &sharded.dispatch_shards[0]));
        assert!(std::ptr::eq(sharded.dispatch_topic(1), &sharded.dispatch_shards[1]));
        // Out of range → the shared fallback, never a panic.
        assert!(std::ptr::eq(sharded.dispatch_topic(2), &sharded.dispatch));
    }

    #[test]
    fn registry_dense_insert_and_get() {
        let r = Registry::new();
        assert!(r.is_empty());
        let wf = Arc::new(WorkflowBuilder::new("w").finish().unwrap());
        r.insert(WorkflowId(0), Arc::clone(&wf));
        r.insert(WorkflowId(1), wf);
        assert_eq!(r.len(), 2);
        assert!(r.get(WorkflowId(1)).is_some());
        assert!(r.get(WorkflowId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn registry_rejects_out_of_order_insert() {
        let r = Registry::new();
        let wf = Arc::new(WorkflowBuilder::new("w").finish().unwrap());
        r.insert(WorkflowId(5), wf);
    }
}
