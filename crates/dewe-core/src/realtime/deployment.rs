//! One-call deployment of a complete DEWE v2 system.
//!
//! The master/worker/submission pieces compose manually (see the other
//! modules), but most users want the paper's standard topology: one master,
//! N workers with a slot count each, one shared runner. [`Deployment`]
//! bundles that, adds incremental submission (paper §V.A.2) as a method,
//! and tears everything down cleanly.
//!
//! ```
//! use dewe_core::realtime::{Deployment, NoopRunner};
//! use dewe_dag::WorkflowBuilder;
//! use std::sync::Arc;
//!
//! let mut b = WorkflowBuilder::new("two");
//! b.job("a", "t", 1.0).build();
//! b.job("b", "t", 1.0).build();
//! let wf = Arc::new(b.finish().unwrap());
//!
//! let deployment = Deployment::builder()
//!     .workers(2)
//!     .slots_per_worker(2)
//!     .expected_workflows(1)
//!     .start(Arc::new(NoopRunner));
//! deployment.submit("two", wf);
//! let stats = deployment.join();
//! assert_eq!(stats.jobs_completed, 2);
//! ```

use std::sync::Arc;
use std::time::Duration;

use dewe_dag::Workflow;

use super::bus::{MessageBus, Registry};
use super::master::{spawn_master, MasterConfig, MasterEvent, MasterHandle};
use super::runner::JobRunner;
use super::worker::{spawn_worker, WorkerConfig, WorkerHandle};
use crate::engine::EngineStats;

/// Builder for [`Deployment`].
pub struct DeploymentBuilder {
    workers: usize,
    slots_per_worker: usize,
    default_timeout_secs: f64,
    timeout_scan_interval: Duration,
    expected_workflows: Option<usize>,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        Self {
            workers: 1,
            slots_per_worker: 4,
            default_timeout_secs: crate::engine::DEFAULT_TIMEOUT_SECS,
            timeout_scan_interval: Duration::from_millis(50),
            expected_workflows: None,
        }
    }
}

impl DeploymentBuilder {
    /// Number of worker daemons.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.workers = n;
        self
    }

    /// Concurrent job slots per worker (the paper: one per vCPU).
    pub fn slots_per_worker(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.slots_per_worker = n;
        self
    }

    /// System-wide default job timeout.
    pub fn default_timeout_secs(mut self, secs: f64) -> Self {
        self.default_timeout_secs = secs;
        self
    }

    /// The deployment completes after this many workflows.
    pub fn expected_workflows(mut self, n: usize) -> Self {
        self.expected_workflows = Some(n);
        self
    }

    /// Start the daemons.
    pub fn start(self, runner: Arc<dyn JobRunner>) -> Deployment {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let mut cfg = MasterConfig::builder()
            .default_timeout_secs(self.default_timeout_secs)
            .timeout_scan_interval(self.timeout_scan_interval);
        if let Some(n) = self.expected_workflows {
            cfg = cfg.expected_workflows(n);
        }
        let master = spawn_master(bus.clone(), registry.clone(), cfg.build());
        let workers = (0..self.workers)
            .map(|id| {
                spawn_worker(
                    bus.clone(),
                    registry.clone(),
                    Arc::clone(&runner),
                    WorkerConfig {
                        worker_id: id as u32,
                        slots: self.slots_per_worker,
                        ..WorkerConfig::default()
                    },
                )
            })
            .collect();
        Deployment { bus, registry, master, workers }
    }
}

/// A running DEWE v2 system: one master, N workers, a shared bus.
pub struct Deployment {
    bus: MessageBus,
    registry: Registry,
    master: MasterHandle,
    workers: Vec<WorkerHandle>,
}

impl Deployment {
    /// Start building a deployment.
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// The message bus (for custom submission clients or extra workers).
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// The shared workflow registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Submit a workflow (paper §III.E).
    pub fn submit(&self, name: impl Into<String>, workflow: Arc<Workflow>) {
        super::submit(&self.bus, name, workflow);
    }

    /// Incremental submission (paper §V.A.2): submit workflows one after
    /// another at a fixed real-time interval, from a background thread.
    /// Returns immediately; the submissions happen on schedule.
    pub fn submit_with_interval(
        &self,
        workflows: Vec<(String, Arc<Workflow>)>,
        interval: Duration,
    ) -> std::thread::JoinHandle<()> {
        let bus = self.bus.clone();
        std::thread::Builder::new()
            .name("dewe-submitter".into())
            .spawn(move || {
                for (i, (name, wf)) in workflows.into_iter().enumerate() {
                    if i > 0 {
                        std::thread::sleep(interval);
                    }
                    super::submit(&bus, name, wf);
                }
            })
            .expect("spawn submitter thread")
    }

    /// Block until the next master progress event.
    pub fn next_event(&self, timeout: Duration) -> Option<MasterEvent> {
        self.master.events.recv_timeout(timeout).ok()
    }

    /// Wait for the expected workflows to complete and tear down,
    /// returning final engine statistics.
    ///
    /// Requires `expected_workflows` to have been set; otherwise the master
    /// only exits on bus shutdown.
    pub fn join(self) -> EngineStats {
        let stats = self.master.join();
        self.bus.shutdown();
        for w in self.workers {
            w.stop();
        }
        stats
    }

    /// Abort: shut the bus down without waiting for completion.
    pub fn abort(self) {
        self.bus.shutdown();
        for w in self.workers {
            w.stop();
        }
        // Master exits on closed ack topic.
        let _ = self.master.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realtime::NoopRunner;
    use dewe_dag::WorkflowBuilder;

    fn tiny(n: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new(format!("t{n}"));
        for i in 0..n {
            b.job(format!("j{i}"), "t", 1.0).build();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn deployment_runs_an_ensemble() {
        let d = Deployment::builder()
            .workers(2)
            .slots_per_worker(3)
            .expected_workflows(2)
            .start(Arc::new(NoopRunner));
        d.submit("a", tiny(5));
        d.submit("b", tiny(7));
        let stats = d.join();
        assert_eq!(stats.workflows_completed, 2);
        assert_eq!(stats.jobs_completed, 12);
    }

    #[test]
    fn interval_submission_orders_submissions() {
        let d = Deployment::builder().workers(1).expected_workflows(3).start(Arc::new(NoopRunner));
        let wfs = (0..3).map(|i| (format!("w{i}"), tiny(2))).collect::<Vec<_>>();
        let submitter = d.submit_with_interval(wfs, Duration::from_millis(30));
        // Completion events arrive in submission order (tiny workflows
        // finish well within the interval).
        let mut seen = Vec::new();
        while seen.len() < 3 {
            match d.next_event(Duration::from_secs(30)).expect("event") {
                MasterEvent::WorkflowCompleted { workflow, .. } => seen.push(workflow.index()),
                MasterEvent::AllCompleted { .. } => break,
                other => panic!("unexpected event: {other:?}"),
            }
        }
        assert_eq!(seen, vec![0, 1, 2]);
        submitter.join().unwrap();
        let stats = d.join();
        assert_eq!(stats.workflows_completed, 3);
    }

    #[test]
    fn abort_tears_down_mid_flight() {
        let d = Deployment::builder().workers(1).start(Arc::new(NoopRunner));
        d.submit("never-finishes-waiting", tiny(1));
        // Abort without expected_workflows: must not hang.
        d.abort();
    }
}
