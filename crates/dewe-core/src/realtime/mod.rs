//! Real-time (threaded) DEWE v2 runtime.
//!
//! This is a working in-process workflow engine: a master daemon thread, a
//! configurable pool of worker daemons, and a submission application, all
//! wired through [`dewe_mq`] topics exactly as the paper's deployment wires
//! them through RabbitMQ (§III.C):
//!
//! ```text
//!  submit()  ──▶ workflow_submission ──▶ MasterDaemon
//!                                            │ publishes eligible jobs
//!                                            ▼
//!  WorkerDaemon(s) ◀────── job_dispatch ◀────┘
//!        │ Running/Completed acks
//!        ▼
//!     job_ack ──▶ MasterDaemon (releases dependents, detects timeouts)
//! ```
//!
//! Jobs execute through a pluggable [`JobRunner`]; the crate ships runners
//! that sleep (deterministic scaling tests), do nothing (throughput tests),
//! or perform real file I/O against a workspace directory (data-flow
//! verification — a job finds its inputs on "the shared file system"
//! because its parents really wrote them).
//!
//! Worker daemons can be killed (abandoning in-flight jobs without
//! acknowledgment) and new ones started mid-run — the paper's §V.A.3
//! robustness experiment — and the master's timeout mechanism recovers.

mod bus;
mod chaos;
mod deployment;
mod journal;
mod liveness;
mod master;
mod net;
mod observer;
mod runner;
mod worker;

pub use bus::{BusWorkerLink, MessageBus, Registry};
pub use chaos::ChaosLink;
pub use deployment::{Deployment, DeploymentBuilder};
pub use journal::{
    compact_records, read_journal, recover, replay_liveness, Journal, JournalCommitPolicy,
    JournalRecord, Recovery,
};
pub use liveness::{
    LivenessTable, LivenessTransition, MasterStats, RequeueEntry, WorkerPhase, WorkerView,
    REQUEUE_WORKER,
};
pub use master::{
    spawn_master, spawn_master_on, MasterConfig, MasterConfigBuilder, MasterEvent, MasterHandle,
    MasterTransport,
};
pub use net::{
    load_spool, spool_workflow, submit_over_tcp, TcpMaster, TcpMasterOptions, TcpWorkerLink,
    TcpWorkerOptions,
};
pub use observer::{spawn_observer, BusSeries, ObserverHandle};
pub use runner::{CpuRunner, FsRunner, JobOutcome, JobRunner, NoopRunner, RunContext, SleepRunner};
pub use worker::{spawn_worker, spawn_worker_on, DynWorkerTransport, WorkerConfig, WorkerHandle};

use crate::protocol::SubmissionMsg;
use dewe_dag::Workflow;
use std::sync::Arc;

/// The workflow submission application (paper §III.E): publish a workflow
/// to the submission topic, from any thread at any time.
pub fn submit(bus: &MessageBus, name: impl Into<String>, workflow: Arc<Workflow>) {
    bus.submission.publish(SubmissionMsg { name: name.into(), workflow });
}
