//! Deterministic fault plans: seeded, timed fault schedules injected
//! into both the discrete-event simulator and the threaded realtime
//! runner.
//!
//! The paper's robustness story (§V.A.3) is "kill a worker daemon,
//! watch the timeout mechanism recover". This module widens that to the
//! full fault plane exercised by the differential oracle:
//!
//! * **worker crash** — the daemon dies silently mid-job (no acks, no
//!   heartbeats; jobs recovered by lease expiry or job timeout);
//! * **spot revocation** — the cloud gives notice, the worker announces
//!   a drain and finishes what it can, then dies at the revocation
//!   instant (the paper's spot-instance scenario);
//! * **worker stall** — the daemon stops heartbeating for a window but
//!   keeps running (GC pause / network partition): a lease-enabled
//!   master expires it, then must fence the zombie's late acks;
//! * **master kill** — the master process dies at an arbitrary instant
//!   (including mid-compaction or inside a group-commit window) and a
//!   replacement recovers from the write-ahead journal after a delay.
//!
//! A [`FaultPlan`] is pure data: the testkit's scenario runner and the
//! simulator interpret the same plan against their own clocks, so a
//! failing seed replays identically everywhere. Plans are generated
//! from a seed by [`FaultPlan::generate`], which always leaves at least
//! one worker unharmed so scenarios with unbounded retries settle.

use crate::sim::NodeFault;

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` dies silently: in-flight jobs are abandoned
    /// without acks and heartbeats stop.
    WorkerCrash {
        /// Which worker.
        worker: u32,
    },
    /// Worker `worker` receives a revocation notice: it announces a
    /// drain immediately and is killed `notice_secs` later.
    SpotRevocation {
        /// Which worker.
        worker: u32,
        /// Seconds between the drain announcement and the kill.
        notice_secs: f64,
    },
    /// Worker `worker` stops heartbeating for `stall_secs` but keeps
    /// executing jobs, then resumes heartbeats.
    WorkerStall {
        /// Which worker.
        worker: u32,
        /// Silence window, seconds.
        stall_secs: f64,
    },
    /// The master dies and a replacement recovers from the journal
    /// `restart_delay_secs` later.
    MasterKill {
        /// Seconds the system runs master-less.
        restart_delay_secs: f64,
    },
}

impl FaultEvent {
    /// The worker this event targets, if any.
    pub fn worker(&self) -> Option<u32> {
        match *self {
            FaultEvent::WorkerCrash { worker }
            | FaultEvent::SpotRevocation { worker, .. }
            | FaultEvent::WorkerStall { worker, .. } => Some(worker),
            FaultEvent::MasterKill { .. } => None,
        }
    }

    /// True when the event permanently removes its worker.
    pub fn is_lethal(&self) -> bool {
        matches!(self, FaultEvent::WorkerCrash { .. } | FaultEvent::SpotRevocation { .. })
    }
}

/// A fault scheduled at a point in scenario time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// Scenario seconds at which the fault fires.
    pub at_secs: f64,
    /// What happens.
    pub event: FaultEvent,
}

/// A deterministic, seeded schedule of timed faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Events sorted by `at_secs`.
    pub events: Vec<TimedFault>,
}

/// splitmix64 — the same tiny deterministic generator the testkit's
/// scenario generator uses, duplicated here so `dewe-core` stays
/// dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True when the plan kills the master at some point.
    pub fn has_master_kill(&self) -> bool {
        self.events.iter().any(|f| matches!(f.event, FaultEvent::MasterKill { .. }))
    }

    /// Workers permanently removed by the plan (crash or revocation).
    pub fn lethal_workers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .events
            .iter()
            .filter(|f| f.event.is_lethal())
            .filter_map(|f| f.event.worker())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Generate a plan for `workers` workers over `horizon_secs` of
    /// scenario time. Deterministic in `seed`. Guarantees:
    ///
    /// * at least one worker is never crashed or revoked (so unbounded
    ///   retries always settle);
    /// * each worker is targeted by at most one lethal event;
    /// * at most one master kill, scheduled in the middle half of the
    ///   horizon so it lands with real journaled progress and real work
    ///   left;
    /// * events are sorted by firing time.
    pub fn generate(seed: u64, workers: u32, horizon_secs: f64) -> Self {
        assert!(workers >= 1, "a plan needs at least one worker");
        let mut st = seed ^ 0xfau64.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut events = Vec::new();

        // Lethal faults: up to workers-1 victims, always ≥ 1 survivor.
        let max_victims = workers.saturating_sub(1);
        let victims = if max_victims == 0 {
            0
        } else {
            (splitmix64(&mut st) % u64::from(max_victims + 1)) as u32
        };
        // Victim set: a seeded rotation of the worker ids, so which
        // workers die varies by seed while staying collision-free.
        let offset = (splitmix64(&mut st) % u64::from(workers)) as u32;
        for i in 0..victims {
            let worker = (offset + i) % workers;
            let at_secs = (0.1 + 0.8 * unit(&mut st)) * horizon_secs;
            let event = if splitmix64(&mut st).is_multiple_of(2) {
                FaultEvent::WorkerCrash { worker }
            } else {
                FaultEvent::SpotRevocation {
                    worker,
                    notice_secs: (0.02 + 0.1 * unit(&mut st)) * horizon_secs,
                }
            };
            events.push(TimedFault { at_secs, event });
        }

        // Stalls may hit anyone, including survivors — that is the
        // zombie-fencing case the liveness plane must get right.
        let stalls = splitmix64(&mut st) % 3;
        for _ in 0..stalls {
            let worker = (splitmix64(&mut st) % u64::from(workers)) as u32;
            events.push(TimedFault {
                at_secs: (0.1 + 0.7 * unit(&mut st)) * horizon_secs,
                event: FaultEvent::WorkerStall {
                    worker,
                    stall_secs: (0.1 + 0.3 * unit(&mut st)) * horizon_secs,
                },
            });
        }

        // Roughly half the seeds also kill the master mid-run.
        if splitmix64(&mut st).is_multiple_of(2) {
            events.push(TimedFault {
                at_secs: (0.25 + 0.5 * unit(&mut st)) * horizon_secs,
                event: FaultEvent::MasterKill {
                    restart_delay_secs: (0.02 + 0.08 * unit(&mut st)) * horizon_secs,
                },
            });
        }

        events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        Self { events }
    }

    /// Bridge to the simulator's node-level fault model. Lossy by
    /// design — the sim has no lifecycle wire, so:
    ///
    /// * a crash kills the node with no restart;
    /// * a spot revocation kills the node at notice expiry (the drain
    ///   window is a liveness-plane behaviour the sim cannot observe);
    /// * a stall becomes a kill + restart spanning the silence window
    ///   (the sim's nearest equivalent: the node's capacity vanishes);
    /// * master kills are dropped (the sim master is the event loop
    ///   itself and cannot die).
    pub fn node_faults(&self) -> Vec<NodeFault> {
        self.events
            .iter()
            .filter_map(|f| match f.event {
                FaultEvent::WorkerCrash { worker } => Some(NodeFault {
                    node: worker as usize,
                    kill_at_secs: f.at_secs,
                    restart_at_secs: None,
                }),
                FaultEvent::SpotRevocation { worker, notice_secs } => Some(NodeFault {
                    node: worker as usize,
                    kill_at_secs: f.at_secs + notice_secs,
                    restart_at_secs: None,
                }),
                FaultEvent::WorkerStall { worker, stall_secs } => Some(NodeFault {
                    node: worker as usize,
                    kill_at_secs: f.at_secs,
                    restart_at_secs: Some(f.at_secs + stall_secs),
                }),
                FaultEvent::MasterKill { .. } => None,
            })
            .collect()
    }

    /// One-line human description, for shrink reports and sweep logs.
    pub fn describe(&self) -> String {
        if self.events.is_empty() {
            return "no faults".into();
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|f| match f.event {
                FaultEvent::WorkerCrash { worker } => {
                    format!("crash(w{worker}@{:.1}s)", f.at_secs)
                }
                FaultEvent::SpotRevocation { worker, notice_secs } => {
                    format!("revoke(w{worker}@{:.1}s+{:.1}s)", f.at_secs, notice_secs)
                }
                FaultEvent::WorkerStall { worker, stall_secs } => {
                    format!("stall(w{worker}@{:.1}s for {:.1}s)", f.at_secs, stall_secs)
                }
                FaultEvent::MasterKill { restart_delay_secs } => {
                    format!("master-kill(@{:.1}s +{:.1}s down)", f.at_secs, restart_delay_secs)
                }
            })
            .collect();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for seed in 0..64 {
            let a = FaultPlan::generate(seed, 4, 100.0);
            let b = FaultPlan::generate(seed, 4, 100.0);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn every_seed_leaves_a_survivor() {
        for seed in 0..256 {
            for workers in 1..5u32 {
                let plan = FaultPlan::generate(seed, workers, 50.0);
                let lethal = plan.lethal_workers();
                assert!(
                    (lethal.len() as u32) < workers,
                    "seed {seed} workers {workers}: all workers die ({lethal:?})"
                );
                for w in &lethal {
                    assert!(*w < workers);
                }
            }
        }
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        for seed in 0..128 {
            let plan = FaultPlan::generate(seed, 4, 80.0);
            let mut prev = 0.0;
            for f in &plan.events {
                assert!(f.at_secs >= prev, "unsorted at seed {seed}");
                assert!(f.at_secs >= 0.0 && f.at_secs <= 80.0);
                prev = f.at_secs;
            }
        }
    }

    #[test]
    fn some_seeds_kill_the_master_and_some_do_not() {
        let kills = (0..64).filter(|&s| FaultPlan::generate(s, 4, 50.0).has_master_kill()).count();
        assert!(
            kills > 10 && kills < 54,
            "master kills should be common but not universal: {kills}"
        );
    }

    #[test]
    fn node_fault_bridge_translates_every_worker_event() {
        let plan = FaultPlan {
            events: vec![
                TimedFault { at_secs: 1.0, event: FaultEvent::WorkerCrash { worker: 0 } },
                TimedFault {
                    at_secs: 2.0,
                    event: FaultEvent::SpotRevocation { worker: 1, notice_secs: 0.5 },
                },
                TimedFault {
                    at_secs: 3.0,
                    event: FaultEvent::WorkerStall { worker: 2, stall_secs: 2.0 },
                },
                TimedFault {
                    at_secs: 4.0,
                    event: FaultEvent::MasterKill { restart_delay_secs: 1.0 },
                },
            ],
        };
        let nf = plan.node_faults();
        assert_eq!(nf.len(), 3, "master kill has no node equivalent");
        assert_eq!(nf[0], NodeFault { node: 0, kill_at_secs: 1.0, restart_at_secs: None });
        assert_eq!(nf[1], NodeFault { node: 1, kill_at_secs: 2.5, restart_at_secs: None });
        assert_eq!(nf[2], NodeFault { node: 2, kill_at_secs: 3.0, restart_at_secs: Some(5.0) });
    }

    #[test]
    fn describe_names_every_event_kind() {
        let plan = FaultPlan::generate(7, 4, 100.0);
        let d = plan.describe();
        assert!(!d.is_empty());
        assert_eq!(FaultPlan::none().describe(), "no faults");
    }
}
