//! Discrete-event runtime: DEWE v2 on a simulated EC2 cluster.
//!
//! Drives the same [`EnsembleEngine`] as the realtime runtime, but workers
//! are slots on simulated nodes and jobs execute through
//! [`dewe_simcloud::ExecSim`]'s read → compute → write pipeline. This is
//! how the repository reproduces the paper's up-to-1,280-vCPU experiments
//! on one machine.
//!
//! The worker model mirrors §III.D exactly: each node exposes `vcpus`
//! slots; an idle slot pulls the dispatch queue first-come-first-served
//! (idle slots are served in the order they became idle); a node stops
//! pulling when all its slots are busy. Fault injection kills a node's
//! slots mid-run (in-flight jobs vanish without acknowledgment) and
//! restarts them later — the paper's §V.A.3 robustness experiment.

use std::collections::VecDeque;
use std::sync::Arc;

use dewe_dag::{EnsembleJobId, Workflow};
use dewe_metrics::{ClusterSampler, Gantt, SAMPLE_INTERVAL_SECS};
use dewe_mq::chaos::{self, ChaosConfig, ChaosDecider};
use dewe_simcloud::{ClusterConfig, ExecSim, JobProfile, NodeId, SimEvent};

use crate::engine::{Action, EngineConfig, EngineCore, EngineStats, RetryPolicy, TimerBackend};
use crate::protocol::{AckKind, AckMsg, DispatchMsg};
use crate::sharded::{HashRouter, ShardLoad, ShardRouter};

pub mod autoscale;

/// How the ensemble's workflows are submitted (paper §V.A.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmissionPlan {
    /// All workflows submitted at time zero in one batch.
    Batch,
    /// Workflow *i* submitted at `i * interval_secs` (incremental
    /// submission; batch is the `interval = 0` special case).
    Interval(f64),
}

/// A scripted per-job failure: attempts `1..=failing_attempts` of the
/// job report `Failed` instead of `Completed`, attempt
/// `failing_attempts + 1` succeeds. This is how the differential
/// oracle's scripted-failure class reaches the simulated worker pool —
/// the sim equivalent of the realtime `TapRunner`'s failure taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFailure {
    /// Workflow index in ensemble submission order.
    pub workflow: u32,
    /// Job index within the workflow.
    pub job: u32,
    /// How many leading attempts fail.
    pub failing_attempts: u32,
}

/// A worker-daemon fault to inject (paper §V.A.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Node whose worker daemon dies.
    pub node: NodeId,
    /// When it dies (seconds).
    pub kill_at_secs: f64,
    /// When (if ever) a worker daemon starts again on that node.
    pub restart_at_secs: Option<f64>,
}

/// Configuration for a simulated ensemble run.
#[derive(Debug, Clone)]
pub struct SimRunConfig {
    /// The cluster to run on.
    pub cluster: ClusterConfig,
    /// System-wide default job timeout (paper §III.B).
    pub default_timeout_secs: f64,
    /// Master's timeout scan cadence.
    pub timeout_scan_secs: f64,
    /// Submission plan.
    pub submission: SubmissionPlan,
    /// Fixed per-job execution overhead in CPU-seconds: dispatch round
    /// trip, fork/exec and library loading on the worker. The pulling
    /// model's overhead is small but not zero.
    pub per_job_overhead_secs: f64,
    /// Worker slots per node (`None` = the node's vCPU count, the paper's
    /// setting).
    pub slots_per_node: Option<u32>,
    /// Collect 3-second metrics samples.
    pub sample: bool,
    /// Record per-job spans for gantt rendering (memory-heavy at ensemble
    /// scale; use for single-workflow runs).
    pub record_gantt: bool,
    /// Worker faults to inject.
    pub faults: Vec<NodeFault>,
    /// Scripted per-job failures (see [`ScriptedFailure`]). Failed
    /// acknowledgments are authoritative and bypass the chaos layer —
    /// the engine deliberately does not deduplicate them, so dropping
    /// or duplicating one would desynchronize the retry budget.
    pub failure_script: Vec<ScriptedFailure>,
    /// Per-node CPU speed multipliers (heterogeneity ablation; `None` =
    /// the paper's homogeneous cluster).
    pub node_speed_factors: Option<Vec<f64>>,
    /// Record a per-job lifecycle [`dewe_metrics::Trace`] (memory-heavy at
    /// full ensemble scale; intended for single-workflow analyses).
    pub record_trace: bool,
    /// Retry budget and backoff schedule (default: the paper's unbounded
    /// immediate retries).
    pub retry: RetryPolicy,
    /// Dispatch-to-checkout deadline; see
    /// [`EngineConfig::checkout_timeout_secs`]. When `None` but message
    /// drop is being injected, the default job timeout is used so dropped
    /// dispatches recover instead of hanging the run.
    pub checkout_timeout_secs: Option<f64>,
    /// Message-level fault injection (drop/duplication) applied to the
    /// simulated dispatch and acknowledgment topics, keyed deterministically
    /// by `(workflow, job, attempt)`. Delay injection is a realtime-only
    /// feature ([`dewe_mq::ChaosTopic`]); the sim's transport has no
    /// latency to perturb.
    pub chaos: Option<ChaosConfig>,
    /// Engine shard count (1 = the classic single engine). With more than
    /// one shard, [`run_ensemble`] drives a
    /// [`ShardedEngine`](crate::ShardedEngine) facade — full feature set,
    /// single-threaded — while [`run_ensemble_sharded`] partitions the
    /// cluster and runs one sub-simulation thread per shard.
    pub shards: usize,
    /// Virtual-time cap: abort the run (reported as not completed) once
    /// the clock passes this point without every workflow settling.
    /// `None` (default) runs to settlement. The differential oracle sets
    /// this so an engine bug that strands a job surfaces as a bounded,
    /// reportable stall instead of an endless timeout-scan spin.
    pub horizon_secs: Option<f64>,
    /// Deadline-tracking backend for the engine(s) driving the run
    /// (default: the wheel). The differential oracle samples both per
    /// seed; the hotpath bench A/Bs them via `--timer-backend`.
    pub timer_backend: TimerBackend,
    /// Worker threads driving the shards. `0` (default) keeps the
    /// historical behavior of each entry point: [`run_ensemble`] stays
    /// single-threaded and [`run_ensemble_sharded`] runs one thread per
    /// shard. With `threads > 1` and `shards > 1`, [`run_ensemble`]
    /// drives a [`ParallelShardedEngine`](crate::ParallelShardedEngine)
    /// in deterministic barrier mode — same results, engine work on
    /// worker cores — and [`run_ensemble_sharded`] caps its simulation
    /// thread pool at this many OS threads (shards are striped across
    /// them), for machines with fewer cores than shards.
    pub threads: usize,
}

impl SimRunConfig {
    /// Defaults mirroring the paper's setup on the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            default_timeout_secs: 600.0,
            timeout_scan_secs: 5.0,
            submission: SubmissionPlan::Batch,
            per_job_overhead_secs: 0.1,
            slots_per_node: None,
            sample: false,
            record_gantt: false,
            faults: Vec::new(),
            failure_script: Vec::new(),
            node_speed_factors: None,
            record_trace: false,
            retry: RetryPolicy::default(),
            checkout_timeout_secs: None,
            chaos: None,
            horizon_secs: None,
            shards: 1,
            timer_backend: TimerBackend::default(),
            threads: 0,
        }
    }
}

/// Results of a simulated ensemble run.
pub struct SimReport {
    /// Wall-clock seconds from start to the last workflow completion.
    pub makespan_secs: f64,
    /// Per-workflow makespans (submission → completion), by workflow id.
    pub workflow_makespans: Vec<f64>,
    /// True when every workflow fully completed. False means partial
    /// completion: some jobs dead-lettered (see
    /// [`EngineStats::dead_lettered`]) or the simulation starved (an
    /// engine bug — distinguishable because starving leaves
    /// `engine.workflows_completed + engine.workflows_abandoned` short of
    /// the ensemble size).
    pub completed: bool,
    /// Total CPU busy core-seconds across the cluster.
    pub total_cpu_core_secs: f64,
    /// Total disk bytes read (cache misses).
    pub total_bytes_read: f64,
    /// Total logical bytes written.
    pub total_bytes_written: f64,
    /// Read-cache hit rate (by lookup count).
    pub cache_hit_rate: f64,
    /// Engine statistics (dispatches, resubmissions, ...).
    pub engine: EngineStats,
    /// 3-second samples, when requested.
    pub sampler: Option<ClusterSampler>,
    /// Per-job spans, when requested.
    pub gantt: Option<Gantt>,
    /// Per-job lifecycle trace, when requested.
    pub trace: Option<dewe_metrics::Trace>,
    /// Rental cost under hourly billing.
    pub cost_usd: f64,
    /// Shards the run actually used. [`run_ensemble_sharded`] clamps the
    /// requested count to the node count, so this can be lower than
    /// `SimRunConfig::shards` — a structured record of the clamp rather
    /// than a warning on stderr.
    pub effective_shards: usize,
    /// Deadline-wheel cascade count summed across shards (0 under the
    /// heap backend) — timer-churn observability for dashboards.
    pub wheel_cascades: u64,
}

// Wake-token tags (high byte). Job tokens are dense ensemble-wide indices
// (see [`DriverState::token`]), so they stay strictly below every tagged
// token as long as the ensemble has fewer than 2^56 jobs — asserted when
// workflows register.
const TAG_SUBMIT: u64 = 1 << 56;
const TAG_SCAN: u64 = 2 << 56;
const TAG_SAMPLE: u64 = 3 << 56;
const TAG_KILL: u64 = 4 << 56;
const TAG_RESTART: u64 = 5 << 56;
const TAG_MASK: u64 = 0xff << 56;

fn file_key(workflow: dewe_dag::WorkflowId, file: dewe_dag::FileId) -> u64 {
    // Exact packing: u32 workflow in the high half, u32 file in the low
    // half. File keys live in the storage layer's own namespace, never in
    // the wake-token event space, so no tag interaction is possible.
    ((workflow.0 as u64) << 32) | file.0 as u64
}

pub(crate) struct SlotPool {
    /// FIFO of idle slots: (node, epoch at enqueue time).
    idle: VecDeque<(NodeId, u32)>,
    /// Per-node epoch, bumped on kill so stale idle entries are discarded.
    epoch: Vec<u32>,
    active: Vec<bool>,
    slots_per_node: u32,
}

impl SlotPool {
    pub(crate) fn new(nodes: usize, slots_per_node: u32) -> Self {
        let mut idle = VecDeque::with_capacity(nodes * slots_per_node as usize);
        // Interleave nodes so initial assignment spreads round-robin, as
        // simultaneous pulls from idle workers would.
        for _ in 0..slots_per_node {
            for node in 0..nodes {
                idle.push_back((node, 0));
            }
        }
        Self { idle, epoch: vec![0; nodes], active: vec![true; nodes], slots_per_node }
    }

    pub(crate) fn pop_idle(&mut self) -> Option<NodeId> {
        while let Some((node, epoch)) = self.idle.pop_front() {
            if self.active[node] && self.epoch[node] == epoch {
                return Some(node);
            }
        }
        None
    }

    pub(crate) fn release(&mut self, node: NodeId) {
        if self.active[node] {
            self.idle.push_back((node, self.epoch[node]));
        }
    }

    pub(crate) fn kill(&mut self, node: NodeId) {
        self.active[node] = false;
        self.epoch[node] = self.epoch[node].wrapping_add(1);
    }

    /// Re-engage a node. `busy_slots` is how many of its slots are still
    /// occupied by jobs that survived the deactivation (graceful scale-in
    /// lets running jobs drain; a crash kills them). Only the remaining
    /// slots become idle pullers — re-adding a full set would oversubscribe
    /// the node's cores.
    pub(crate) fn restart(&mut self, node: NodeId, busy_slots: u32) {
        if !self.active[node] {
            self.active[node] = true;
            for _ in 0..self.slots_per_node.saturating_sub(busy_slots) {
                self.idle.push_back((node, self.epoch[node]));
            }
        }
    }
}

/// Per-run driver bookkeeping, sized once up front so the event loop's
/// ack/dispatch path allocates nothing in steady state: in-flight jobs and
/// trace timestamps live in dense slabs indexed by ensemble-wide job
/// index, and the action/profile buffers are reused across events.
struct DriverState {
    queue: VecDeque<DispatchMsg>,
    /// In-flight dispatch per ensemble-wide job index (`None` = not running).
    running: Vec<Option<DispatchMsg>>,
    /// First ensemble-wide job index of each submitted workflow
    /// (prefix sums of job counts, in engine submission order).
    job_base: Vec<u64>,
    next_base: u64,
    pool: SlotPool,
    /// (dispatch time, checkout time) per job index, when tracing.
    trace_times: Vec<(f64, f64)>,
    /// Dispatch time per job index, NaN = none recorded; when tracing.
    dispatch_times: Vec<f64>,
    tracing: bool,
    overhead_secs: f64,
    /// Scratch job profile; its read/write vectors are reused per dispatch.
    profile: JobProfile,
    /// Scratch buffer the engine's sink-based methods append to.
    actions: Vec<Action>,
    /// Jobs running per node, when the runtime needs drain accounting
    /// (autoscale); empty = not tracked.
    node_running: Vec<u32>,
    workflow_makespans: Vec<f64>,
    completed_count: usize,
    /// Workflows settled with dead-lettered jobs (makespan stays 0.0).
    abandoned_count: usize,
    all_done_at: Option<f64>,
    /// Message-level fault injector, when configured.
    chaos: Option<ChaosDecider>,
    /// Scripted per-job failures, when configured.
    failure_script: Vec<ScriptedFailure>,
}

impl DriverState {
    fn new(workflows: &[Arc<Workflow>], pool: SlotPool, config: &SimRunConfig) -> Self {
        let total_jobs: usize = workflows.iter().map(|w| w.job_count()).sum();
        let tracing = config.record_trace;
        Self {
            queue: VecDeque::new(),
            running: vec![None; total_jobs],
            job_base: Vec::with_capacity(workflows.len()),
            next_base: 0,
            pool,
            trace_times: if tracing { vec![(0.0, 0.0); total_jobs] } else { Vec::new() },
            dispatch_times: if tracing { vec![f64::NAN; total_jobs] } else { Vec::new() },
            tracing,
            overhead_secs: config.per_job_overhead_secs,
            profile: JobProfile {
                reads: Vec::new(),
                cpu_seconds: 0.0,
                cores: 1,
                writes: Vec::new(),
            },
            actions: Vec::new(),
            node_running: Vec::new(),
            workflow_makespans: vec![0.0f64; workflows.len()],
            completed_count: 0,
            abandoned_count: 0,
            all_done_at: None,
            chaos: config.chaos.map(ChaosDecider::new),
            failure_script: config.failure_script.clone(),
        }
    }

    /// Scripted failing-attempt count for a job (0 = never fails).
    fn failing_attempts(&self, job: EnsembleJobId) -> u32 {
        self.failure_script
            .iter()
            .find(|f| f.workflow == job.workflow.0 && f.job == job.job.0)
            .map_or(0, |f| f.failing_attempts)
    }

    /// Dense ensemble-wide index of a job: provably below the wake-token
    /// tag space (unlike bit-packing workflow/job ids, which silently
    /// collided with the tags once `job.0` reached 2^24 or `workflow.0`
    /// reached 2^32).
    #[inline]
    fn token(&self, job: EnsembleJobId) -> u64 {
        self.job_base[job.workflow.index()] + job.job.0 as u64
    }

    /// Record a workflow's token range at submission time.
    fn register_workflow(&mut self, wf: dewe_dag::WorkflowId, job_count: usize) {
        debug_assert_eq!(wf.index(), self.job_base.len(), "engine ids are sequential");
        self.job_base.push(self.next_base);
        self.next_base += job_count as u64;
        debug_assert!(
            self.next_base < TAG_SUBMIT,
            "job tokens must stay below the wake-token tag space"
        );
    }

    /// How many copies of a message survive the chaos layer: 0 (dropped),
    /// 1, or 2 (duplicated). Keyed by (workflow, job, attempt, kind) so a
    /// resubmitted attempt rolls fresh dice and the decision is identical
    /// across runs regardless of event interleaving.
    fn chaos_copies(&self, stream: u64, job: EnsembleJobId, attempt: u32, kind: u64) -> usize {
        let Some(ch) = &self.chaos else { return 1 };
        let key = chaos::message_key(
            job.workflow.index() as u64,
            job.job.index() as u64,
            (u64::from(attempt) << 2) | kind,
        );
        if ch.drops(stream, key) {
            0
        } else if ch.duplicates(stream, key) {
            2
        } else {
            1
        }
    }

    /// Record that a workflow reached a terminal state (completed or
    /// abandoned); the run ends when the expected total has settled.
    fn workflow_settled(&mut self, now: f64) {
        if self.completed_count + self.abandoned_count == self.workflow_makespans.len() {
            self.all_done_at = Some(now);
        }
    }

    /// Turn engine actions into queue entries / bookkeeping, draining the
    /// scratch action buffer. The engine's `AllCompleted`/`AllSettled`
    /// only cover workflows submitted *so far*; under incremental
    /// submission the run ends when the expected total has settled, so
    /// terminal transitions are counted here.
    fn handle_actions(&mut self, now: f64) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain(..) {
            match action {
                Action::Dispatch(d) => {
                    if self.tracing {
                        let t = self.token(d.job) as usize;
                        self.dispatch_times[t] = now;
                    }
                    for _ in 0..self.chaos_copies(chaos::streams::DISPATCH, d.job, d.attempt, 2) {
                        self.queue.push_back(d);
                    }
                }
                Action::WorkflowCompleted { workflow, makespan_secs } => {
                    self.workflow_makespans[workflow.index()] = makespan_secs;
                    self.completed_count += 1;
                    self.workflow_settled(now);
                }
                Action::WorkflowAbandoned { .. } => {
                    self.abandoned_count += 1;
                    self.workflow_settled(now);
                }
                Action::JobDeadLettered { .. } | Action::AllCompleted | Action::AllSettled => {}
            }
        }
        self.actions = actions;
    }

    /// Assign queued jobs to idle slots (the pull loop).
    fn try_assign<E: EngineCore>(&mut self, exec: &mut ExecSim, engine: &mut E) {
        while !self.queue.is_empty() {
            let Some(node) = self.pool.pop_idle() else { break };
            let d = self.queue.pop_front().expect("queue non-empty");
            let now = exec.now().as_secs_f64();
            // Worker checks the job out: Running acknowledgment. Under
            // chaos this ack may be lost (the job still runs — losing the
            // message doesn't kill the work) or delivered twice
            // (idempotent on the engine side).
            for _ in 0..self.chaos_copies(chaos::streams::ACK, d.job, d.attempt, 0) {
                engine.on_ack(
                    AckMsg {
                        job: d.job,
                        worker: node as u32,
                        kind: AckKind::Running,
                        attempt: d.attempt,
                    },
                    now,
                    &mut self.actions,
                );
            }
            debug_assert!(self.actions.is_empty(), "a Running ack emits no actions");
            let workflow = engine.workflow(d.job.workflow);
            let spec = workflow.job(d.job.job);
            self.profile.reads.clear();
            self.profile.reads.extend(
                spec.inputs
                    .iter()
                    .map(|&f| (file_key(d.job.workflow, f), workflow.file(f).size_bytes as f64)),
            );
            self.profile.cpu_seconds = spec.cpu_seconds + self.overhead_secs;
            self.profile.cores = spec.cores;
            self.profile.writes.clear();
            self.profile.writes.extend(
                spec.outputs
                    .iter()
                    .map(|&f| (file_key(d.job.workflow, f), workflow.file(f).size_bytes as f64)),
            );
            let token = self.token(d.job);
            if self.tracing {
                let recorded = self.dispatch_times[token as usize];
                let dispatched = if recorded.is_nan() { now } else { recorded };
                self.dispatch_times[token as usize] = f64::NAN;
                self.trace_times[token as usize] = (dispatched, now);
            }
            if !self.node_running.is_empty() {
                self.node_running[node] += 1;
            }
            self.running[token as usize] = Some(d);
            exec.submit_job(token, node, &self.profile);
        }
    }
}

/// The engine configuration a sim config implies. With message drop in
/// play a lost dispatch would otherwise hang the run (the checkout clock
/// never starts), so the checkout timeout defaults to the job timeout
/// when chaos can drop messages.
fn engine_config_for(config: &SimRunConfig) -> EngineConfig {
    let checkout_timeout_secs = config.checkout_timeout_secs.or_else(|| {
        config
            .chaos
            .as_ref()
            .and_then(|c| (c.drop_prob > 0.0).then_some(config.default_timeout_secs))
    });
    EngineConfig {
        default_timeout_secs: config.default_timeout_secs,
        checkout_timeout_secs,
        retry: config.retry,
        timer_backend: config.timer_backend,
    }
}

/// Run an ensemble of workflows on a simulated cluster with DEWE v2.
///
/// With `config.shards > 1` the driver runs a [`ShardedEngine`] facade:
/// full feature set (faults, chaos, metrics), single-threaded, identical
/// observable behavior modulo shard placement. For wall-clock-parallel
/// simulation see [`run_ensemble_sharded`].
pub fn run_ensemble(workflows: &[Arc<Workflow>], config: &SimRunConfig) -> SimReport {
    assert!(config.shards >= 1, "shard count must be at least 1");
    if config.shards > 1 && config.threads > 1 {
        // Thread-parallel driver in deterministic barrier mode: the
        // event loop below feeds it one event at a time, so outcomes are
        // bit-identical to the sequential facade while per-shard engine
        // work runs on the worker threads.
        let engine = engine_config_for(config).build_parallel(config.shards, config.threads);
        drive_ensemble(workflows, config, engine, None)
    } else if config.shards > 1 {
        let engine = engine_config_for(config).build_sharded(config.shards);
        drive_ensemble(workflows, config, engine, None)
    } else {
        let engine = engine_config_for(config).build();
        drive_ensemble(workflows, config, engine, None)
    }
}

/// The event loop shared by every sim entry point, generic over the
/// engine. `submit_times` overrides `config.submission` with explicit
/// per-workflow submission times (the partitioned runner uses it to
/// preserve *global* stagger within each shard's subset).
fn drive_ensemble<E: EngineCore>(
    workflows: &[Arc<Workflow>],
    config: &SimRunConfig,
    mut engine: E,
    submit_times: Option<&[f64]>,
) -> SimReport {
    assert!(!workflows.is_empty(), "ensemble must contain at least one workflow");
    let mut exec = ExecSim::new(config.cluster);
    let nodes = config.cluster.nodes;
    if let Some(speeds) = &config.node_speed_factors {
        assert_eq!(speeds.len(), nodes, "one speed factor per node");
        for (n, &f) in speeds.iter().enumerate() {
            exec.cluster_mut().set_speed_factor(n, f);
        }
    }
    let slots_per_node = config.slots_per_node.unwrap_or(config.cluster.instance.vcpus);
    let pool = SlotPool::new(nodes, slots_per_node);
    let mut state = DriverState::new(workflows, pool, config);
    let mut sampler =
        config.sample.then(|| ClusterSampler::new(nodes, config.cluster.instance.vcpus));
    let mut gantt = config.record_gantt.then(Gantt::new);
    let mut trace = config.record_trace.then(dewe_metrics::Trace::new);

    // Schedule submissions.
    match submit_times {
        Some(times) => {
            assert_eq!(times.len(), workflows.len(), "one submission time per workflow");
            for (i, &t) in times.iter().enumerate() {
                exec.schedule_wake(t, TAG_SUBMIT | i as u64);
            }
        }
        None => match config.submission {
            SubmissionPlan::Batch => {
                for (i, _) in workflows.iter().enumerate() {
                    exec.schedule_wake(0.0, TAG_SUBMIT | i as u64);
                }
            }
            SubmissionPlan::Interval(secs) => {
                for (i, _) in workflows.iter().enumerate() {
                    exec.schedule_wake(secs * i as f64, TAG_SUBMIT | i as u64);
                }
            }
        },
    }
    // Master timeout scan + metrics sampling + faults.
    exec.schedule_wake(config.timeout_scan_secs, TAG_SCAN);
    if sampler.is_some() {
        exec.schedule_wake(SAMPLE_INTERVAL_SECS, TAG_SAMPLE);
    }
    for (i, fault) in config.faults.iter().enumerate() {
        assert!(fault.node < nodes, "fault on unknown node");
        exec.schedule_wake(fault.kill_at_secs, TAG_KILL | i as u64);
        if let Some(at) = fault.restart_at_secs {
            exec.schedule_wake(at, TAG_RESTART | i as u64);
        }
    }

    while let Some(event) = exec.next() {
        match event {
            SimEvent::JobFinished { token, node, timings } => {
                let Some(d) = state.running[token as usize].take() else {
                    // A chaos-duplicated dispatch ran the job twice under
                    // one token and the first finish consumed the entry:
                    // free the slot, send no ack. (Killed jobs never get
                    // here — kill_jobs_on suppresses their completions.)
                    state.pool.release(node);
                    state.try_assign(&mut exec, &mut engine);
                    continue;
                };
                // Scripted failure: the worker ran the attempt but
                // reports Failed instead of Completed.
                let scripted_fail = d.attempt <= state.failing_attempts(d.job);
                if !scripted_fail {
                    if let Some(g) = gantt.as_mut() {
                        g.record(node, timings);
                    }
                    if let Some(tr) = trace.as_mut() {
                        // The start time comes from this finish event's own
                        // timings: under message chaos a duplicated or
                        // resubmitted copy of the job can overwrite the
                        // per-token `trace_times` slot while an earlier copy
                        // is still executing, so the slot's times may belong
                        // to a later attempt. Clamp `dispatched` for the
                        // same reason.
                        let started = timings.submitted.as_secs_f64();
                        let (dispatched, _) = state.trace_times[token as usize];
                        let dispatched = dispatched.min(started);
                        let wf = engine.workflow(d.job.workflow);
                        tr.record(dewe_metrics::JobTrace {
                            workflow: d.job.workflow.0,
                            job: d.job.job.0,
                            xform: wf.job(d.job.job).xform.clone(),
                            attempt: d.attempt,
                            node,
                            dispatched,
                            started,
                            read_done: timings.read_done.as_secs_f64(),
                            compute_done: timings.compute_done.as_secs_f64(),
                            finished: timings.finished.as_secs_f64(),
                        });
                    }
                }
                state.pool.release(node);
                let now = exec.now().as_secs_f64();
                if scripted_fail {
                    // A failure report is authoritative and exactly-once:
                    // it bypasses the chaos layer because the engine does
                    // not deduplicate Failed acks (a dropped or doubled
                    // one would desynchronize the retry budget).
                    engine.on_ack(
                        AckMsg {
                            job: d.job,
                            worker: node as u32,
                            kind: AckKind::Failed,
                            attempt: d.attempt,
                        },
                        now,
                        &mut state.actions,
                    );
                } else {
                    // Under chaos the completion ack may be lost (the
                    // master times the job out and resubmits — the work
                    // reruns) or duplicated (the second copy is dedup
                    // noise).
                    for _ in 0..state.chaos_copies(chaos::streams::ACK, d.job, d.attempt, 1) {
                        engine.on_ack(
                            AckMsg {
                                job: d.job,
                                worker: node as u32,
                                kind: AckKind::Completed,
                                attempt: d.attempt,
                            },
                            now,
                            &mut state.actions,
                        );
                    }
                }
                state.handle_actions(now);
                state.try_assign(&mut exec, &mut engine);
            }
            SimEvent::Wake { token } => {
                let now = exec.now().as_secs_f64();
                match token & TAG_MASK {
                    TAG_SUBMIT => {
                        let idx = (token & !TAG_MASK) as usize;
                        let workflow = Arc::clone(&workflows[idx]);
                        let job_count = workflow.job_count();
                        let id = engine.submit_workflow(workflow, now, &mut state.actions);
                        state.register_workflow(id, job_count);
                        state.handle_actions(now);
                        state.try_assign(&mut exec, &mut engine);
                    }
                    TAG_SCAN => {
                        engine.check_timeouts(now, &mut state.actions);
                        state.handle_actions(now);
                        state.try_assign(&mut exec, &mut engine);
                        if state.all_done_at.is_none() {
                            exec.schedule_wake(config.timeout_scan_secs, TAG_SCAN);
                        }
                    }
                    TAG_SAMPLE => {
                        if let Some(s) = sampler.as_mut() {
                            let counters: Vec<_> =
                                (0..nodes).map(|n| exec.node_counters(n)).collect();
                            s.sample(now, &counters);
                        }
                        if state.all_done_at.is_none() {
                            exec.schedule_wake(SAMPLE_INTERVAL_SECS, TAG_SAMPLE);
                        }
                    }
                    TAG_KILL => {
                        let idx = (token & !TAG_MASK) as usize;
                        let node = config.faults[idx].node;
                        let killed = exec.kill_jobs_on(node);
                        for t in killed {
                            state.running[t as usize] = None;
                        }
                        state.pool.kill(node);
                    }
                    TAG_RESTART => {
                        let idx = (token & !TAG_MASK) as usize;
                        // The kill destroyed the node's jobs, so every slot
                        // is free on restart.
                        state.pool.restart(config.faults[idx].node, 0);
                        state.try_assign(&mut exec, &mut engine);
                    }
                    _ => unreachable!("unknown wake tag"),
                }
            }
        }
        // Exit when done. With sampling on, run a short tail so the series
        // show the ramp-down.
        match state.all_done_at {
            Some(done) if sampler.is_none() => {
                let _ = done;
                break;
            }
            Some(done) if exec.now().as_secs_f64() > done + 2.0 * SAMPLE_INTERVAL_SECS => break,
            None if config.horizon_secs.is_some_and(|h| exec.now().as_secs_f64() > h) => break,
            _ => {}
        }
    }

    let makespan = state.all_done_at.unwrap_or_else(|| exec.now().as_secs_f64());
    let mut total_cpu = 0.0;
    let mut total_rd = 0.0;
    let mut total_wr = 0.0;
    for n in 0..nodes {
        let c = exec.node_counters(n);
        total_cpu += c.cpu_busy_core_secs;
        total_rd += c.bytes_read;
        total_wr += c.bytes_written;
    }
    let cost = exec.cluster().cost_model().cost(nodes, makespan);
    SimReport {
        makespan_secs: makespan,
        completed: state.all_done_at.is_some() && state.abandoned_count == 0,
        workflow_makespans: state.workflow_makespans,
        total_cpu_core_secs: total_cpu,
        total_bytes_read: total_rd,
        total_bytes_written: total_wr,
        cache_hit_rate: exec.storage().cache_hit_rate(),
        engine: engine.stats(),
        sampler,
        gantt,
        trace,
        cost_usd: cost,
        effective_shards: engine.shard_count(),
        wheel_cascades: engine.timer_cascades(),
    }
}

/// Run the ensemble partitioned for wall-clock parallelism: the cluster's
/// nodes split into `config.shards` contiguous groups (effective shards =
/// `min(shards, nodes)`), workflows routed to shards by the default
/// [`HashRouter`] over dense global ids — the same placement the
/// [`ShardedEngine`] facade derives — and each shard simulated on its own
/// OS thread with its own [`EnsembleEngine`]. Shards share nothing, so on
/// a multi-core host simulation wall-clock drops near-linearly with the
/// shard count. Global submission times are preserved: a staggered plan
/// staggers within each shard exactly as it would globally.
///
/// The merged report takes the max makespan, reassembles per-workflow
/// makespans by global index, sums resource/cost totals, merges engine
/// stats, and averages the cache hit rate across shards.
///
/// Restrictions: fault plans, message chaos, and the sampler/gantt/trace
/// recorders have cluster-global semantics and are rejected here — use
/// the single-threaded [`run_ensemble`] facade (which shards the *engine*
/// but not the cluster) when you need them.
pub fn run_ensemble_sharded(workflows: &[Arc<Workflow>], config: &SimRunConfig) -> SimReport {
    assert!(!workflows.is_empty(), "ensemble must contain at least one workflow");
    assert!(config.shards >= 1, "shard count must be at least 1");
    assert!(config.faults.is_empty(), "fault plans are cluster-global; use run_ensemble");
    assert!(config.chaos.is_none(), "message chaos is stream-global; use run_ensemble");
    assert!(
        config.failure_script.is_empty(),
        "failure scripts index global workflows; use run_ensemble"
    );
    assert!(
        !config.sample && !config.record_gantt && !config.record_trace,
        "metrics recording is cluster-global; use run_ensemble"
    );
    let nodes = config.cluster.nodes;
    let shards = config.shards.min(nodes);
    if shards <= 1 {
        return run_ensemble(workflows, config);
    }

    let times: Vec<f64> = match config.submission {
        SubmissionPlan::Batch => vec![0.0; workflows.len()],
        SubmissionPlan::Interval(secs) => (0..workflows.len()).map(|i| secs * i as f64).collect(),
    };

    let router = HashRouter::default();
    let mut loads = vec![ShardLoad { total_workflows: 0, live_workflows: 0 }; shards];
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, wf) in workflows.iter().enumerate() {
        let s = router.route(wf, i, &loads);
        loads[s].total_workflows += 1;
        loads[s].live_workflows += 1;
        parts[s].push(i);
    }

    // Contiguous node ranges, the remainder spread over the first shards.
    // Shards the router left empty are skipped (their nodes never boot,
    // so they bill nothing).
    let base = nodes / shards;
    let extra = nodes % shards;
    let mut node_start = 0usize;
    let mut plans: Vec<(Vec<usize>, SimRunConfig, Vec<f64>)> = Vec::new();
    for (s, part) in parts.into_iter().enumerate() {
        let share = base + usize::from(s < extra);
        let start = node_start;
        node_start += share;
        if part.is_empty() {
            continue;
        }
        let mut sub = config.clone();
        sub.shards = 1;
        sub.cluster.nodes = share;
        sub.node_speed_factors =
            config.node_speed_factors.as_ref().map(|f| f[start..start + share].to_vec());
        let sub_times: Vec<f64> = part.iter().map(|&i| times[i]).collect();
        plans.push((part, sub, sub_times));
    }

    // `config.threads` caps the OS thread pool (0 = one thread per
    // shard); worker `w` runs plans `w, w + workers, …` sequentially, so
    // the per-shard sub-simulations — and their results — are identical
    // no matter how many threads carry them.
    let workers = match config.threads {
        0 => plans.len(),
        t => t.clamp(1, plans.len()),
    };
    let reports: Vec<(&Vec<usize>, SimReport)> = std::thread::scope(|scope| {
        let plans = &plans;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < plans.len() {
                        let (part, sub, sub_times) = &plans[idx];
                        let wfs: Vec<Arc<Workflow>> =
                            part.iter().map(|&i| Arc::clone(&workflows[i])).collect();
                        let engine = engine_config_for(sub).build();
                        out.push((idx, drive_ensemble(&wfs, sub, engine, Some(sub_times))));
                        idx += workers;
                    }
                    out
                })
            })
            .collect();
        let mut slots: Vec<Option<SimReport>> = (0..plans.len()).map(|_| None).collect();
        for h in handles {
            for (idx, report) in h.join().expect("shard thread panicked") {
                slots[idx] = Some(report);
            }
        }
        plans
            .iter()
            .zip(slots)
            .map(|((part, _, _), r)| (part, r.expect("every shard plan ran")))
            .collect()
    });

    let shard_count = reports.len() as f64;
    let mut merged = SimReport {
        makespan_secs: 0.0,
        workflow_makespans: vec![0.0; workflows.len()],
        completed: true,
        total_cpu_core_secs: 0.0,
        total_bytes_read: 0.0,
        total_bytes_written: 0.0,
        cache_hit_rate: 0.0,
        engine: EngineStats::default(),
        sampler: None,
        gantt: None,
        trace: None,
        cost_usd: 0.0,
        effective_shards: shards,
        wheel_cascades: 0,
    };
    for (part, r) in reports {
        merged.makespan_secs = merged.makespan_secs.max(r.makespan_secs);
        for (local, &global) in part.iter().enumerate() {
            merged.workflow_makespans[global] = r.workflow_makespans[local];
        }
        merged.completed &= r.completed;
        merged.total_cpu_core_secs += r.total_cpu_core_secs;
        merged.total_bytes_read += r.total_bytes_read;
        merged.total_bytes_written += r.total_bytes_written;
        merged.cache_hit_rate += r.cache_hit_rate / shard_count;
        merged.engine.merge(&r.engine);
        merged.wheel_cascades += r.wheel_cascades;
        merged.cost_usd += r.cost_usd;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;
    use dewe_simcloud::{SharedFsKind, StorageConfig, C3_8XLARGE};

    fn cluster(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            instance: C3_8XLARGE,
            nodes,
            storage: StorageConfig::Shared(SharedFsKind::DistFs),
        }
    }

    /// `width` parallel jobs of `secs` CPU-seconds each, no I/O.
    fn parallel_wf(width: usize, secs: f64) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("par");
        for i in 0..width {
            b.job(format!("j{i}"), "t", secs).build();
        }
        Arc::new(b.finish().unwrap())
    }

    fn chain_wf(len: usize, secs: f64) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..len {
            let j = b.job(format!("j{i}"), "t", secs).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    fn no_overhead(cluster: ClusterConfig) -> SimRunConfig {
        SimRunConfig { per_job_overhead_secs: 0.0, ..SimRunConfig::new(cluster) }
    }

    #[test]
    fn single_chain_makespan_is_sum() {
        let report = run_ensemble(&[chain_wf(5, 2.0)], &no_overhead(cluster(1)));
        assert!(report.completed);
        assert!((report.makespan_secs - 10.0).abs() < 0.1, "{}", report.makespan_secs);
        assert_eq!(report.engine.jobs_completed, 5);
    }

    #[test]
    fn parallel_jobs_fill_all_slots() {
        // 64 x 1s jobs on 32 slots -> 2 waves -> ~2 s.
        let report = run_ensemble(&[parallel_wf(64, 1.0)], &no_overhead(cluster(1)));
        assert!((report.makespan_secs - 2.0).abs() < 0.1, "{}", report.makespan_secs);
        assert!((report.total_cpu_core_secs - 64.0).abs() < 0.5);
    }

    #[test]
    fn two_nodes_halve_parallel_makespan() {
        let one = run_ensemble(&[parallel_wf(128, 1.0)], &no_overhead(cluster(1)));
        let two = run_ensemble(&[parallel_wf(128, 1.0)], &no_overhead(cluster(2)));
        assert!((one.makespan_secs - 4.0).abs() < 0.2);
        assert!((two.makespan_secs - 2.0).abs() < 0.2);
    }

    #[test]
    fn ensemble_workflows_run_in_parallel() {
        // 4 chains of 3 x 1 s: chains from different workflows interleave
        // across slots; makespan ~3 s, not 12 s.
        let wfs: Vec<_> = (0..4).map(|_| chain_wf(3, 1.0)).collect();
        let report = run_ensemble(&wfs, &no_overhead(cluster(1)));
        assert!(report.completed);
        assert!(report.makespan_secs < 4.0, "{}", report.makespan_secs);
        assert_eq!(report.workflow_makespans.len(), 4);
        assert!(report.workflow_makespans.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn incremental_submission_staggers_starts() {
        let wfs: Vec<_> = (0..3).map(|_| parallel_wf(4, 1.0)).collect();
        let batch = run_ensemble(&wfs, &no_overhead(cluster(1)));
        let mut cfg = no_overhead(cluster(1));
        cfg.submission = SubmissionPlan::Interval(10.0);
        let staggered = run_ensemble(&wfs, &cfg);
        // Batch: everything at once (~1 s). Staggered: last submitted at 20 s.
        assert!(batch.makespan_secs < 2.0);
        assert!((staggered.makespan_secs - 21.0).abs() < 0.5, "{}", staggered.makespan_secs);
    }

    #[test]
    fn worker_kill_and_restart_recovers_via_timeout() {
        // One long job; the only node dies mid-job and restarts. A blocking
        // job must wait out the timeout (paper §V.A.3).
        let wf = chain_wf(1, 100.0);
        let mut cfg = no_overhead(cluster(1));
        cfg.default_timeout_secs = 150.0;
        cfg.faults = vec![NodeFault { node: 0, kill_at_secs: 50.0, restart_at_secs: Some(55.0) }];
        let report = run_ensemble(&[wf], &cfg);
        assert!(report.completed);
        assert_eq!(report.engine.resubmissions, 1);
        assert!(report.makespan_secs > 200.0, "{}", report.makespan_secs);
        assert!(report.makespan_secs < 300.0, "{}", report.makespan_secs);
    }

    #[test]
    fn nonblocking_kill_resumes_quickly() {
        // Plenty of independent jobs: after restart, the worker resumes
        // with OTHER jobs immediately; only the killed in-flight jobs wait
        // for the timeout tail.
        let wf = parallel_wf(320, 1.0); // 10 waves on 32 slots
        let mut cfg = no_overhead(cluster(1));
        cfg.default_timeout_secs = 30.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.faults = vec![NodeFault { node: 0, kill_at_secs: 5.0, restart_at_secs: Some(7.0) }];
        let report = run_ensemble(&[wf], &cfg);
        assert!(report.completed);
        assert!(report.engine.resubmissions >= 32);
        assert!(report.makespan_secs < 50.0, "{}", report.makespan_secs);
    }

    #[test]
    fn sampler_collects_series() {
        let mut cfg = no_overhead(cluster(1));
        cfg.sample = true;
        let report = run_ensemble(&[parallel_wf(64, 5.0)], &cfg);
        let sampler = report.sampler.expect("sampling enabled");
        let cpu = sampler.mean_cpu_util();
        assert!(!cpu.is_empty());
        // 64 jobs x 5 s on 32 cores: utilization reaches 100%.
        assert!(cpu.max() > 99.0, "max util {}", cpu.max());
    }

    #[test]
    fn gantt_records_every_job() {
        let mut cfg = no_overhead(cluster(1));
        cfg.record_gantt = true;
        let report = run_ensemble(&[parallel_wf(10, 1.0)], &cfg);
        assert_eq!(report.gantt.expect("gantt").len(), 10);
    }

    #[test]
    fn per_job_overhead_slows_short_jobs() {
        let fast = run_ensemble(&[parallel_wf(64, 1.0)], &no_overhead(cluster(1)));
        let mut cfg = SimRunConfig::new(cluster(1));
        cfg.per_job_overhead_secs = 1.0;
        let slow = run_ensemble(&[parallel_wf(64, 1.0)], &cfg);
        assert!(slow.makespan_secs > fast.makespan_secs * 1.8);
    }

    #[test]
    fn deterministic_given_same_config() {
        let wfs: Vec<_> = (0..3).map(|_| chain_wf(4, 0.7)).collect();
        let a = run_ensemble(&wfs, &no_overhead(cluster(2)));
        let b = run_ensemble(&wfs, &no_overhead(cluster(2)));
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.workflow_makespans, b.workflow_makespans);
        assert_eq!(a.engine.dispatches, b.engine.dispatches);
    }

    #[test]
    fn cost_uses_hourly_billing() {
        let report = run_ensemble(&[parallel_wf(32, 1.0)], &no_overhead(cluster(2)));
        // Under an hour on 2 c3.8xlarge -> 2 x 1.68.
        assert!((report.cost_usd - 3.36).abs() < 1e-9);
    }

    #[test]
    fn trace_records_every_job_with_ordered_phases() {
        let mut cfg = no_overhead(cluster(1));
        cfg.record_trace = true;
        let report = run_ensemble(&[chain_wf(4, 1.0)], &cfg);
        let trace = report.trace.expect("trace requested");
        assert_eq!(trace.len(), 4);
        for e in trace.events() {
            assert!(e.dispatched <= e.started);
            assert!(e.started <= e.read_done);
            assert!(e.finished <= report.makespan_secs + 1e-6);
            assert_eq!(e.attempt, 1);
        }
        // Chain jobs queue-wait ~0 (each dispatched when its parent ends).
        let qw = trace.queue_wait_summary().unwrap();
        assert!(qw.max < 0.1, "chain jobs should not queue: {qw:?}");
    }

    #[test]
    fn trace_exports_are_well_formed() {
        let mut cfg = no_overhead(cluster(2));
        cfg.record_trace = true;
        let report = run_ensemble(&[parallel_wf(70, 1.0)], &cfg);
        let trace = report.trace.unwrap();
        assert_eq!(trace.len(), 70);
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 71);
        let json = trace.to_chrome_json();
        assert_eq!(json.matches("\"cat\":\"job\"").count(), 70);
        // 70 jobs on 64 slots: the overflow wave shows queue wait ~1 s.
        let qw = trace.queue_wait_summary().unwrap();
        assert!(qw.max > 0.5, "second wave must have waited: {qw:?}");
    }

    #[test]
    fn always_failing_job_dead_letters_and_run_terminates() {
        // Workflow 0's root takes 100 s of CPU but times out after 10 s:
        // every attempt fails, so with a 3-attempt budget it dead-letters
        // and its dependent is written off — while workflow 1 completes
        // untouched. Without the cap this run would never terminate.
        let mut b = WorkflowBuilder::new("doomed");
        let root = b.job("hog", "t", 100.0).build();
        let child = b.job("child", "t", 1.0).build();
        b.edge(root, child);
        let doomed = Arc::new(b.finish().unwrap());
        let healthy = chain_wf(3, 1.0);
        let mut cfg = no_overhead(cluster(1));
        cfg.default_timeout_secs = 10.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.retry = crate::engine::RetryPolicy {
            max_attempts: Some(3),
            ..crate::engine::RetryPolicy::default()
        };
        let report = run_ensemble(&[doomed, healthy], &cfg);
        assert!(!report.completed, "partial completion must be reported");
        assert_eq!(report.engine.dead_lettered, 1);
        assert_eq!(report.engine.jobs_abandoned, 2, "root + dependent");
        assert_eq!(report.engine.workflows_abandoned, 1);
        assert_eq!(report.engine.workflows_completed, 1, "healthy workflow unaffected");
        assert!(report.workflow_makespans[1] > 0.0);
        // Terminates promptly: 3 attempts x ~10 s timeout, not 100 s+.
        assert!(report.makespan_secs < 60.0, "{}", report.makespan_secs);
    }

    #[test]
    fn backoff_spaces_retries_in_sim_time() {
        // Same doomed job, but retries back off 20/40 s: the dead-letter
        // arrives later than with immediate retries, by the backoff sum.
        let wf = || {
            let mut b = WorkflowBuilder::new("doomed");
            b.job("hog", "t", 100.0).build();
            Arc::new(b.finish().unwrap())
        };
        let base = |backoff: f64| {
            let mut cfg = no_overhead(cluster(1));
            cfg.default_timeout_secs = 10.0;
            cfg.timeout_scan_secs = 1.0;
            cfg.retry = crate::engine::RetryPolicy {
                max_attempts: Some(3),
                backoff_base_secs: backoff,
                backoff_factor: 2.0,
                ..crate::engine::RetryPolicy::default()
            };
            run_ensemble(&[wf()], &cfg)
        };
        let immediate = base(0.0);
        let spaced = base(20.0);
        assert!(!immediate.completed && !spaced.completed);
        assert_eq!(spaced.engine.deferred_retries, 2);
        // 20 + 40 s of backoff shows up in the terminal time.
        assert!(
            spaced.makespan_secs > immediate.makespan_secs + 50.0,
            "immediate {} vs spaced {}",
            immediate.makespan_secs,
            spaced.makespan_secs
        );
    }

    #[test]
    fn chaos_drop_and_dup_still_completes() {
        // Seeded 5% drop + 5% duplication on dispatches and acks: the
        // ensemble must still finish, with only resubmission and
        // duplicate-completion noise.
        let wfs: Vec<_> = (0..4).map(|_| chain_wf(5, 1.0)).collect();
        let mut cfg = no_overhead(cluster(1));
        cfg.default_timeout_secs = 20.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.chaos = Some(ChaosConfig::drop_dup(0xC4A05, 0.05, 0.05));
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed, "all workflows must survive message chaos");
        assert_eq!(report.engine.jobs_completed, 20);
        assert_eq!(report.engine.dead_lettered, 0);
        let noise = report.engine.resubmissions + report.engine.duplicate_completions;
        assert!(noise > 0, "5% chaos on 20 jobs should leave traces");
        // Lost completions rerun the job; the makespan only degrades by
        // timeout tails, it does not hang.
        assert!(report.makespan_secs < 200.0, "{}", report.makespan_secs);
    }

    #[test]
    fn chaos_runs_are_deterministic_per_seed() {
        let wfs: Vec<_> = (0..3).map(|_| chain_wf(4, 1.0)).collect();
        let run = |seed| {
            let mut cfg = no_overhead(cluster(1));
            cfg.default_timeout_secs = 15.0;
            cfg.timeout_scan_secs = 1.0;
            cfg.chaos = Some(ChaosConfig::drop_dup(seed, 0.1, 0.1));
            run_ensemble(&wfs, &cfg)
        };
        let (a, b, c) = (run(1), run(1), run(2));
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.engine, b.engine, "same seed, same run");
        assert!(
            c.engine != a.engine || c.makespan_secs != a.makespan_secs,
            "different seed should perturb the run"
        );
    }

    #[test]
    fn chaos_heavy_drop_recovers_via_checkout_timeout() {
        // 30% drop: some dispatches never reach a worker. The implied
        // checkout timeout resubmits them, so the run still finishes.
        let mut cfg = no_overhead(cluster(1));
        cfg.default_timeout_secs = 10.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.chaos = Some(ChaosConfig::drop_dup(7, 0.3, 0.0));
        let report = run_ensemble(&[parallel_wf(40, 1.0)], &cfg);
        assert!(report.completed);
        assert!(report.engine.resubmissions > 0, "drops must be recovered by resubmission");
    }

    #[test]
    fn sharded_facade_matches_single_engine() {
        let wfs: Vec<_> = (0..6).map(|_| chain_wf(3, 1.0)).collect();
        let single = run_ensemble(&wfs, &no_overhead(cluster(2)));
        let mut cfg = no_overhead(cluster(2));
        cfg.shards = 4;
        let sharded = run_ensemble(&wfs, &cfg);
        assert!(sharded.completed);
        // Identical cluster, identical work: sharding only changes which
        // heap tracks a job, not when it dispatches.
        assert_eq!(single.makespan_secs, sharded.makespan_secs);
        assert_eq!(single.workflow_makespans, sharded.workflow_makespans);
        assert_eq!(single.engine, sharded.engine);
    }

    #[test]
    fn parallel_engine_matches_sequential_facade_in_sim() {
        // The thread-parallel driver in deterministic barrier mode is
        // observationally the sequential facade: identical makespans,
        // identical stats, down to the bit.
        let wfs: Vec<_> = (0..6).map(|_| chain_wf(3, 1.0)).collect();
        let mut seq = no_overhead(cluster(2));
        seq.shards = 4;
        let sequential = run_ensemble(&wfs, &seq);
        let mut par = no_overhead(cluster(2));
        par.shards = 4;
        par.threads = 4;
        let parallel = run_ensemble(&wfs, &par);
        assert!(parallel.completed);
        assert_eq!(sequential.makespan_secs, parallel.makespan_secs);
        assert_eq!(sequential.workflow_makespans, parallel.workflow_makespans);
        assert_eq!(sequential.engine, parallel.engine);
    }

    #[test]
    fn parallel_engine_survives_chaos_and_faults() {
        // Full feature set through the barrier-mode parallel driver:
        // chaos + a worker kill must still settle every workflow.
        let wfs: Vec<_> = (0..4).map(|_| chain_wf(4, 1.0)).collect();
        let mut cfg = no_overhead(cluster(1));
        cfg.shards = 4;
        cfg.threads = 2;
        cfg.default_timeout_secs = 20.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.chaos = Some(ChaosConfig::drop_dup(11, 0.05, 0.05));
        cfg.faults = vec![NodeFault { node: 0, kill_at_secs: 2.0, restart_at_secs: Some(3.0) }];
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed);
        assert_eq!(report.engine.jobs_completed, 16);
    }

    #[test]
    fn sharded_runner_thread_cap_is_observationally_inert() {
        // Striping shard sub-simulations over fewer OS threads must not
        // change any result.
        let wfs: Vec<_> = (0..8).map(|_| chain_wf(3, 1.0)).collect();
        let mut cfg = no_overhead(cluster(4));
        cfg.shards = 4;
        let uncapped = run_ensemble_sharded(&wfs, &cfg);
        cfg.threads = 2;
        let capped = run_ensemble_sharded(&wfs, &cfg);
        assert!(capped.completed);
        assert_eq!(uncapped.makespan_secs, capped.makespan_secs);
        assert_eq!(uncapped.workflow_makespans, capped.workflow_makespans);
        assert_eq!(uncapped.engine, capped.engine);
    }

    #[test]
    fn sharded_facade_survives_chaos_and_faults() {
        // The facade keeps the full feature set: chaos + a worker kill on
        // a 4-shard engine must still settle every workflow.
        let wfs: Vec<_> = (0..4).map(|_| chain_wf(4, 1.0)).collect();
        let mut cfg = no_overhead(cluster(1));
        cfg.shards = 4;
        cfg.default_timeout_secs = 20.0;
        cfg.timeout_scan_secs = 1.0;
        cfg.chaos = Some(ChaosConfig::drop_dup(11, 0.05, 0.05));
        cfg.faults = vec![NodeFault { node: 0, kill_at_secs: 2.0, restart_at_secs: Some(3.0) }];
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed);
        assert_eq!(report.engine.jobs_completed, 16);
    }

    #[test]
    fn sharded_runner_completes_and_is_deterministic() {
        let wfs: Vec<_> = (0..8).map(|_| chain_wf(3, 1.0)).collect();
        let mut cfg = no_overhead(cluster(4));
        cfg.shards = 4;
        let a = run_ensemble_sharded(&wfs, &cfg);
        let b = run_ensemble_sharded(&wfs, &cfg);
        assert!(a.completed);
        assert_eq!(a.engine.jobs_completed, 24);
        assert_eq!(a.engine.workflows_completed, 8);
        assert!(a.workflow_makespans.iter().all(|&m| m > 0.0));
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.workflow_makespans, b.workflow_makespans);
        assert_eq!(a.engine, b.engine);
        assert!(a.cost_usd > 0.0);
    }

    #[test]
    fn sharded_runner_preserves_global_submission_times() {
        let wfs: Vec<_> = (0..4).map(|_| parallel_wf(2, 1.0)).collect();
        let mut cfg = no_overhead(cluster(2));
        cfg.shards = 2;
        cfg.submission = SubmissionPlan::Interval(10.0);
        let report = run_ensemble_sharded(&wfs, &cfg);
        assert!(report.completed);
        // The last workflow is submitted at t=30 regardless of shard.
        assert!((report.makespan_secs - 31.0).abs() < 0.5, "{}", report.makespan_secs);
    }

    #[test]
    fn io_jobs_move_data_through_storage() {
        let mut b = WorkflowBuilder::new("io");
        let f_in = b.file("in", 500_000_000, true);
        let mid = b.file("mid", 250_000_000, false);
        let a = b.job("a", "t", 1.0).input(f_in).output(mid).build();
        let c = b.job("b", "t", 1.0).input(mid).build();
        b.edge(a, c);
        let report = run_ensemble(&[Arc::new(b.finish().unwrap())], &no_overhead(cluster(1)));
        assert!(report.completed);
        // The 500 MB input was a cold read; `mid` was cache-warm.
        assert!(report.total_bytes_read >= 500_000_000.0 * 0.99);
        assert!(report.total_bytes_read < 700_000_000.0);
        assert!((report.total_bytes_written - 250_000_000.0).abs() < 1e6);
    }

    #[test]
    fn scripted_failure_retries_until_success() {
        // Middle chain job fails its first two attempts; unbounded
        // immediate retries rerun it until the third attempt lands.
        let mut cfg = no_overhead(cluster(1));
        cfg.record_gantt = true;
        cfg.failure_script = vec![ScriptedFailure { workflow: 0, job: 1, failing_attempts: 2 }];
        let report = run_ensemble(&[chain_wf(3, 1.0)], &cfg);
        assert!(report.completed);
        assert_eq!(report.engine.jobs_completed, 3);
        assert_eq!(report.engine.resubmissions, 2);
        // j0 (1s) + j1 three attempts (3s) + j2 (1s): failed attempts
        // consume real slot time.
        assert!((report.makespan_secs - 5.0).abs() < 0.2, "{}", report.makespan_secs);
        // Failed attempts are not real completions: the gantt records
        // exactly one span per job that actually finished.
        assert_eq!(report.gantt.expect("gantt").len(), 3);
    }

    #[test]
    fn scripted_failure_dead_letters_under_retry_cap() {
        // The middle job always fails and the retry budget allows two
        // attempts: it dead-letters and its descendant is written off.
        let mut cfg = no_overhead(cluster(1));
        cfg.retry = RetryPolicy { max_attempts: Some(2), ..RetryPolicy::default() };
        cfg.failure_script = vec![ScriptedFailure { workflow: 0, job: 1, failing_attempts: 99 }];
        let report = run_ensemble(&[chain_wf(3, 1.0)], &cfg);
        assert!(!report.completed);
        assert_eq!(report.engine.dead_lettered, 1);
        assert_eq!(report.engine.jobs_abandoned, 2);
        assert_eq!(report.engine.workflows_abandoned, 1);
        assert_eq!(report.engine.jobs_completed, 1);
    }

    #[test]
    fn scripted_failure_composes_with_message_chaos() {
        // Failed acks bypass the chaos layer, so a lossy run with a
        // scripted failure still converges: the failure is retried the
        // scripted number of times and every workflow completes.
        let mut cfg = no_overhead(cluster(1));
        cfg.failure_script = vec![ScriptedFailure { workflow: 0, job: 0, failing_attempts: 1 }];
        cfg.chaos =
            Some(ChaosConfig { seed: 7, drop_prob: 0.2, dup_prob: 0.2, ..ChaosConfig::default() });
        let report = run_ensemble(&[parallel_wf(6, 1.0)], &cfg);
        assert!(report.completed);
        assert_eq!(report.engine.jobs_completed, 6);
        assert!(report.engine.resubmissions >= 1);
    }
}
