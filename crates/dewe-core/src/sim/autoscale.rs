//! Dynamic resource provisioning on the simulated cluster — the extension
//! the paper sketches in §V.A.3.
//!
//! > "DEWE v2's capability of resuming workflow execution after
//! > interruption of the worker daemon opens the door for dynamic resource
//! > provisioning. ... When there are a large number of non-blocking jobs
//! > in the queue, more worker nodes can be added to the cluster to speed
//! > up the execution. When there are a limited number of blocking jobs in
//! > the queue, some worker nodes can be removed from the cluster."
//!
//! Because workers are stateless pullers, scaling is trivial: a scaled-out
//! node just starts pulling; a scaled-in node just stops (running jobs
//! drain; queued work is untouched because the queue lives at the master).
//! The autoscaler here is a reactive queue-depth policy evaluated on a
//! fixed cadence, and the report prices the resulting rental spans under
//! both 2015-AWS hourly billing and GCE-style per-minute billing —
//! quantifying the paper's remark that dynamic provisioning "might not be
//! effective" under charge-by-hour but "can be useful" under
//! charge-by-minute.

use std::sync::Arc;

use dewe_dag::Workflow;
use dewe_simcloud::{BillingModel, ClusterConfig, CostModel, ExecSim, SimEvent};

use crate::engine::{EngineCore, EngineStats};
use crate::protocol::{AckKind, AckMsg};

use super::{DriverState, SlotPool};

/// Reactive scaling policy.
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    /// Never scale below this many nodes.
    pub min_nodes: usize,
    /// Nodes active at ensemble start.
    pub initial_nodes: usize,
    /// Policy evaluation cadence, seconds.
    pub evaluate_interval_secs: f64,
    /// Scale out one node when queued jobs exceed `active slots x this`.
    pub scale_out_queue_factor: f64,
    /// Scale in one node when queued jobs fall below
    /// `active slots x this` (0 = only when the queue is empty).
    pub scale_in_queue_factor: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            min_nodes: 1,
            initial_nodes: 1,
            evaluate_interval_secs: 10.0,
            scale_out_queue_factor: 2.0,
            scale_in_queue_factor: 0.25,
        }
    }
}

/// Results of an autoscaled run.
pub struct AutoscaleReport {
    /// Ensemble makespan, seconds.
    pub makespan_secs: f64,
    /// All workflows completed.
    pub completed: bool,
    /// Engine statistics.
    pub engine: EngineStats,
    /// Per-node rental spans (start, end), seconds. A node rented twice
    /// contributes two spans.
    pub node_spans: Vec<(f64, f64)>,
    /// Peak simultaneously-active nodes.
    pub peak_nodes: usize,
    /// Node-seconds actually rented.
    pub node_seconds: f64,
    /// Cost under hourly billing (each span rounds up to whole hours).
    pub cost_hourly: f64,
    /// Cost under per-minute billing.
    pub cost_per_minute: f64,
    /// (time, active nodes) trace of scaling decisions.
    pub scaling_trace: Vec<(f64, usize)>,
}

const TAG_SUBMIT: u64 = 1 << 56;
const TAG_SCAN: u64 = 2 << 56;
const TAG_EVAL: u64 = 6 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Run an ensemble with reactive autoscaling. `config.cluster.nodes` is
/// the fleet ceiling (max nodes the autoscaler may rent). With
/// `config.shards > 1` the driver runs a
/// [`ShardedEngine`](crate::ShardedEngine) facade, like
/// [`run_ensemble`](super::run_ensemble).
pub fn run_ensemble_autoscale(
    workflows: &[Arc<Workflow>],
    config: &super::SimRunConfig,
    policy: &AutoscalePolicy,
) -> AutoscaleReport {
    assert!(config.shards >= 1, "shard count must be at least 1");
    if config.shards > 1 {
        let engine = super::engine_config_for(config).build_sharded(config.shards);
        autoscale_loop(workflows, config, policy, engine)
    } else {
        let engine = super::engine_config_for(config).build();
        autoscale_loop(workflows, config, policy, engine)
    }
}

fn autoscale_loop<E: EngineCore>(
    workflows: &[Arc<Workflow>],
    config: &super::SimRunConfig,
    policy: &AutoscalePolicy,
    mut engine: E,
) -> AutoscaleReport {
    assert!(!workflows.is_empty());
    let max_nodes = config.cluster.nodes;
    assert!(policy.min_nodes >= 1 && policy.min_nodes <= max_nodes);
    assert!(policy.initial_nodes >= policy.min_nodes && policy.initial_nodes <= max_nodes);

    let mut exec = ExecSim::new(ClusterConfig { ..config.cluster });
    let slots_per_node = config.slots_per_node.unwrap_or(config.cluster.instance.vcpus);
    let mut pool = SlotPool::new(max_nodes, slots_per_node);
    // Start with only the initial nodes active.
    let mut active = vec![true; max_nodes];
    #[allow(clippy::needless_range_loop)] // index used for three arrays
    for node in policy.initial_nodes..max_nodes {
        pool.kill(node);
        active[node] = false;
        let t = exec.now();
        exec.cluster_mut().set_active(node, false, t);
    }
    /// Rental bookkeeping.
    struct Rent {
        spans: Vec<(f64, f64)>,
        open: Vec<Option<f64>>, // rental start per node
        draining: Vec<bool>,
    }
    let mut rent = Rent {
        spans: Vec::new(),
        open: (0..max_nodes)
            .map(|n| if n < policy.initial_nodes { Some(0.0) } else { None })
            .collect(),
        draining: vec![false; max_nodes],
    };

    assert!(config.chaos.is_none(), "chaos injection is not supported by the autoscale driver");
    let mut state = DriverState::new(workflows, pool, config);
    // Scale-in lets running jobs drain, so per-node occupancy is tracked.
    state.node_running = vec![0; max_nodes];
    let mut scaling_trace = vec![(0.0, policy.initial_nodes)];
    let mut peak = policy.initial_nodes;

    match config.submission {
        super::SubmissionPlan::Batch => {
            for (i, _) in workflows.iter().enumerate() {
                exec.schedule_wake(0.0, TAG_SUBMIT | i as u64);
            }
        }
        super::SubmissionPlan::Interval(secs) => {
            for (i, _) in workflows.iter().enumerate() {
                exec.schedule_wake(secs * i as f64, TAG_SUBMIT | i as u64);
            }
        }
    }
    exec.schedule_wake(config.timeout_scan_secs, TAG_SCAN);
    exec.schedule_wake(policy.evaluate_interval_secs, TAG_EVAL);

    while let Some(event) = exec.next() {
        let now = exec.now().as_secs_f64();
        match event {
            SimEvent::JobFinished { token, node, .. } => {
                let Some(d) = state.running[token as usize].take() else { continue };
                state.node_running[node] -= 1;
                state.pool.release(node);
                // A draining node whose last job finished ends its rental.
                if rent.draining[node] && state.node_running[node] == 0 {
                    if let Some(start) = rent.open[node].take() {
                        rent.spans.push((start, now));
                    }
                    rent.draining[node] = false;
                }
                engine.on_ack(
                    AckMsg {
                        job: d.job,
                        worker: node as u32,
                        kind: AckKind::Completed,
                        attempt: d.attempt,
                    },
                    now,
                    &mut state.actions,
                );
                state.handle_actions(now);
                state.try_assign(&mut exec, &mut engine);
            }
            SimEvent::Wake { token } => match token & TAG_MASK {
                TAG_SUBMIT => {
                    let idx = (token & !TAG_MASK) as usize;
                    let workflow = Arc::clone(&workflows[idx]);
                    let job_count = workflow.job_count();
                    let id = engine.submit_workflow(workflow, now, &mut state.actions);
                    state.register_workflow(id, job_count);
                    state.handle_actions(now);
                    state.try_assign(&mut exec, &mut engine);
                }
                TAG_SCAN => {
                    engine.check_timeouts(now, &mut state.actions);
                    state.handle_actions(now);
                    state.try_assign(&mut exec, &mut engine);
                    if state.all_done_at.is_none() {
                        exec.schedule_wake(config.timeout_scan_secs, TAG_SCAN);
                    }
                }
                TAG_EVAL => {
                    let active_count = active.iter().filter(|&&a| a).count();
                    let active_slots = active_count as f64 * slots_per_node as f64;
                    let qlen = state.queue.len() as f64;
                    if qlen > active_slots * policy.scale_out_queue_factor
                        && active_count < max_nodes
                    {
                        // Scale out: wake the lowest inactive node. A
                        // previously-draining node can be re-engaged.
                        let node = (0..max_nodes).find(|&n| !active[n]).expect("capacity");
                        active[node] = true;
                        rent.draining[node] = false;
                        if rent.open[node].is_none() {
                            rent.open[node] = Some(now);
                        }
                        // A re-engaged draining node still runs its old
                        // jobs; only the free slots may pull.
                        state.pool.restart(node, state.node_running[node]);
                        let t = exec.now();
                        exec.cluster_mut().set_active(node, true, t);
                        scaling_trace.push((now, active_count + 1));
                        peak = peak.max(active_count + 1);
                        state.try_assign(&mut exec, &mut engine);
                    } else if qlen < active_slots * policy.scale_in_queue_factor
                        && active_count > policy.min_nodes
                    {
                        // Scale in: retire the highest active node. It stops
                        // pulling immediately; running jobs drain.
                        let node =
                            (0..max_nodes).rev().find(|&n| active[n]).expect("min_nodes >= 1");
                        active[node] = false;
                        state.pool.kill(node);
                        let t = exec.now();
                        exec.cluster_mut().set_active(node, false, t);
                        if state.node_running[node] == 0 {
                            if let Some(start) = rent.open[node].take() {
                                rent.spans.push((start, now));
                            }
                        } else {
                            rent.draining[node] = true;
                        }
                        scaling_trace.push((now, active_count - 1));
                    }
                    if state.all_done_at.is_none() {
                        exec.schedule_wake(policy.evaluate_interval_secs, TAG_EVAL);
                    }
                }
                _ => unreachable!(),
            },
        }
        if state.all_done_at.is_some() && exec.running_jobs() == 0 {
            break;
        }
    }

    let makespan = state.all_done_at.unwrap_or_else(|| exec.now().as_secs_f64());
    // Close any open rentals at makespan.
    for node in 0..max_nodes {
        if let Some(start) = rent.open[node].take() {
            rent.spans.push((start, makespan));
        }
    }
    let node_seconds: f64 = rent.spans.iter().map(|&(s, e)| e - s).sum();
    let price = config.cluster.instance.price_per_hour;
    let hourly = CostModel { billing: BillingModel::PerHour, price_per_hour: price };
    let minute = CostModel { billing: BillingModel::PerMinute, price_per_hour: price };
    let cost_hourly: f64 = rent.spans.iter().map(|&(s, e)| hourly.cost(1, e - s)).sum();
    let cost_per_minute: f64 = rent.spans.iter().map(|&(s, e)| minute.cost(1, e - s)).sum();

    AutoscaleReport {
        makespan_secs: makespan,
        completed: state.all_done_at.is_some() && state.abandoned_count == 0,
        engine: engine.stats(),
        node_spans: rent.spans,
        peak_nodes: peak,
        node_seconds,
        cost_hourly,
        cost_per_minute,
        scaling_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimRunConfig, SubmissionPlan};
    use dewe_dag::WorkflowBuilder;
    use dewe_simcloud::{SharedFsKind, StorageConfig, C3_8XLARGE};

    fn fleet(max_nodes: usize) -> SimRunConfig {
        let mut cfg = SimRunConfig::new(ClusterConfig {
            instance: C3_8XLARGE,
            nodes: max_nodes,
            storage: StorageConfig::Shared(SharedFsKind::DistFs),
        });
        cfg.per_job_overhead_secs = 0.0;
        cfg
    }

    fn wide_then_narrow() -> Arc<Workflow> {
        // A Montage-like silhouette: wide fan, serial waist, wide fan.
        let mut b = WorkflowBuilder::new("wn");
        let fan1: Vec<_> = (0..256).map(|i| b.job(format!("a{i}"), "t", 4.0).build()).collect();
        let waist = b.job("waist", "t", 120.0).build();
        for &j in &fan1 {
            b.edge(j, waist);
        }
        for i in 0..256 {
            let j = b.job(format!("b{i}"), "t", 4.0).build();
            b.edge(waist, j);
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn autoscaler_scales_out_under_load_and_in_at_the_waist() {
        let policy = AutoscalePolicy {
            min_nodes: 1,
            initial_nodes: 1,
            evaluate_interval_secs: 2.0,
            scale_out_queue_factor: 1.0,
            scale_in_queue_factor: 0.25,
        };
        let report = run_ensemble_autoscale(&[wide_then_narrow()], &fleet(4), &policy);
        assert!(report.completed);
        assert!(report.peak_nodes > 1, "load must trigger scale-out");
        // The waist (120 s, queue empty) must trigger scale-in: some point
        // in the trace returns to 1 node after the peak.
        let peak_at =
            report.scaling_trace.iter().position(|&(_, n)| n == report.peak_nodes).unwrap();
        assert!(
            report.scaling_trace[peak_at..].iter().any(|&(_, n)| n == 1),
            "waist should drain the fleet: {:?}",
            report.scaling_trace
        );
        assert_eq!(report.engine.jobs_completed, 513);
    }

    #[test]
    fn autoscaled_run_rents_fewer_node_seconds_than_static_fleet() {
        let policy = AutoscalePolicy {
            min_nodes: 1,
            initial_nodes: 1,
            evaluate_interval_secs: 2.0,
            scale_out_queue_factor: 1.0,
            scale_in_queue_factor: 0.25,
        };
        let auto = run_ensemble_autoscale(&[wide_then_narrow()], &fleet(4), &policy);
        let static_run = crate::sim::run_ensemble(&[wide_then_narrow()], &fleet(4));
        let static_node_secs = 4.0 * static_run.makespan_secs;
        assert!(
            auto.node_seconds < static_node_secs,
            "autoscaling should rent less: {} vs {}",
            auto.node_seconds,
            static_node_secs
        );
        // And it should not be catastrophically slower.
        assert!(auto.makespan_secs < static_run.makespan_secs * 3.0);
    }

    #[test]
    fn per_minute_billing_shows_the_savings() {
        let policy = AutoscalePolicy {
            min_nodes: 1,
            initial_nodes: 1,
            evaluate_interval_secs: 2.0,
            scale_out_queue_factor: 1.0,
            scale_in_queue_factor: 0.25,
        };
        let report = run_ensemble_autoscale(&[wide_then_narrow()], &fleet(4), &policy);
        // Per-minute cost tracks node-seconds; hourly rounds every span up.
        assert!(report.cost_per_minute <= report.cost_hourly + 1e-9);
        let ideal = report.node_seconds / 3600.0 * C3_8XLARGE.price_per_hour;
        assert!(report.cost_per_minute >= ideal - 1e-9);
        assert!(report.cost_per_minute <= ideal * 1.5 + 0.2, "minute billing near ideal");
    }

    #[test]
    fn min_nodes_respected() {
        let policy = AutoscalePolicy {
            min_nodes: 2,
            initial_nodes: 2,
            evaluate_interval_secs: 1.0,
            scale_out_queue_factor: 1e9, // never scale out
            scale_in_queue_factor: 1e9,  // always try to scale in
        };
        let mut b = WorkflowBuilder::new("small");
        for i in 0..8 {
            b.job(format!("j{i}"), "t", 30.0).build();
        }
        let wf = Arc::new(b.finish().unwrap());
        let report = run_ensemble_autoscale(&[wf], &fleet(4), &policy);
        assert!(report.completed);
        assert!(report.scaling_trace.iter().all(|&(_, n)| n >= 2));
    }

    #[test]
    fn sharded_engine_composes_with_autoscaling() {
        let mut cfg = fleet(4);
        cfg.shards = 4;
        let single =
            run_ensemble_autoscale(&[wide_then_narrow()], &fleet(4), &AutoscalePolicy::default());
        let sharded =
            run_ensemble_autoscale(&[wide_then_narrow()], &cfg, &AutoscalePolicy::default());
        assert!(sharded.completed);
        assert_eq!(sharded.engine.jobs_completed, 513);
        // Same driver decisions either way: sharding the engine does not
        // change scaling behavior.
        assert_eq!(single.makespan_secs, sharded.makespan_secs);
        assert_eq!(single.scaling_trace, sharded.scaling_trace);
    }

    #[test]
    fn incremental_submission_composes_with_autoscaling() {
        let mut cfg = fleet(3);
        cfg.submission = SubmissionPlan::Interval(20.0);
        let wfs: Vec<_> = (0..3).map(|_| wide_then_narrow()).collect();
        let report = run_ensemble_autoscale(&wfs, &cfg, &AutoscalePolicy::default());
        assert!(report.completed);
        assert_eq!(report.engine.workflows_completed, 3);
    }
}
