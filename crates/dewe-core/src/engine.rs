//! The sans-IO ensemble engine: the master daemon's brain.
//!
//! [`EnsembleEngine`] holds the DAG-management state of the DEWE v2 master
//! daemon (paper §III.C) with no clocks, threads or queues of its own:
//! callers feed it submissions, acknowledgments and the current time, and
//! it emits [`Action`]s (publish this job, this workflow is done). The
//! realtime and simulated runtimes are thin drivers around it, and tests
//! can exercise every protocol corner deterministically.
//!
//! Every driver codes against the [`EngineCore`] trait — the sink-based
//! driving surface (submit / ack / timeouts / stats / settle queries) —
//! so the single-threaded [`EnsembleEngine`] and the partitioned
//! [`ShardedEngine`](crate::ShardedEngine) are interchangeable behind a
//! shard-count config knob.
//!
//! Beyond the paper's unconditional timeout/resubmission loop, the engine
//! carries a configurable [`RetryPolicy`]: a per-job attempt cap that
//! dead-letters permanently failing jobs (abandoning their descendants so
//! the ensemble terminates with partial completion instead of looping
//! forever), and exponential backoff with deterministic jitter between
//! resubmissions, implemented as deferred dispatches riding the existing
//! deadline heap. The defaults preserve the paper's behavior exactly:
//! unbounded immediate retries.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use dewe_dag::{DependencyTracker, EnsembleJobId, JobId, JobState, Workflow, WorkflowId};

use crate::protocol::{AckKind, AckMsg, DispatchMsg};
use crate::wheel::DeadlineWheel;

/// Default system-wide job timeout in seconds (paper §III.B: jobs have a
/// user-defined or system-wide default timeout).
pub const DEFAULT_TIMEOUT_SECS: f64 = 600.0;

/// Retry budget and backoff schedule applied to failed/timed-out jobs.
///
/// The default is the paper's behavior: retry forever, immediately. With
/// `max_attempts = Some(n)`, the n-th failed attempt dead-letters the job
/// — it and (transitively) its dependents are marked
/// [`Abandoned`](dewe_dag::JobState::Abandoned) and the workflow settles
/// with partial completion. With `backoff_base_secs > 0`, the k-th retry
/// is deferred `base · factor^(k-1)` seconds (capped at
/// `backoff_max_secs`), shrunk by up to `jitter_frac` with a hash-derived
/// deterministic jitter so retries de-synchronize reproducibly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Dead-letter a job once this many attempts have failed
    /// (`None` = retry forever, the paper's behavior).
    pub max_attempts: Option<u32>,
    /// Delay before the first retry, in seconds (0 = immediate).
    pub backoff_base_secs: f64,
    /// Multiplier applied per additional failed attempt (≥ 1).
    pub backoff_factor: f64,
    /// Upper bound on any single backoff delay, in seconds.
    pub backoff_max_secs: f64,
    /// Fraction of the delay subject to jitter, in [0, 1): the delay is
    /// scaled by `1 - jitter_frac · u` with `u ∈ [0, 1)` derived by
    /// hashing (seed, workflow, job, attempt) — fully deterministic.
    pub jitter_frac: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: None,
            backoff_base_secs: 0.0,
            backoff_factor: 2.0,
            backoff_max_secs: 300.0,
            jitter_frac: 0.0,
            seed: 0,
        }
    }
}

/// Which data structure tracks candidate deadlines (checkout timeouts and
/// deferred-retry fire times).
///
/// Both backends share the same lazy-currency contract — entries are
/// validated against the in-flight slab only when they surface — and
/// produce **identical action streams** (the wheel sorts each scan's
/// expired batch into the heap's pop order; proven by the heap-vs-wheel
/// equivalence properties and the differential oracle). They differ only
/// in cost: the heap pays `O(log n)` per push for ordering the engine
/// rarely needs, the wheel files in `O(1)` and orders only what expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerBackend {
    /// `BinaryHeap<Reverse<DeadlineEntry>>` — the original backend, kept
    /// selectable as the equivalence baseline.
    Heap,
    /// Hierarchical flat-array deadline wheel (see `wheel.rs` for the
    /// layout and cascade math). The default.
    #[default]
    Wheel,
}

/// Engine-wide configuration and the one way to construct engines.
///
/// `EngineConfig` doubles as a builder: chain setters off
/// [`EngineConfig::default()`] and finish with [`build`](Self::build)
/// (single engine) or [`build_sharded`](Self::build_sharded)
/// (partitioned engine).
///
/// ```
/// use dewe_core::{EngineConfig, RetryPolicy};
/// let engine = EngineConfig::default()
///     .timeout(30.0)
///     .retry(RetryPolicy { max_attempts: Some(3), ..RetryPolicy::default() })
///     .build();
/// assert_eq!(engine.config().default_timeout_secs, 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// System-wide default job timeout (overridable per job).
    pub default_timeout_secs: f64,
    /// Optional dispatch-to-checkout deadline: if a published job is not
    /// checked out (no Running ack) within this many seconds it is
    /// resubmitted. `None` (default) trusts the queue to redeliver — the
    /// paper's assumption. Set it when the transport can *lose* messages
    /// (chaos drop injection), otherwise a dropped dispatch hangs forever.
    pub checkout_timeout_secs: Option<f64>,
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Deadline-tracking data structure (default: the wheel).
    pub timer_backend: TimerBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            default_timeout_secs: DEFAULT_TIMEOUT_SECS,
            checkout_timeout_secs: None,
            retry: RetryPolicy::default(),
            timer_backend: TimerBackend::default(),
        }
    }
}

impl EngineConfig {
    /// Set the system-wide default job timeout, in seconds.
    #[must_use]
    pub fn timeout(mut self, secs: f64) -> Self {
        self.default_timeout_secs = secs;
        self
    }

    /// Set the dispatch-to-checkout deadline for lossy transports.
    #[must_use]
    pub fn checkout_timeout(mut self, secs: f64) -> Self {
        self.checkout_timeout_secs = Some(secs);
        self
    }

    /// Set the retry budget and backoff schedule.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Select the deadline-tracking backend (heap or wheel).
    #[must_use]
    pub fn timer_backend(mut self, backend: TimerBackend) -> Self {
        self.timer_backend = backend;
        self
    }

    /// Validate the configuration and construct a single-threaded engine.
    ///
    /// # Panics
    /// On nonsensical settings: non-positive timeout, backoff factor < 1,
    /// jitter outside [0, 1), or a zero attempt cap.
    pub fn build(self) -> EnsembleEngine {
        assert!(self.default_timeout_secs > 0.0);
        assert!(self.retry.backoff_factor >= 1.0);
        assert!((0.0..1.0).contains(&self.retry.jitter_frac));
        assert!(self.retry.max_attempts.is_none_or(|cap| cap >= 1));
        EnsembleEngine {
            workflows: Vec::new(),
            lanes: InflightLanes::default(),
            stats: EngineStats::default(),
            terminal_emitted: false,
            deadlines: match self.timer_backend {
                TimerBackend::Heap => DeadlineTimer::Heap(BinaryHeap::new()),
                TimerBackend::Wheel => DeadlineTimer::Wheel(DeadlineWheel::default()),
            },
            scratch_ready: Vec::new(),
            scratch_expired: Vec::new(),
            config: self,
        }
    }

    /// Construct a [`ShardedEngine`](crate::ShardedEngine) of `shards`
    /// independent engines with the default hash router.
    pub fn build_sharded(self, shards: usize) -> crate::ShardedEngine {
        crate::ShardedEngine::new(self, shards)
    }

    /// Construct a [`ShardedEngine`](crate::ShardedEngine) with a custom
    /// [`ShardRouter`](crate::ShardRouter).
    pub fn build_sharded_with(
        self,
        shards: usize,
        router: Box<dyn crate::ShardRouter>,
    ) -> crate::ShardedEngine {
        crate::ShardedEngine::with_router(self, shards, router)
    }

    /// Construct a thread-parallel
    /// [`ParallelShardedEngine`](crate::ParallelShardedEngine): `shards`
    /// independent engines, each owned by a dedicated worker thread
    /// (`threads` caps the thread count; 0 means one per shard), with the
    /// default hash router. The [`EngineCore`] surface runs in
    /// deterministic barrier mode — outcomes are bit-identical to
    /// [`build_sharded`](Self::build_sharded).
    pub fn build_parallel(self, shards: usize, threads: usize) -> crate::ParallelShardedEngine {
        crate::ParallelShardedEngine::with_options(
            self,
            shards,
            Box::new(crate::HashRouter::default()),
            crate::ParallelOptions { threads, ..crate::ParallelOptions::default() },
        )
    }
}

/// What the master must do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Publish this job to the dispatch topic.
    Dispatch(DispatchMsg),
    /// A job exhausted its retry budget; it and its not-yet-completed
    /// descendants were abandoned (`abandoned_jobs` counts all of them,
    /// including the dead-lettered job itself).
    JobDeadLettered {
        /// Which job, in which workflow.
        job: EnsembleJobId,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Jobs written off: the job itself plus abandoned descendants.
        abandoned_jobs: usize,
    },
    /// A workflow ran to completion (all jobs acknowledged complete).
    WorkflowCompleted {
        /// Which workflow.
        workflow: WorkflowId,
        /// Seconds from its submission to completion.
        makespan_secs: f64,
    },
    /// A workflow settled with dead-lettered jobs: every job is terminal
    /// (completed or abandoned) but the workflow did not fully complete.
    WorkflowAbandoned {
        /// Which workflow.
        workflow: WorkflowId,
        /// Jobs of this workflow that exhausted their retry budget.
        dead_lettered: u64,
        /// Total abandoned jobs (dead-lettered + written-off dependents).
        abandoned_jobs: usize,
    },
    /// Every submitted workflow has completed (no abandonments).
    AllCompleted,
    /// Every submitted workflow is settled, but at least one was
    /// abandoned: the ensemble terminates with partial completion.
    AllSettled,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Workflows submitted.
    pub workflows_submitted: usize,
    /// Workflows completed.
    pub workflows_completed: usize,
    /// Workflows settled with at least one abandoned job.
    pub workflows_abandoned: usize,
    /// Jobs dispatched (including resubmissions).
    pub dispatches: u64,
    /// Timeout/failure resubmissions.
    pub resubmissions: u64,
    /// Resubmissions deferred by the backoff schedule (subset of
    /// `resubmissions`).
    pub deferred_retries: u64,
    /// Completed jobs.
    pub jobs_completed: u64,
    /// Duplicate completions observed (timeout races; harmless by design).
    pub duplicate_completions: u64,
    /// Failure reports discarded as stale: a newer attempt already owned
    /// the job's slot, or the job had already reached a terminal state
    /// (zombie-worker and requeue noise; see the liveness plane).
    pub stale_failures_ignored: u64,
    /// Jobs that exhausted their retry budget.
    pub dead_lettered: u64,
    /// Jobs written off: dead-lettered jobs plus their abandoned
    /// descendants.
    pub jobs_abandoned: u64,
}

impl EngineStats {
    /// Fold another stats block into this one, counter by counter — how a
    /// sharded engine merges its per-shard statistics.
    pub fn merge(&mut self, other: &EngineStats) {
        self.workflows_submitted += other.workflows_submitted;
        self.workflows_completed += other.workflows_completed;
        self.workflows_abandoned += other.workflows_abandoned;
        self.dispatches += other.dispatches;
        self.resubmissions += other.resubmissions;
        self.deferred_retries += other.deferred_retries;
        self.jobs_completed += other.jobs_completed;
        self.duplicate_completions += other.duplicate_completions;
        self.stale_failures_ignored += other.stale_failures_ignored;
        self.dead_lettered += other.dead_lettered;
        self.jobs_abandoned += other.jobs_abandoned;
    }
}

/// The sink-based driving surface every engine flavor exposes.
///
/// Drivers (the simulated runtime, the realtime master, the autoscaler,
/// test harnesses, benches) are generic over this trait, so swapping the
/// single-threaded [`EnsembleEngine`] for a partitioned
/// [`ShardedEngine`](crate::ShardedEngine) is a configuration change, not
/// a code change. All mutating methods append [`Action`]s to a
/// caller-owned sink (`&mut Vec<Action>`) — in steady state no engine
/// allocation is needed to process an event.
///
/// Workflow ids are **global**: dense, in submission order, identical
/// regardless of shard count. Sharded implementations translate to and
/// from per-shard local ids internally and report the placement through
/// [`shard_of`](Self::shard_of), so drivers can fan dispatches out to
/// per-shard worker pools.
pub trait EngineCore {
    /// Submit a workflow at time `now`, appending dispatches for its
    /// roots; returns the assigned (global) workflow id.
    ///
    /// Multiple workflows may be in flight at once — their eligible jobs
    /// share the dispatch stream, which is how DEWE v2 runs ensembles in
    /// parallel on one cluster.
    fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId;

    /// Submit into a specific shard, bypassing the router — the journal
    /// replay path, which must reproduce the recorded placement exactly.
    /// Single-engine implementations only accept shard 0.
    fn submit_workflow_to(
        &mut self,
        shard: usize,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        assert_eq!(shard, 0, "single engine has exactly one shard");
        self.submit_workflow(workflow, now, actions)
    }

    /// The shard the *next* [`submit_workflow`](Self::submit_workflow)
    /// call would place `workflow` on. Pure: does not advance any router
    /// state. A write-ahead journal records this before submitting so
    /// recovery replays into the same placement.
    fn route_next(&self, workflow: &Workflow) -> usize {
        let _ = workflow;
        0
    }

    /// Process a worker acknowledgment at time `now`, appending any
    /// resulting actions.
    fn on_ack(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>);

    /// Periodic timeout scan (paper §III.B): republish in-flight jobs
    /// whose deadline passed and fire backoff-deferred retries that came
    /// due.
    fn check_timeouts(&mut self, now: f64, actions: &mut Vec<Action>);

    /// Earliest pending deadline across every shard, if any (lets drivers
    /// sleep precisely instead of polling).
    fn next_deadline(&mut self) -> Option<f64>;

    /// True once every submitted workflow has fully completed.
    fn all_complete(&self) -> bool;

    /// True once every submitted workflow is settled: fully completed or
    /// terminated with abandoned jobs.
    fn all_settled(&self) -> bool;

    /// Aggregate statistics, merged across shards.
    fn stats(&self) -> EngineStats;

    /// Tracker state of one job (by global workflow id), or `None` for an
    /// unknown workflow/job.
    fn job_state(&self, job: EnsembleJobId) -> Option<JobState>;

    /// Access a submitted workflow by global id.
    fn workflow(&self, id: WorkflowId) -> &Arc<Workflow>;

    /// Number of submitted workflows.
    fn workflow_count(&self) -> usize;

    /// Append the current in-flight attempts (for recovery republishing).
    fn inflight_dispatches(&self, out: &mut Vec<DispatchMsg>);

    /// Deadline-wheel cascade count summed across shards (0 under the
    /// heap backend) — observability, not part of engine semantics.
    fn timer_cascades(&self) -> u64 {
        0
    }

    /// Number of shards (1 for a single engine).
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard a submitted workflow was placed on.
    fn shard_of(&self, id: WorkflowId) -> usize {
        let _ = id;
        0
    }
}

struct WorkflowState {
    workflow: Arc<Workflow>,
    tracker: DependencyTracker,
    submitted_at: f64,
    done: bool,
    /// Jobs of this workflow that exhausted their retry budget.
    dead_lettered: u64,
}

/// A slot is not in flight.
const SLOT_EMPTY: u8 = 0;
/// A dispatched attempt; `deadline` is its timeout (possibly infinite).
const SLOT_INFLIGHT: u8 = 1;
/// A backoff-deferred retry parked in the slab; `deadline` is the time
/// the deferred dispatch fires, not a timeout.
const SLOT_DEFERRED: u8 = 2;

/// Engine-wide in-flight slab, laid out struct-of-arrays.
///
/// Every submitted workflow contributes a contiguous region of
/// `job_count` slots at `base[wf]`; a job's slot is `base[wf] + job`.
/// Splitting the former `Vec<Option<Inflight>>` into parallel lanes means
/// each hot loop touches only the bytes it needs: the recovery scan reads
/// the one-byte `tag` lane (plus `attempt` on a hit), the heap currency
/// check reads `tag`/`attempt`/`deadline` without pulling workflow state
/// into cache, and an ack clears a slot by writing a single byte.
///
/// The `owner` lane records which workflow each slot belongs to and is
/// part of the currency check: a heap entry whose job index runs past its
/// workflow's region would otherwise alias a neighbor's slot.
#[derive(Default)]
struct InflightLanes {
    /// Per-workflow offset of its region in the lanes below.
    base: Vec<usize>,
    /// Timeout deadline or deferred-retry fire time (see `tag`).
    deadline: Vec<f64>,
    /// Attempt number occupying the slot.
    attempt: Vec<u32>,
    /// Owning workflow index, fixed at submission.
    owner: Vec<u32>,
    /// `SLOT_EMPTY` / `SLOT_INFLIGHT` / `SLOT_DEFERRED`.
    tag: Vec<u8>,
}

impl InflightLanes {
    /// Append a region of `jobs` empty slots for the next workflow.
    fn push_workflow(&mut self, jobs: usize) {
        let wf = u32::try_from(self.base.len()).expect("workflow count fits u32");
        let start = self.tag.len();
        self.base.push(start);
        self.deadline.resize(start + jobs, f64::INFINITY);
        self.attempt.resize(start + jobs, 0);
        self.owner.resize(start + jobs, wf);
        self.tag.resize(start + jobs, SLOT_EMPTY);
    }

    /// Slot index of `job` in workflow `wf`.
    #[inline]
    fn slot(&self, wf: usize, job: usize) -> usize {
        self.base[wf] + job
    }

    /// Occupy a slot with an attempt (in flight, or parked if `deferred`).
    #[inline]
    fn set(&mut self, wf: usize, job: usize, deadline: f64, attempt: u32, deferred: bool) {
        let i = self.slot(wf, job);
        self.deadline[i] = deadline;
        self.attempt[i] = attempt;
        self.tag[i] = if deferred { SLOT_DEFERRED } else { SLOT_INFLIGHT };
    }

    /// Vacate a slot (completion or dead-letter).
    #[inline]
    fn clear(&mut self, wf: usize, job: usize) {
        let i = self.slot(wf, job);
        self.tag[i] = SLOT_EMPTY;
    }

    /// True when `entry` still describes the current checkout (or
    /// deferral) of its job: the slab holds the same attempt with the
    /// same deadline and kind. Any refresh, resubmission or completion
    /// invalidates older heap entries.
    fn entry_is_current(&self, entry: &DeadlineEntry) -> bool {
        let wf = entry.job.workflow.index();
        let Some(&base) = self.base.get(wf) else {
            return false;
        };
        let i = base + entry.job.job.index();
        match self.tag.get(i) {
            None | Some(&SLOT_EMPTY) => false,
            Some(&tag) => {
                self.owner[i] as usize == wf
                    && self.attempt[i] == entry.attempt
                    && self.deadline[i] == entry.deadline
                    && (tag == SLOT_DEFERRED) == entry.deferred
            }
        }
    }
}

/// A candidate deadline in the engine-wide timer (heap or wheel): either
/// a timeout for a checked-out job or the fire time of a backoff-deferred
/// retry.
///
/// Entries are never removed eagerly: a Running re-ack, resubmission or
/// completion simply leaves the old entry behind, and it is discarded at
/// pop time when it no longer matches the in-flight slab (lazy
/// invalidation). Ordering is ascending deadline with (workflow, job,
/// attempt) tie-breaks so timeout scans emit in a deterministic order —
/// both backends fire expired entries in exactly this order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeadlineEntry {
    pub(crate) deadline: f64,
    pub(crate) job: EnsembleJobId,
    pub(crate) attempt: u32,
    /// Mirrors the slab's `SLOT_DEFERRED` tag; part of the currency check.
    pub(crate) deferred: bool,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for DeadlineEntry {}

impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.deadline
            .total_cmp(&other.deadline)
            .then_with(|| self.job.workflow.0.cmp(&other.job.workflow.0))
            .then_with(|| self.job.job.0.cmp(&other.job.job.0))
            .then_with(|| self.attempt.cmp(&other.attempt))
            .then_with(|| self.deferred.cmp(&other.deferred))
    }
}

/// The engine-wide deadline tracker behind [`TimerBackend`]: same push /
/// expire / earliest surface over either structure.
enum DeadlineTimer {
    Heap(BinaryHeap<Reverse<DeadlineEntry>>),
    Wheel(DeadlineWheel),
}

impl DeadlineTimer {
    #[inline]
    fn push(&mut self, entry: DeadlineEntry) {
        match self {
            DeadlineTimer::Heap(heap) => heap.push(Reverse(entry)),
            DeadlineTimer::Wheel(wheel) => wheel.push(entry),
        }
    }

    fn cascades(&self) -> u64 {
        match self {
            DeadlineTimer::Heap(_) => 0,
            DeadlineTimer::Wheel(wheel) => wheel.cascades(),
        }
    }
}

/// The DEWE v2 master daemon's DAG-management state machine.
///
/// Constructed through the [`EngineConfig`] builder:
/// `EngineConfig::default().timeout(..).build()`.
pub struct EnsembleEngine {
    workflows: Vec<WorkflowState>,
    /// Struct-of-arrays in-flight slab shared by every workflow.
    lanes: InflightLanes,
    config: EngineConfig,
    stats: EngineStats,
    terminal_emitted: bool,
    /// Engine-wide tracker of candidate deadlines (heap or wheel per
    /// [`EngineConfig::timer_backend`]), validated lazily against the
    /// in-flight slab. Pushed on checkout (Running ack), backoff
    /// deferral, and — when a checkout timeout is configured — dispatch,
    /// so its size is bounded by recent protocol events, not by total
    /// in-flight jobs.
    deadlines: DeadlineTimer,
    /// Reusable buffer for draining tracker ready queues.
    scratch_ready: Vec<JobId>,
    /// Reusable buffer for the wheel's per-scan expired batch.
    scratch_expired: Vec<DeadlineEntry>,
}

/// splitmix64-style hash of (seed, workflow, job, attempt) mapped to
/// [0, 1): the deterministic jitter source.
fn jitter_unit(seed: u64, job: EnsembleJobId, attempt: u32) -> f64 {
    let key = ((job.workflow.index() as u64) << 40)
        ^ ((job.job.index() as u64) << 8)
        ^ u64::from(attempt);
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl EnsembleEngine {
    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submit a workflow at time `now`; appends dispatches for its roots
    /// to `actions` and returns the assigned workflow id.
    ///
    /// Multiple workflows may be in flight at once — their eligible jobs
    /// share the single dispatch topic, which is how DEWE v2 runs
    /// ensembles in parallel on one cluster.
    pub fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        let id = WorkflowId::from_index(self.workflows.len());
        let tracker = DependencyTracker::new(&workflow);
        let job_count = workflow.job_count();
        // The lanes region must exist before the roots dispatch into it.
        debug_assert_eq!(self.lanes.base.len(), id.index());
        self.lanes.push_workflow(job_count);
        let mut state =
            WorkflowState { workflow, tracker, submitted_at: now, done: false, dead_lettered: 0 };
        let mut ready = std::mem::take(&mut self.scratch_ready);
        state.tracker.drain_ready_into(&mut ready);
        for &job in &ready {
            let action = self.dispatch_indexed(id, job, 1, now);
            actions.push(action);
        }
        ready.clear();
        self.scratch_ready = ready;
        self.stats.workflows_submitted += 1;
        self.terminal_emitted = false;
        // An empty workflow completes immediately.
        if state.tracker.is_complete() {
            state.done = true;
            self.stats.workflows_completed += 1;
            actions.push(Action::WorkflowCompleted { workflow: id, makespan_secs: 0.0 });
            self.workflows.push(state);
            self.maybe_all_done(actions);
        } else {
            self.workflows.push(state);
        }
        id
    }

    /// Process a worker acknowledgment at time `now`: actions are
    /// appended to a caller-owned buffer, and in steady state (no new
    /// frontier growth) processing an ack performs no heap allocation.
    pub fn on_ack(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>) {
        let wf = ack.job.workflow;
        let job = ack.job.job;
        if wf.index() >= self.workflows.len()
            || job.index() >= self.workflows[wf.index()].workflow.job_count()
        {
            // With the shared slab an out-of-range job index would land in
            // a neighbor workflow's region, so reject it here rather than
            // trusting per-workflow bounds checks downstream.
            debug_assert!(false, "ack for unknown job {:?}", ack.job);
            return;
        }
        match ack.kind {
            AckKind::Running => {
                // Checkout: the timeout clock starts now (the job may have
                // sat in the queue arbitrarily long beforehand).
                let state = &mut self.workflows[wf.index()];
                let timeout =
                    state.workflow.job(job).effective_timeout(self.config.default_timeout_secs);
                let i = self.lanes.slot(wf.index(), job.index());
                if self.lanes.tag[i] == SLOT_INFLIGHT && self.lanes.attempt[i] == ack.attempt {
                    let deadline = now + timeout;
                    self.lanes.deadline[i] = deadline;
                    // Any earlier entry for this job is now stale and
                    // will be discarded lazily at pop time.
                    self.deadlines.push(DeadlineEntry {
                        deadline,
                        job: ack.job,
                        attempt: ack.attempt,
                        deferred: false,
                    });
                }
                state.tracker.mark_running(job);
            }
            AckKind::Completed => {
                let state = &mut self.workflows[wf.index()];
                match state.tracker.state(job) {
                    // Timeout race: two workers ran the job; results are
                    // identical by workflow determinism (the paper verifies
                    // output checksums), so drop the duplicate. A straggler
                    // completion of a dead-lettered job is likewise noise —
                    // its descendants are already written off.
                    JobState::Completed | JobState::Abandoned => {
                        self.stats.duplicate_completions += 1;
                        return;
                    }
                    _ => {}
                }
                self.lanes.clear(wf.index(), job.index());
                // Split borrow: the tracker mutates while reading the DAG.
                let WorkflowState { workflow, tracker, .. } = state;
                tracker.complete(workflow, job);
                self.stats.jobs_completed += 1;
                // Drain the ready queue (rather than a returned list) so
                // the tracker's queue never accumulates stale entries.
                let mut newly = std::mem::take(&mut self.scratch_ready);
                self.workflows[wf.index()].tracker.drain_ready_into(&mut newly);
                for &next in &newly {
                    actions.push(self.dispatch_indexed(wf, next, 1, now));
                }
                newly.clear();
                self.scratch_ready = newly;
                let state = &mut self.workflows[wf.index()];
                if state.tracker.is_complete() && !state.done {
                    state.done = true;
                    self.stats.workflows_completed += 1;
                    let makespan = now - state.submitted_at;
                    actions
                        .push(Action::WorkflowCompleted { workflow: wf, makespan_secs: makespan });
                    self.maybe_all_done(actions);
                } else if state.tracker.is_settled() && !state.done {
                    // This completion finished the last live branch of a
                    // workflow that already dead-lettered elsewhere: it
                    // settles (partially complete) rather than completes.
                    state.done = true;
                    self.stats.workflows_abandoned += 1;
                    actions.push(Action::WorkflowAbandoned {
                        workflow: wf,
                        dead_lettered: state.dead_lettered,
                        abandoned_jobs: state.tracker.stats().abandoned,
                    });
                    self.maybe_all_done(actions);
                }
            }
            AckKind::Failed => {
                // Generation check: a failure report for an attempt older
                // than the one the slab currently tracks is a zombie's —
                // the attempt already timed out (or its worker's lease
                // expired) and a newer attempt owns the slot. Acting on it
                // would burn retry budget against an attempt that was
                // already written off.
                let i = self.lanes.slot(wf.index(), job.index());
                if self.lanes.tag[i] != SLOT_EMPTY && self.lanes.attempt[i] > ack.attempt {
                    self.stats.stale_failures_ignored += 1;
                    return;
                }
                // Immediate failure report (no need to wait for the
                // timeout): route through the retry budget.
                self.handle_attempt_failure(wf, job, ack.attempt, now, actions);
            }
        }
    }

    fn dispatch_indexed(&mut self, wf: WorkflowId, job: JobId, attempt: u32, now: f64) -> Action {
        // The timeout clock normally starts when the job is *checked out*
        // (Running ack), not when it is published: a message sitting in
        // the queue is safe — the queue redelivers unacknowledged
        // checkouts (paper §III.B). Until checkout the deadline is
        // infinite and the job has no deadline-heap entry, unless a
        // checkout timeout is configured to survive lossy transports.
        let deadline = match self.config.checkout_timeout_secs {
            Some(t) => now + t,
            None => f64::INFINITY,
        };
        self.lanes.set(wf.index(), job.index(), deadline, attempt, false);
        let ens = EnsembleJobId::new(wf, job);
        if deadline.is_finite() {
            self.deadlines.push(DeadlineEntry { deadline, job: ens, attempt, deferred: false });
        }
        self.stats.dispatches += 1;
        Action::Dispatch(DispatchMsg { job: ens, attempt })
    }

    /// A job attempt failed (Failed ack or timeout): retry within budget —
    /// immediately or deferred by the backoff schedule — or dead-letter.
    fn handle_attempt_failure(
        &mut self,
        wf: WorkflowId,
        job: JobId,
        failed_attempt: u32,
        now: f64,
        actions: &mut Vec<Action>,
    ) {
        let state = &mut self.workflows[wf.index()];
        match state.tracker.state(job) {
            // Failure evidence for a job that already reached a terminal
            // state is stale by definition — e.g. a lease-expiry requeue
            // of a phantom assignment left by a Running ack that was
            // delayed past its own Completed. Counting it (rather than
            // dropping it silently) keeps the fault plane's requeue
            // conservation auditable: every requeued job is either
            // resubmitted or visibly fenced.
            JobState::Completed | JobState::Abandoned => {
                self.stats.stale_failures_ignored += 1;
                return;
            }
            _ => {}
        }
        if self.config.retry.max_attempts.is_some_and(|cap| failed_attempt >= cap) {
            // Retry budget exhausted: dead-letter the job and write off
            // every descendant that can no longer run.
            self.lanes.clear(wf.index(), job.index());
            state.dead_lettered += 1;
            let WorkflowState { workflow, tracker, .. } = state;
            let abandoned = tracker.abandon(workflow, job);
            self.stats.dead_lettered += 1;
            self.stats.jobs_abandoned += abandoned as u64;
            actions.push(Action::JobDeadLettered {
                job: EnsembleJobId::new(wf, job),
                attempts: failed_attempt,
                abandoned_jobs: abandoned,
            });
            let state = &mut self.workflows[wf.index()];
            if state.tracker.is_settled() && !state.done {
                state.done = true;
                self.stats.workflows_abandoned += 1;
                actions.push(Action::WorkflowAbandoned {
                    workflow: wf,
                    dead_lettered: state.dead_lettered,
                    abandoned_jobs: state.tracker.stats().abandoned,
                });
                self.maybe_all_done(actions);
            }
            return;
        }
        if state.tracker.resubmit(job) {
            state.tracker.clear_ready(); // drop the requeue marker
            self.stats.resubmissions += 1;
            let next_attempt = failed_attempt + 1;
            let ens = EnsembleJobId::new(wf, job);
            let delay = self.backoff_delay(ens, failed_attempt);
            if delay > 0.0 {
                // Defer the retry: park it in the in-flight slab with the
                // fire time as its deadline; the timeout scan emits the
                // dispatch when it comes due.
                let due = now + delay;
                self.lanes.set(wf.index(), job.index(), due, next_attempt, true);
                self.deadlines.push(DeadlineEntry {
                    deadline: due,
                    job: ens,
                    attempt: next_attempt,
                    deferred: true,
                });
                self.stats.deferred_retries += 1;
            } else {
                let action = self.dispatch_indexed(wf, job, next_attempt, now);
                actions.push(action);
            }
        }
    }

    /// Backoff delay before the retry that follows `failed_attempt`
    /// (0 = dispatch immediately).
    fn backoff_delay(&self, job: EnsembleJobId, failed_attempt: u32) -> f64 {
        let r = &self.config.retry;
        if r.backoff_base_secs <= 0.0 {
            return 0.0;
        }
        let exp = failed_attempt.saturating_sub(1).min(63);
        let mut delay = r.backoff_base_secs * r.backoff_factor.powi(exp as i32);
        if delay > r.backoff_max_secs {
            delay = r.backoff_max_secs;
        }
        if r.jitter_frac > 0.0 {
            delay *= 1.0 - r.jitter_frac * jitter_unit(r.seed, job, failed_attempt);
        }
        delay
    }

    /// Periodic timeout scan (paper §III.B): any in-flight job whose
    /// deadline passed is republished so another worker can run it, and
    /// any backoff-deferred retry that came due is dispatched.
    ///
    /// Only entries whose deadline has expired are visited, no matter how
    /// many are in flight: the heap pops while its top has expired
    /// (O(expired · log heap)), the wheel drains the crossed slots and
    /// sorts just the expired batch into the heap's pop order — the two
    /// backends emit identical action streams.
    pub fn check_timeouts(&mut self, now: f64, actions: &mut Vec<Action>) {
        if matches!(self.deadlines, DeadlineTimer::Heap(_)) {
            self.check_timeouts_heap(now, actions);
        } else {
            self.check_timeouts_wheel(now, actions);
        }
    }

    fn check_timeouts_heap(&mut self, now: f64, actions: &mut Vec<Action>) {
        loop {
            let top = {
                let DeadlineTimer::Heap(heap) = &mut self.deadlines else { unreachable!() };
                match heap.peek() {
                    Some(&Reverse(top)) if top.deadline <= now => {
                        heap.pop();
                        top
                    }
                    _ => break,
                }
            };
            if !self.lanes.entry_is_current(&top) {
                continue; // superseded checkout, resubmission or completion
            }
            self.fire_entry(&top, now, actions);
        }
    }

    fn check_timeouts_wheel(&mut self, now: f64, actions: &mut Vec<Action>) {
        let mut expired = std::mem::take(&mut self.scratch_expired);
        // Processing an expired entry can file new deadlines (checkout
        // timeouts, deferred retries); re-drain until quiescent so any
        // that land at or before `now` fire in this scan, exactly as the
        // heap's peek-pop loop would process them.
        loop {
            expired.clear();
            {
                let DeadlineTimer::Wheel(wheel) = &mut self.deadlines else { unreachable!() };
                wheel.drain_expired(now, &mut expired);
            }
            if expired.is_empty() {
                break;
            }
            // The heap pops expired entries in full DeadlineEntry order;
            // restore it over the wheel's slot-order batch.
            expired.sort_unstable();
            for entry in &expired {
                if !self.lanes.entry_is_current(entry) {
                    continue; // superseded checkout, resubmission or completion
                }
                self.fire_entry(entry, now, actions);
            }
        }
        self.scratch_expired = expired;
    }

    /// Process one expired, still-current deadline entry.
    fn fire_entry(&mut self, entry: &DeadlineEntry, now: f64, actions: &mut Vec<Action>) {
        let wf = entry.job.workflow;
        let job = entry.job.job;
        if entry.deferred {
            // A backoff-deferred retry came due: dispatch it now.
            let action = self.dispatch_indexed(wf, job, entry.attempt, now);
            actions.push(action);
        } else {
            self.handle_attempt_failure(wf, job, entry.attempt, now, actions);
        }
    }

    /// Earliest pending deadline — job timeout or deferred-retry fire
    /// time — if any (lets drivers sleep precisely instead of polling).
    /// Amortized O(1): stale entries are pruned as they surface (heap
    /// top, wheel minimum-slot scan).
    pub fn next_deadline(&mut self) -> Option<f64> {
        let lanes = &self.lanes;
        match &mut self.deadlines {
            DeadlineTimer::Heap(heap) => {
                while let Some(&Reverse(top)) = heap.peek() {
                    if lanes.entry_is_current(&top) {
                        return Some(top.deadline);
                    }
                    heap.pop();
                }
                None
            }
            DeadlineTimer::Wheel(wheel) => wheel.next_deadline(|e| lanes.entry_is_current(e)),
        }
    }

    /// Entries the deadline wheel re-filed coarse-to-fine while advancing
    /// (0 under the heap backend) — cheap observability for dashboards.
    pub fn timer_cascades(&self) -> u64 {
        self.deadlines.cascades()
    }

    /// True once every submitted workflow has fully completed.
    pub fn all_complete(&self) -> bool {
        self.all_settled() && self.stats.workflows_abandoned == 0
    }

    /// True once every submitted workflow is settled: fully completed or
    /// terminated with abandoned jobs. The ensemble can make no further
    /// progress past this point.
    pub fn all_settled(&self) -> bool {
        !self.workflows.is_empty() && self.workflows.iter().all(|w| w.done)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current in-flight attempts: dispatched, not yet terminal, not
    /// parked behind a backoff deferral (those re-fire from the deadline
    /// heap on their own). A recovered master republishes these — the
    /// pre-crash queue contents are unknown, and a duplicate dispatch is
    /// only duplicate-completion noise while a lost one would strand the
    /// job until its timeout.
    pub fn inflight_dispatches(&self, out: &mut Vec<DispatchMsg>) {
        for (wfi, state) in self.workflows.iter().enumerate() {
            if state.done {
                continue;
            }
            // Scan the one-byte tag lane; the other lanes are only read
            // on a hit.
            let base = self.lanes.base[wfi];
            for ji in 0..state.workflow.job_count() {
                let i = base + ji;
                if self.lanes.tag[i] == SLOT_INFLIGHT {
                    out.push(DispatchMsg {
                        job: EnsembleJobId::new(WorkflowId::from_index(wfi), JobId::from_index(ji)),
                        attempt: self.lanes.attempt[i],
                    });
                }
            }
        }
    }

    /// Tracker state of one job, or `None` for an unknown workflow/job —
    /// the deterministic hook differential test harnesses use to read the
    /// engine's terminal verdict (completed / abandoned / stuck) per job
    /// without reaching into internals.
    pub fn job_state(&self, job: EnsembleJobId) -> Option<JobState> {
        let state = self.workflows.get(job.workflow.index())?;
        if job.job.index() >= state.workflow.job_count() {
            return None;
        }
        Some(state.tracker.state(job.job))
    }

    /// Access a submitted workflow.
    pub fn workflow(&self, id: WorkflowId) -> &Arc<Workflow> {
        &self.workflows[id.index()].workflow
    }

    /// Number of submitted workflows.
    pub fn workflow_count(&self) -> usize {
        self.workflows.len()
    }

    fn maybe_all_done(&mut self, actions: &mut Vec<Action>) {
        if self.all_settled() && !self.terminal_emitted {
            self.terminal_emitted = true;
            actions.push(if self.stats.workflows_abandoned == 0 {
                Action::AllCompleted
            } else {
                Action::AllSettled
            });
        }
    }
}

impl EngineCore for EnsembleEngine {
    fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        EnsembleEngine::submit_workflow(self, workflow, now, actions)
    }

    fn on_ack(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>) {
        EnsembleEngine::on_ack(self, ack, now, actions);
    }

    fn check_timeouts(&mut self, now: f64, actions: &mut Vec<Action>) {
        EnsembleEngine::check_timeouts(self, now, actions);
    }

    fn next_deadline(&mut self) -> Option<f64> {
        EnsembleEngine::next_deadline(self)
    }

    fn all_complete(&self) -> bool {
        EnsembleEngine::all_complete(self)
    }

    fn all_settled(&self) -> bool {
        EnsembleEngine::all_settled(self)
    }

    fn stats(&self) -> EngineStats {
        EnsembleEngine::stats(self)
    }

    fn job_state(&self, job: EnsembleJobId) -> Option<JobState> {
        EnsembleEngine::job_state(self, job)
    }

    fn workflow(&self, id: WorkflowId) -> &Arc<Workflow> {
        EnsembleEngine::workflow(self, id)
    }

    fn workflow_count(&self) -> usize {
        EnsembleEngine::workflow_count(self)
    }

    fn inflight_dispatches(&self, out: &mut Vec<DispatchMsg>) {
        EnsembleEngine::inflight_dispatches(self, out);
    }

    fn timer_cascades(&self) -> u64 {
        EnsembleEngine::timer_cascades(self)
    }
}

impl Default for EnsembleEngine {
    fn default() -> Self {
        EngineConfig::default().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    fn chain(n: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("j{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    fn dispatches(actions: &[Action]) -> Vec<DispatchMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// Allocating test shims over the sink-based API: unit tests here read
    /// better with returned action lists.
    fn submit(e: &mut EnsembleEngine, wf: Arc<Workflow>, now: f64) -> (WorkflowId, Vec<Action>) {
        let mut actions = Vec::new();
        let id = e.submit_workflow(wf, now, &mut actions);
        (id, actions)
    }

    fn ack(e: &mut EnsembleEngine, msg: AckMsg, now: f64) -> Vec<Action> {
        let mut actions = Vec::new();
        e.on_ack(msg, now, &mut actions);
        actions
    }

    fn scan(e: &mut EnsembleEngine, now: f64) -> Vec<Action> {
        let mut actions = Vec::new();
        e.check_timeouts(now, &mut actions);
        actions
    }

    fn run_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Running, attempt }
    }

    fn done_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Completed, attempt }
    }

    fn fail_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Failed, attempt }
    }

    fn capped(max_attempts: u32) -> EnsembleEngine {
        EngineConfig::default()
            .timeout(10.0)
            .retry(RetryPolicy { max_attempts: Some(max_attempts), ..RetryPolicy::default() })
            .build()
    }

    #[test]
    fn builder_sets_every_knob() {
        let retry = RetryPolicy { max_attempts: Some(7), ..RetryPolicy::default() };
        let e = EngineConfig::default().timeout(42.0).checkout_timeout(5.0).retry(retry).build();
        assert_eq!(e.config().default_timeout_secs, 42.0);
        assert_eq!(e.config().checkout_timeout_secs, Some(5.0));
        assert_eq!(e.config().retry.max_attempts, Some(7));
    }

    /// Two independent roots: one dead-letters first, then the other
    /// completes. The *completion* must settle the workflow (emit
    /// `WorkflowAbandoned` + `AllSettled`) — regression for the path where
    /// only the dead-letter handler checked settledness and a workflow
    /// whose last live branch finished after a dead-letter hung forever.
    #[test]
    fn completion_after_dead_letter_settles_workflow() {
        let mut e = capped(1);
        let mut b = WorkflowBuilder::new("pair");
        b.job("a", "t", 1.0).build();
        b.job("b", "t", 1.0).build();
        let (wf, actions) = submit(&mut e, Arc::new(b.finish().unwrap()), 0.0);
        let d = dispatches(&actions);
        assert_eq!(d.len(), 2);
        // Root a fails at the cap: dead-lettered, but b is still live so
        // the workflow must not settle yet.
        let actions = ack(&mut e, fail_ack(d[0].job, 1), 1.0);
        assert!(actions.iter().any(|a| matches!(a, Action::JobDeadLettered { .. })));
        assert!(!actions.iter().any(|a| matches!(a, Action::WorkflowAbandoned { .. })));
        assert!(!e.all_settled());
        // Root b completes: that completion settles the workflow.
        let actions = ack(&mut e, done_ack(d[1].job, 1), 2.0);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::WorkflowAbandoned { workflow, dead_lettered: 1, abandoned_jobs: 1 }
                    if *workflow == wf
            )),
            "completion of the last live branch settles: {actions:?}"
        );
        assert!(actions.iter().any(|a| matches!(a, Action::AllSettled)));
        assert!(e.all_settled() && !e.all_complete());
        assert_eq!(e.stats().workflows_abandoned, 1);
        assert_eq!(e.stats().jobs_completed, 1);
    }

    #[test]
    fn submission_dispatches_roots() {
        let mut e = EnsembleEngine::default();
        let (_, actions) = submit(&mut e, chain(3), 0.0);
        let d = dispatches(&actions);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].attempt, 1);
    }

    #[test]
    fn completion_cascades_and_finishes_workflow() {
        let mut e = EnsembleEngine::default();
        let (wf, actions) = submit(&mut e, chain(2), 0.0);
        let d0 = dispatches(&actions)[0];
        ack(&mut e, run_ack(d0.job, 1), 1.0);
        let actions = ack(&mut e, done_ack(d0.job, 1), 2.0);
        let d1 = dispatches(&actions)[0];
        assert_eq!(d1.job.workflow, wf);
        ack(&mut e, run_ack(d1.job, 1), 2.5);
        let actions = ack(&mut e, done_ack(d1.job, 1), 4.0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::WorkflowCompleted { makespan_secs, .. } if (*makespan_secs - 4.0).abs() < 1e-9
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert!(e.all_complete());
    }

    #[test]
    fn timeout_resubmits_with_higher_attempt() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 1.0); // deadline now 11.0
        assert!(scan(&mut e, 10.9).is_empty());
        let actions = scan(&mut e, 11.0);
        let rd = dispatches(&actions);
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
        assert_eq!(e.stats().resubmissions, 1);
    }

    #[test]
    fn queued_job_never_times_out() {
        // A published-but-unclaimed job sits safely in the queue: the
        // timeout clock only starts at checkout (Running ack). The queue
        // itself redelivers lost checkouts, RabbitMQ-style.
        let mut e = EngineConfig::default().timeout(5.0).build();
        let _ = submit(&mut e, chain(1), 0.0);
        assert!(scan(&mut e, 1e9).is_empty());
        assert_eq!(e.next_deadline(), None);
    }

    #[test]
    fn per_job_timeout_overrides_default() {
        let mut b = WorkflowBuilder::new("t");
        b.job("fast", "t", 1.0).timeout_secs(2.0).build();
        let wf = Arc::new(b.finish().unwrap());
        let mut e = EngineConfig::default().timeout(1000.0).build();
        let (_, actions) = submit(&mut e, wf, 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0);
        assert_eq!(dispatches(&scan(&mut e, 2.0)).len(), 1);
    }

    #[test]
    fn late_completion_after_timeout_is_deduplicated() {
        let mut e = EngineConfig::default().timeout(5.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.5);
        scan(&mut e, 6.0); // resubmitted as attempt 2
                           // Original (slow) worker completes first.
        let actions = ack(&mut e, done_ack(d.job, 1), 7.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowCompleted { .. })));
        // Second worker completes too: ignored.
        let actions = ack(&mut e, done_ack(d.job, 2), 8.0);
        assert!(actions.is_empty());
        assert_eq!(e.stats().duplicate_completions, 1);
        assert_eq!(e.stats().workflows_completed, 1);
    }

    #[test]
    fn failed_ack_resubmits_immediately() {
        let mut e = EnsembleEngine::default();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 1.0);
        let actions =
            ack(&mut e, AckMsg { job: d.job, worker: 0, kind: AckKind::Failed, attempt: 1 }, 2.0);
        let rd = dispatches(&actions);
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
    }

    #[test]
    fn running_ack_refreshes_deadline() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        // Job sat in the queue 8 s before a worker picked it up.
        ack(&mut e, run_ack(d.job, 1), 8.0);
        // Dispatch-time deadline (10.0) must no longer apply.
        assert!(scan(&mut e, 10.0).is_empty());
        assert_eq!(dispatches(&scan(&mut e, 18.0)).len(), 1);
    }

    #[test]
    fn multiple_workflows_share_the_dispatch_stream() {
        let mut e = EnsembleEngine::default();
        let (w0, a0) = submit(&mut e, chain(1), 0.0);
        let (w1, a1) = submit(&mut e, chain(1), 5.0);
        assert_ne!(w0, w1);
        let d0 = dispatches(&a0)[0];
        let d1 = dispatches(&a1)[0];
        ack(&mut e, done_ack(d1.job, 1), 6.0);
        assert!(!e.all_complete(), "workflow 0 still running");
        let actions = ack(&mut e, done_ack(d0.job, 1), 7.0);
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert_eq!(e.stats().workflows_completed, 2);
    }

    #[test]
    fn empty_workflow_completes_on_submission() {
        let mut e = EnsembleEngine::default();
        let wf = Arc::new(WorkflowBuilder::new("empty").finish().unwrap());
        let (_, actions) = submit(&mut e, wf, 3.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowCompleted { .. })));
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
    }

    #[test]
    fn next_deadline_tracks_earliest_checked_out_job() {
        let mut e = EngineConfig::default().timeout(100.0).build();
        let (_, a0) = submit(&mut e, chain(1), 0.0);
        assert_eq!(e.next_deadline(), None, "nothing checked out yet");
        ack(&mut e, run_ack(dispatches(&a0)[0].job, 1), 10.0);
        assert_eq!(e.next_deadline(), Some(110.0));
        let (_, a1) = submit(&mut e, chain(1), 50.0);
        ack(&mut e, run_ack(dispatches(&a1)[0].job, 1), 50.0);
        assert_eq!(e.next_deadline(), Some(110.0));
    }

    #[test]
    fn failed_ack_after_completion_is_ignored() {
        let mut e = EnsembleEngine::default();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, done_ack(d.job, 1), 1.0);
        let actions =
            ack(&mut e, AckMsg { job: d.job, worker: 9, kind: AckKind::Failed, attempt: 1 }, 2.0);
        assert!(actions.is_empty(), "a late failure of a completed job must not resubmit");
        assert_eq!(e.stats().resubmissions, 0);
    }

    #[test]
    fn stale_attempt_failed_ack_does_not_burn_retry_budget() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0); // deadline 10
        let actions = scan(&mut e, 10.0); // resubmit as attempt 2
        assert_eq!(dispatches(&actions)[0].attempt, 2);
        // The zombie's late failure report for attempt 1 must not touch
        // attempt 2 (which would resubmit it as attempt 3 while it is
        // still queued).
        let actions =
            ack(&mut e, AckMsg { job: d.job, worker: 9, kind: AckKind::Failed, attempt: 1 }, 11.0);
        assert!(actions.is_empty());
        assert_eq!(e.stats().resubmissions, 1);
        assert_eq!(e.stats().stale_failures_ignored, 1);
        // A current-attempt failure still routes through the retry budget.
        let actions =
            ack(&mut e, AckMsg { job: d.job, worker: 9, kind: AckKind::Failed, attempt: 2 }, 12.0);
        assert_eq!(dispatches(&actions)[0].attempt, 3);
        assert_eq!(e.stats().resubmissions, 2);
    }

    #[test]
    fn stale_attempt_running_ack_does_not_refresh_deadline() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0); // deadline 10
        let actions = scan(&mut e, 10.0); // resubmit as attempt 2
        let d2 = dispatches(&actions)[0];
        assert_eq!(d2.attempt, 2);
        // The ORIGINAL worker's late running ack (attempt 1) must not push
        // the attempt-2 deadline.
        ack(&mut e, run_ack(d.job, 2), 11.0); // attempt-2 checkout: deadline 21
        ack(&mut e, run_ack(d.job, 1), 20.0); // stale: ignored for the clock
        assert!(scan(&mut e, 20.5).is_empty());
        assert_eq!(dispatches(&scan(&mut e, 21.0)).len(), 1);
    }

    #[test]
    fn timeouts_scan_multiple_workflows_independently() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, a0) = submit(&mut e, chain(1), 0.0);
        let (_, a1) = submit(&mut e, chain(1), 0.0);
        ack(&mut e, run_ack(dispatches(&a0)[0].job, 1), 0.0); // deadline 10
        ack(&mut e, run_ack(dispatches(&a1)[0].job, 1), 5.0); // deadline 15
        assert_eq!(dispatches(&scan(&mut e, 10.0)).len(), 1);
        assert_eq!(dispatches(&scan(&mut e, 15.0)).len(), 1);
    }

    #[test]
    fn resubmitted_job_completion_still_releases_children() {
        let mut e = EngineConfig::default().timeout(5.0).build();
        let (_, actions) = submit(&mut e, chain(2), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0);
        let resub = dispatches(&scan(&mut e, 5.0));
        assert_eq!(resub.len(), 1);
        ack(&mut e, run_ack(resub[0].job, 2), 6.0);
        let actions = ack(&mut e, done_ack(resub[0].job, 2), 7.0);
        assert_eq!(dispatches(&actions).len(), 1, "child released after retried completion");
    }

    #[test]
    fn stats_count_dispatches_and_completions() {
        let mut e = EnsembleEngine::default();
        let (_, actions) = submit(&mut e, chain(2), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, done_ack(d.job, 1), 1.0);
        let s = e.stats();
        assert_eq!(s.dispatches, 2); // root + released child
        assert_eq!(s.jobs_completed, 1);
        assert_eq!(s.workflows_submitted, 1);
    }

    // ---- retry budget / backoff / dead-letter ----

    #[test]
    fn always_failing_job_dead_letters_at_cap() {
        let mut e = capped(3);
        let (wf, actions) = submit(&mut e, chain(2), 0.0);
        let mut d = dispatches(&actions)[0];
        for attempt in 1..3 {
            let actions = ack(&mut e, fail_ack(d.job, attempt), f64::from(attempt));
            d = dispatches(&actions)[0];
            assert_eq!(d.attempt, attempt + 1);
        }
        // Third (= cap) failure: no more retries.
        let actions = ack(&mut e, fail_ack(d.job, 3), 10.0);
        assert!(dispatches(&actions).is_empty(), "no retry past the cap");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::JobDeadLettered { attempts: 3, abandoned_jobs: 2, .. })));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::WorkflowAbandoned { workflow, dead_lettered: 1, abandoned_jobs: 2 }
                if *workflow == wf
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::AllSettled)));
        let s = e.stats();
        assert_eq!(s.dead_lettered, 1);
        assert_eq!(s.jobs_abandoned, 2);
        assert_eq!(s.workflows_abandoned, 1);
        assert_eq!(s.workflows_completed, 0);
        assert!(e.all_settled());
        assert!(!e.all_complete());
    }

    #[test]
    fn timeout_exhaustion_dead_letters_too() {
        let mut e = capped(2);
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0);
        let resub = dispatches(&scan(&mut e, 10.0));
        assert_eq!(resub.len(), 1);
        ack(&mut e, run_ack(resub[0].job, 2), 10.0);
        let actions = scan(&mut e, 20.0);
        assert!(dispatches(&actions).is_empty());
        assert!(actions.iter().any(|a| matches!(a, Action::JobDeadLettered { .. })));
        assert_eq!(e.stats().dead_lettered, 1);
    }

    #[test]
    fn unaffected_workflow_completes_alongside_dead_letter() {
        let mut e = capped(1);
        let (_, a0) = submit(&mut e, chain(1), 0.0);
        let (w1, a1) = submit(&mut e, chain(1), 0.0);
        let bad = dispatches(&a0)[0];
        let good = dispatches(&a1)[0];
        let actions = ack(&mut e, fail_ack(bad.job, 1), 1.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowAbandoned { .. })));
        assert!(!actions.iter().any(|a| matches!(a, Action::AllSettled)), "workflow 1 still live");
        let actions = ack(&mut e, done_ack(good.job, 1), 2.0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::WorkflowCompleted { workflow, .. } if *workflow == w1
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::AllSettled)));
        assert_eq!(e.stats().workflows_completed, 1);
        assert_eq!(e.stats().workflows_abandoned, 1);
    }

    #[test]
    fn late_completion_of_dead_lettered_job_is_noise() {
        let mut e = capped(1);
        let (_, actions) = submit(&mut e, chain(2), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, run_ack(d.job, 1), 0.0);
        let actions = scan(&mut e, 10.0); // attempt 1 times out = cap
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowAbandoned { .. })));
        // The straggler worker finishes anyway: must not resurrect.
        let actions = ack(&mut e, done_ack(d.job, 1), 11.0);
        assert!(actions.is_empty());
        assert_eq!(e.stats().duplicate_completions, 1);
        assert_eq!(e.stats().jobs_completed, 0);
        assert!(e.all_settled());
    }

    #[test]
    fn backoff_defers_retry_until_due() {
        let mut e = EngineConfig::default()
            .timeout(100.0)
            .retry(RetryPolicy {
                backoff_base_secs: 4.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            })
            .build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        let actions = ack(&mut e, fail_ack(d.job, 1), 10.0);
        assert!(dispatches(&actions).is_empty(), "first retry deferred 4 s");
        assert_eq!(e.next_deadline(), Some(14.0));
        assert!(scan(&mut e, 13.9).is_empty());
        let rd = dispatches(&scan(&mut e, 14.0));
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
        // Second failure backs off 8 s (factor 2).
        let actions = ack(&mut e, fail_ack(d.job, 2), 20.0);
        assert!(dispatches(&actions).is_empty());
        assert_eq!(e.next_deadline(), Some(28.0));
        let s = e.stats();
        assert_eq!(s.resubmissions, 2);
        assert_eq!(s.deferred_retries, 2);
    }

    #[test]
    fn backoff_delay_caps_at_max() {
        let e = EngineConfig::default()
            .retry(RetryPolicy {
                backoff_base_secs: 10.0,
                backoff_factor: 10.0,
                backoff_max_secs: 50.0,
                ..RetryPolicy::default()
            })
            .build();
        let job = EnsembleJobId::new(WorkflowId(0), JobId(0));
        assert_eq!(e.backoff_delay(job, 1), 10.0);
        assert_eq!(e.backoff_delay(job, 2), 50.0, "100 capped to 50");
        assert_eq!(e.backoff_delay(job, 9), 50.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mk = |seed| {
            EngineConfig::default()
                .retry(RetryPolicy {
                    backoff_base_secs: 10.0,
                    jitter_frac: 0.5,
                    seed,
                    ..RetryPolicy::default()
                })
                .build()
        };
        let job = EnsembleJobId::new(WorkflowId(3), JobId(7));
        let d1 = mk(42).backoff_delay(job, 1);
        let d2 = mk(42).backoff_delay(job, 1);
        assert_eq!(d1, d2, "same seed, same delay");
        assert!(d1 > 5.0 && d1 <= 10.0, "jitter shrinks by at most jitter_frac: {d1}");
        let d3 = mk(43).backoff_delay(job, 1);
        assert_ne!(d1, d3, "different seed perturbs the delay");
    }

    #[test]
    fn deferred_retry_completion_cancels_the_deferral() {
        // The failed attempt's straggler worker completes while the retry
        // is parked: the deferral must die with the job.
        let mut e = EngineConfig::default()
            .retry(RetryPolicy { backoff_base_secs: 5.0, ..RetryPolicy::default() })
            .build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        ack(&mut e, fail_ack(d.job, 1), 1.0); // retry parked until 6.0
        let actions = ack(&mut e, done_ack(d.job, 1), 2.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowCompleted { .. })));
        assert!(scan(&mut e, 10.0).is_empty(), "deferred dispatch cancelled");
        assert_eq!(e.stats().dispatches, 1);
    }

    #[test]
    fn checkout_timeout_recovers_dropped_dispatch() {
        // With a lossy transport the dispatch may never reach a worker: no
        // Running ack ever arrives. The checkout timeout resubmits it.
        let mut e = EngineConfig::default().checkout_timeout(30.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let d = dispatches(&actions)[0];
        assert_eq!(e.next_deadline(), Some(30.0));
        assert!(scan(&mut e, 29.0).is_empty());
        let rd = dispatches(&scan(&mut e, 30.0));
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
        // This time the checkout lands; the deadline switches to the job
        // timeout and the job completes normally.
        ack(&mut e, run_ack(d.job, 2), 31.0);
        let actions = ack(&mut e, done_ack(d.job, 2), 32.0);
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
    }

    #[test]
    fn default_config_preserves_unbounded_retries() {
        let mut e = EngineConfig::default().timeout(10.0).build();
        let (_, actions) = submit(&mut e, chain(1), 0.0);
        let mut d = dispatches(&actions)[0];
        for attempt in 1..50u32 {
            let actions = ack(&mut e, fail_ack(d.job, attempt), f64::from(attempt));
            let rd = dispatches(&actions);
            assert_eq!(rd.len(), 1, "attempt {attempt} must retry");
            d = rd[0];
        }
        assert_eq!(e.stats().dead_lettered, 0);
    }
}
