//! The sans-IO ensemble engine: the master daemon's brain.
//!
//! [`EnsembleEngine`] holds the DAG-management state of the DEWE v2 master
//! daemon (paper §III.C) with no clocks, threads or queues of its own:
//! callers feed it submissions, acknowledgments and the current time, and
//! it emits [`Action`]s (publish this job, this workflow is done). The
//! realtime and simulated runtimes are thin drivers around it, and tests
//! can exercise every protocol corner deterministically.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use dewe_dag::{DependencyTracker, EnsembleJobId, JobId, Workflow, WorkflowId};

use crate::protocol::{AckKind, AckMsg, DispatchMsg};

/// Default system-wide job timeout in seconds (paper §III.B: jobs have a
/// user-defined or system-wide default timeout).
pub const DEFAULT_TIMEOUT_SECS: f64 = 600.0;

/// What the master must do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Publish this job to the dispatch topic.
    Dispatch(DispatchMsg),
    /// A workflow ran to completion (all jobs acknowledged complete).
    WorkflowCompleted {
        /// Which workflow.
        workflow: WorkflowId,
        /// Seconds from its submission to completion.
        makespan_secs: f64,
    },
    /// Every submitted workflow has completed.
    AllCompleted,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Workflows submitted.
    pub workflows_submitted: usize,
    /// Workflows completed.
    pub workflows_completed: usize,
    /// Jobs dispatched (including resubmissions).
    pub dispatches: u64,
    /// Timeout/failure resubmissions.
    pub resubmissions: u64,
    /// Completed jobs.
    pub jobs_completed: u64,
    /// Duplicate completions observed (timeout races; harmless by design).
    pub duplicate_completions: u64,
}

struct WorkflowState {
    workflow: Arc<Workflow>,
    tracker: DependencyTracker,
    submitted_at: f64,
    /// Dense per-job (deadline, attempt) slab for in-flight jobs, indexed
    /// by [`JobId`]; `None` = not in flight.
    inflight: Vec<Option<Inflight>>,
    done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Inflight {
    deadline: f64,
    attempt: u32,
}

/// A candidate timeout deadline in the engine-wide min-heap.
///
/// Entries are never removed eagerly: a Running re-ack, resubmission or
/// completion simply leaves the old entry behind, and it is discarded at
/// pop time when it no longer matches the in-flight slab (lazy
/// invalidation). Ordering is ascending deadline with (workflow, job,
/// attempt) tie-breaks so timeout scans emit in a deterministic order.
#[derive(Debug, Clone, Copy)]
struct DeadlineEntry {
    deadline: f64,
    job: EnsembleJobId,
    attempt: u32,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for DeadlineEntry {}

impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.deadline
            .total_cmp(&other.deadline)
            .then_with(|| self.job.workflow.0.cmp(&other.job.workflow.0))
            .then_with(|| self.job.job.0.cmp(&other.job.job.0))
            .then_with(|| self.attempt.cmp(&other.attempt))
    }
}

/// The DEWE v2 master daemon's DAG-management state machine.
pub struct EnsembleEngine {
    workflows: Vec<WorkflowState>,
    default_timeout_secs: f64,
    stats: EngineStats,
    all_completed_emitted: bool,
    /// Engine-wide min-heap of candidate deadlines, validated lazily
    /// against the in-flight slabs. Pushed only on checkout (Running ack),
    /// so its size is bounded by the number of Running acks since the last
    /// scan, not by total in-flight jobs.
    deadlines: BinaryHeap<Reverse<DeadlineEntry>>,
    /// Reusable buffer for draining tracker ready queues.
    scratch_ready: Vec<JobId>,
}

/// True when `entry` still describes the current checkout of its job: the
/// slab holds the same attempt with the same deadline. Any refresh,
/// resubmission or completion invalidates older heap entries.
fn entry_is_current(workflows: &[WorkflowState], entry: &DeadlineEntry) -> bool {
    workflows
        .get(entry.job.workflow.index())
        .and_then(|w| w.inflight.get(entry.job.job.index()))
        .and_then(|slot| slot.as_ref())
        .is_some_and(|inf| inf.attempt == entry.attempt && inf.deadline == entry.deadline)
}

impl EnsembleEngine {
    /// New engine with the system-wide default job timeout.
    pub fn new() -> Self {
        Self::with_default_timeout(DEFAULT_TIMEOUT_SECS)
    }

    /// New engine with a custom system-wide default timeout.
    pub fn with_default_timeout(default_timeout_secs: f64) -> Self {
        assert!(default_timeout_secs > 0.0);
        Self {
            workflows: Vec::new(),
            default_timeout_secs,
            stats: EngineStats::default(),
            all_completed_emitted: false,
            deadlines: BinaryHeap::new(),
            scratch_ready: Vec::new(),
        }
    }

    /// Submit a workflow at time `now`; emits dispatches for its roots.
    ///
    /// Multiple workflows may be in flight at once — their eligible jobs
    /// share the single dispatch topic, which is how DEWE v2 runs
    /// ensembles in parallel on one cluster.
    pub fn submit_workflow(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
    ) -> (WorkflowId, Vec<Action>) {
        let mut actions = Vec::new();
        let id = self.submit_workflow_into(workflow, now, &mut actions);
        (id, actions)
    }

    /// Allocation-free flavor of [`submit_workflow`](Self::submit_workflow):
    /// actions are appended to a caller-owned buffer.
    pub fn submit_workflow_into(
        &mut self,
        workflow: Arc<Workflow>,
        now: f64,
        actions: &mut Vec<Action>,
    ) -> WorkflowId {
        let id = WorkflowId::from_index(self.workflows.len());
        let tracker = DependencyTracker::new(&workflow);
        let job_count = workflow.job_count();
        let mut state = WorkflowState {
            workflow,
            tracker,
            submitted_at: now,
            inflight: vec![None; job_count],
            done: false,
        };
        let mut ready = std::mem::take(&mut self.scratch_ready);
        state.tracker.drain_ready_into(&mut ready);
        for &job in &ready {
            actions.push(self.dispatch(&mut state, id, job, 1, now));
        }
        ready.clear();
        self.scratch_ready = ready;
        self.stats.workflows_submitted += 1;
        self.all_completed_emitted = false;
        // An empty workflow completes immediately.
        if state.tracker.is_complete() {
            state.done = true;
            self.stats.workflows_completed += 1;
            actions.push(Action::WorkflowCompleted { workflow: id, makespan_secs: 0.0 });
            self.workflows.push(state);
            self.maybe_all_completed(actions);
        } else {
            self.workflows.push(state);
        }
        id
    }

    fn dispatch(
        &mut self,
        state: &mut WorkflowState,
        wf: WorkflowId,
        job: JobId,
        attempt: u32,
        _now: f64,
    ) -> Action {
        // The timeout clock starts when the job is *checked out* (Running
        // ack), not when it is published: a message sitting in the queue is
        // safe — the queue redelivers unacknowledged checkouts (paper
        // §III.B: "if a job has been checked out from the message queue for
        // execution but the corresponding acknowledgment is not received
        // ... within the timeout setting"). Until checkout the deadline is
        // infinite, and the job has no deadline-heap entry.
        state.inflight[job.index()] = Some(Inflight { deadline: f64::INFINITY, attempt });
        self.stats.dispatches += 1;
        Action::Dispatch(DispatchMsg { job: EnsembleJobId::new(wf, job), attempt })
    }

    /// Process a worker acknowledgment at time `now`.
    pub fn on_ack(&mut self, ack: AckMsg, now: f64) -> Vec<Action> {
        let mut actions = Vec::new();
        self.on_ack_into(ack, now, &mut actions);
        actions
    }

    /// Allocation-free flavor of [`on_ack`](Self::on_ack): actions are
    /// appended to a caller-owned buffer, and in steady state (no new
    /// frontier growth) processing an ack performs no heap allocation.
    pub fn on_ack_into(&mut self, ack: AckMsg, now: f64, actions: &mut Vec<Action>) {
        let wf = ack.job.workflow;
        let job = ack.job.job;
        if wf.index() >= self.workflows.len() {
            debug_assert!(false, "ack for unknown workflow {wf:?}");
            return;
        }
        match ack.kind {
            AckKind::Running => {
                // Checkout: the timeout clock starts now (the job may have
                // sat in the queue arbitrarily long beforehand).
                let state = &mut self.workflows[wf.index()];
                let timeout = state.workflow.job(job).effective_timeout(self.default_timeout_secs);
                if let Some(inf) = state.inflight[job.index()].as_mut() {
                    if inf.attempt == ack.attempt {
                        let deadline = now + timeout;
                        inf.deadline = deadline;
                        // Any earlier entry for this job is now stale and
                        // will be discarded lazily at pop time.
                        self.deadlines.push(Reverse(DeadlineEntry {
                            deadline,
                            job: ack.job,
                            attempt: ack.attempt,
                        }));
                    }
                }
                state.tracker.mark_running(job);
            }
            AckKind::Completed => {
                let state = &mut self.workflows[wf.index()];
                if state.tracker.state(job) == dewe_dag::JobState::Completed {
                    // Timeout race: two workers ran the job; results are
                    // identical by workflow determinism (the paper verifies
                    // output checksums), so drop the duplicate.
                    self.stats.duplicate_completions += 1;
                    return;
                }
                state.inflight[job.index()] = None;
                // Split borrow: the tracker mutates while reading the DAG.
                let WorkflowState { workflow, tracker, .. } = state;
                tracker.complete(workflow, job);
                self.stats.jobs_completed += 1;
                // Drain the ready queue (rather than a returned list) so
                // the tracker's queue never accumulates stale entries.
                let mut newly = std::mem::take(&mut self.scratch_ready);
                self.workflows[wf.index()].tracker.drain_ready_into(&mut newly);
                for &next in &newly {
                    actions.push(self.dispatch_indexed(wf, next, 1, now));
                }
                newly.clear();
                self.scratch_ready = newly;
                let state = &mut self.workflows[wf.index()];
                if state.tracker.is_complete() && !state.done {
                    state.done = true;
                    self.stats.workflows_completed += 1;
                    let makespan = now - state.submitted_at;
                    actions
                        .push(Action::WorkflowCompleted { workflow: wf, makespan_secs: makespan });
                    self.maybe_all_completed(actions);
                }
            }
            AckKind::Failed => {
                // Immediate resubmission (no need to wait for the timeout).
                let state = &mut self.workflows[wf.index()];
                if state.tracker.state(job) != dewe_dag::JobState::Completed
                    && state.tracker.resubmit(job)
                {
                    state.tracker.clear_ready(); // drop the requeue marker
                    let attempt = ack.attempt + 1;
                    self.stats.resubmissions += 1;
                    let action = self.dispatch_indexed(wf, job, attempt, now);
                    actions.push(action);
                }
            }
        }
    }

    fn dispatch_indexed(&mut self, wf: WorkflowId, job: JobId, attempt: u32, _now: f64) -> Action {
        let state = &mut self.workflows[wf.index()];
        state.inflight[job.index()] = Some(Inflight { deadline: f64::INFINITY, attempt });
        self.stats.dispatches += 1;
        Action::Dispatch(DispatchMsg { job: EnsembleJobId::new(wf, job), attempt })
    }

    /// Periodic timeout scan (paper §III.B): any in-flight job whose
    /// deadline passed is republished so another worker can run it.
    pub fn check_timeouts(&mut self, now: f64) -> Vec<Action> {
        let mut actions = Vec::new();
        self.check_timeouts_into(now, &mut actions);
        actions
    }

    /// Allocation-free flavor of [`check_timeouts`](Self::check_timeouts).
    ///
    /// Pops the deadline heap only while the top entry has expired, so a
    /// scan costs O(expired · log heap) — it never visits jobs whose
    /// deadlines lie in the future, no matter how many are in flight.
    pub fn check_timeouts_into(&mut self, now: f64, actions: &mut Vec<Action>) {
        while let Some(&Reverse(top)) = self.deadlines.peek() {
            if top.deadline > now {
                break;
            }
            self.deadlines.pop();
            if !entry_is_current(&self.workflows, &top) {
                continue; // superseded checkout, resubmission or completion
            }
            let wf = top.job.workflow;
            let job = top.job.job;
            let state = &mut self.workflows[wf.index()];
            if state.tracker.resubmit(job) {
                state.tracker.clear_ready(); // drop the requeue marker
                self.stats.resubmissions += 1;
                let action = self.dispatch_indexed(wf, job, top.attempt + 1, now);
                actions.push(action);
            } else {
                state.inflight[job.index()] = None;
            }
        }
    }

    /// Earliest pending timeout deadline among checked-out jobs, if any
    /// (lets drivers sleep precisely instead of polling). Amortized O(1):
    /// stale heap entries are pruned as they surface.
    pub fn next_deadline(&mut self) -> Option<f64> {
        while let Some(&Reverse(top)) = self.deadlines.peek() {
            if entry_is_current(&self.workflows, &top) {
                return Some(top.deadline);
            }
            self.deadlines.pop();
        }
        None
    }

    /// True once every submitted workflow has completed.
    pub fn all_complete(&self) -> bool {
        !self.workflows.is_empty() && self.workflows.iter().all(|w| w.done)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Access a submitted workflow.
    pub fn workflow(&self, id: WorkflowId) -> &Arc<Workflow> {
        &self.workflows[id.index()].workflow
    }

    /// Number of submitted workflows.
    pub fn workflow_count(&self) -> usize {
        self.workflows.len()
    }

    fn maybe_all_completed(&mut self, actions: &mut Vec<Action>) {
        if self.all_complete() && !self.all_completed_emitted {
            self.all_completed_emitted = true;
            actions.push(Action::AllCompleted);
        }
    }
}

impl Default for EnsembleEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    fn chain(n: usize) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let j = b.job(format!("j{i}"), "t", 1.0).build();
            if let Some(p) = prev {
                b.edge(p, j);
            }
            prev = Some(j);
        }
        Arc::new(b.finish().unwrap())
    }

    fn dispatches(actions: &[Action]) -> Vec<DispatchMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    fn run_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Running, attempt }
    }

    fn done_ack(job: EnsembleJobId, attempt: u32) -> AckMsg {
        AckMsg { job, worker: 0, kind: AckKind::Completed, attempt }
    }

    #[test]
    fn submission_dispatches_roots() {
        let mut e = EnsembleEngine::new();
        let (_, actions) = e.submit_workflow(chain(3), 0.0);
        let d = dispatches(&actions);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].attempt, 1);
    }

    #[test]
    fn completion_cascades_and_finishes_workflow() {
        let mut e = EnsembleEngine::new();
        let (wf, actions) = e.submit_workflow(chain(2), 0.0);
        let d0 = dispatches(&actions)[0];
        e.on_ack(run_ack(d0.job, 1), 1.0);
        let actions = e.on_ack(done_ack(d0.job, 1), 2.0);
        let d1 = dispatches(&actions)[0];
        assert_eq!(d1.job.workflow, wf);
        e.on_ack(run_ack(d1.job, 1), 2.5);
        let actions = e.on_ack(done_ack(d1.job, 1), 4.0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::WorkflowCompleted { makespan_secs, .. } if (*makespan_secs - 4.0).abs() < 1e-9
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert!(e.all_complete());
    }

    #[test]
    fn timeout_resubmits_with_higher_attempt() {
        let mut e = EnsembleEngine::with_default_timeout(10.0);
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 1.0); // deadline now 11.0
        assert!(e.check_timeouts(10.9).is_empty());
        let actions = e.check_timeouts(11.0);
        let rd = dispatches(&actions);
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
        assert_eq!(e.stats().resubmissions, 1);
    }

    #[test]
    fn queued_job_never_times_out() {
        // A published-but-unclaimed job sits safely in the queue: the
        // timeout clock only starts at checkout (Running ack). The queue
        // itself redelivers lost checkouts, RabbitMQ-style.
        let mut e = EnsembleEngine::with_default_timeout(5.0);
        let (_, _) = e.submit_workflow(chain(1), 0.0);
        assert!(e.check_timeouts(1e9).is_empty());
        assert_eq!(e.next_deadline(), None);
    }

    #[test]
    fn per_job_timeout_overrides_default() {
        let mut b = WorkflowBuilder::new("t");
        b.job("fast", "t", 1.0).timeout_secs(2.0).build();
        let wf = Arc::new(b.finish().unwrap());
        let mut e = EnsembleEngine::with_default_timeout(1000.0);
        let (_, actions) = e.submit_workflow(wf, 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 0.0);
        assert_eq!(dispatches(&e.check_timeouts(2.0)).len(), 1);
    }

    #[test]
    fn late_completion_after_timeout_is_deduplicated() {
        let mut e = EnsembleEngine::with_default_timeout(5.0);
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 0.5);
        e.check_timeouts(6.0); // resubmitted as attempt 2
                               // Original (slow) worker completes first.
        let actions = e.on_ack(done_ack(d.job, 1), 7.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowCompleted { .. })));
        // Second worker completes too: ignored.
        let actions = e.on_ack(done_ack(d.job, 2), 8.0);
        assert!(actions.is_empty());
        assert_eq!(e.stats().duplicate_completions, 1);
        assert_eq!(e.stats().workflows_completed, 1);
    }

    #[test]
    fn failed_ack_resubmits_immediately() {
        let mut e = EnsembleEngine::new();
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 1.0);
        let actions =
            e.on_ack(AckMsg { job: d.job, worker: 0, kind: AckKind::Failed, attempt: 1 }, 2.0);
        let rd = dispatches(&actions);
        assert_eq!(rd.len(), 1);
        assert_eq!(rd[0].attempt, 2);
    }

    #[test]
    fn running_ack_refreshes_deadline() {
        let mut e = EnsembleEngine::with_default_timeout(10.0);
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        // Job sat in the queue 8 s before a worker picked it up.
        e.on_ack(run_ack(d.job, 1), 8.0);
        // Dispatch-time deadline (10.0) must no longer apply.
        assert!(e.check_timeouts(10.0).is_empty());
        assert_eq!(dispatches(&e.check_timeouts(18.0)).len(), 1);
    }

    #[test]
    fn multiple_workflows_share_the_dispatch_stream() {
        let mut e = EnsembleEngine::new();
        let (w0, a0) = e.submit_workflow(chain(1), 0.0);
        let (w1, a1) = e.submit_workflow(chain(1), 5.0);
        assert_ne!(w0, w1);
        let d0 = dispatches(&a0)[0];
        let d1 = dispatches(&a1)[0];
        e.on_ack(done_ack(d1.job, 1), 6.0);
        assert!(!e.all_complete(), "workflow 0 still running");
        let actions = e.on_ack(done_ack(d0.job, 1), 7.0);
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
        assert_eq!(e.stats().workflows_completed, 2);
    }

    #[test]
    fn empty_workflow_completes_on_submission() {
        let mut e = EnsembleEngine::new();
        let wf = Arc::new(WorkflowBuilder::new("empty").finish().unwrap());
        let (_, actions) = e.submit_workflow(wf, 3.0);
        assert!(actions.iter().any(|a| matches!(a, Action::WorkflowCompleted { .. })));
        assert!(actions.iter().any(|a| matches!(a, Action::AllCompleted)));
    }

    #[test]
    fn next_deadline_tracks_earliest_checked_out_job() {
        let mut e = EnsembleEngine::with_default_timeout(100.0);
        let (_, a0) = e.submit_workflow(chain(1), 0.0);
        assert_eq!(e.next_deadline(), None, "nothing checked out yet");
        e.on_ack(run_ack(dispatches(&a0)[0].job, 1), 10.0);
        assert_eq!(e.next_deadline(), Some(110.0));
        let (_, a1) = e.submit_workflow(chain(1), 50.0);
        e.on_ack(run_ack(dispatches(&a1)[0].job, 1), 50.0);
        assert_eq!(e.next_deadline(), Some(110.0));
    }

    #[test]
    fn failed_ack_after_completion_is_ignored() {
        let mut e = EnsembleEngine::new();
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(done_ack(d.job, 1), 1.0);
        let actions =
            e.on_ack(AckMsg { job: d.job, worker: 9, kind: AckKind::Failed, attempt: 1 }, 2.0);
        assert!(actions.is_empty(), "a late failure of a completed job must not resubmit");
        assert_eq!(e.stats().resubmissions, 0);
    }

    #[test]
    fn stale_attempt_running_ack_does_not_refresh_deadline() {
        let mut e = EnsembleEngine::with_default_timeout(10.0);
        let (_, actions) = e.submit_workflow(chain(1), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 0.0); // deadline 10
        let actions = e.check_timeouts(10.0); // resubmit as attempt 2
        let d2 = dispatches(&actions)[0];
        assert_eq!(d2.attempt, 2);
        // The ORIGINAL worker's late running ack (attempt 1) must not push
        // the attempt-2 deadline.
        e.on_ack(run_ack(d.job, 2), 11.0); // attempt-2 checkout: deadline 21
        e.on_ack(run_ack(d.job, 1), 20.0); // stale: ignored for the clock
        assert!(e.check_timeouts(20.5).is_empty());
        assert_eq!(dispatches(&e.check_timeouts(21.0)).len(), 1);
    }

    #[test]
    fn timeouts_scan_multiple_workflows_independently() {
        let mut e = EnsembleEngine::with_default_timeout(10.0);
        let (_, a0) = e.submit_workflow(chain(1), 0.0);
        let (_, a1) = e.submit_workflow(chain(1), 0.0);
        e.on_ack(run_ack(dispatches(&a0)[0].job, 1), 0.0); // deadline 10
        e.on_ack(run_ack(dispatches(&a1)[0].job, 1), 5.0); // deadline 15
        assert_eq!(dispatches(&e.check_timeouts(10.0)).len(), 1);
        assert_eq!(dispatches(&e.check_timeouts(15.0)).len(), 1);
    }

    #[test]
    fn resubmitted_job_completion_still_releases_children() {
        let mut e = EnsembleEngine::with_default_timeout(5.0);
        let (_, actions) = e.submit_workflow(chain(2), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(run_ack(d.job, 1), 0.0);
        let resub = dispatches(&e.check_timeouts(5.0));
        assert_eq!(resub.len(), 1);
        e.on_ack(run_ack(resub[0].job, 2), 6.0);
        let actions = e.on_ack(done_ack(resub[0].job, 2), 7.0);
        assert_eq!(dispatches(&actions).len(), 1, "child released after retried completion");
    }

    #[test]
    fn stats_count_dispatches_and_completions() {
        let mut e = EnsembleEngine::new();
        let (_, actions) = e.submit_workflow(chain(2), 0.0);
        let d = dispatches(&actions)[0];
        e.on_ack(done_ack(d.job, 1), 1.0);
        let s = e.stats();
        assert_eq!(s.dispatches, 2); // root + released child
        assert_eq!(s.jobs_completed, 1);
        assert_eq!(s.workflows_submitted, 1);
    }
}
