//! Messages carried on the three DEWE v2 topics (paper §III.C), plus
//! their versioned wire encoding for the TCP runtime.
//!
//! In-process the structs below travel through `dewe-mq` topics as-is.
//! Over TCP they are wrapped in [`WireMsg`] and serialized into
//! length-prefixed frames (see `dewe_mq::read_frame`/`write_frame`) as
//! `[PROTOCOL_VERSION, message-type, body…]`. Decoding checks the
//! version byte *first*: a frame from an incompatible peer is rejected
//! as [`WireError::Version`] before any body parsing, so mixed-version
//! fleets fail loud and early instead of misinterpreting bytes.
//!
//! The message structs are `#[non_exhaustive]`: future protocol
//! revisions can add fields without breaking downstream constructors,
//! which use the `new` associated functions.

use dewe_dag::{EnsembleJobId, JobId, Workflow, WorkflowId};
use std::sync::Arc;

/// Wire protocol revision. Bump on any change to frame layouts; peers
/// reject frames whose leading version byte differs from their own.
/// Revision 2 added the coalesced [`WireMsg::DispatchBatch`] frame — a
/// v1 worker cannot parse it, so mixed fleets must fail the handshake,
/// not mid-stream.
pub const PROTOCOL_VERSION: u8 = 2;

/// Workflow submission topic payload.
///
/// In the paper this is "the name of the workflow, as well as the path to
/// the related folder on the shared file system"; in-process we carry the
/// parsed DAG directly (the shared-FS folder equivalent). On the wire the
/// DAG travels as its text format ([`WireMsg::Submit`]) and is parsed
/// back at the master.
#[derive(Clone)]
pub struct SubmissionMsg {
    /// Human-readable workflow name.
    pub name: String,
    /// The parsed workflow DAG.
    pub workflow: Arc<Workflow>,
}

impl std::fmt::Debug for SubmissionMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmissionMsg")
            .field("name", &self.name)
            .field("jobs", &self.workflow.job_count())
            .finish()
    }
}

/// Job dispatching topic payload: "meta data about the job (the location of
/// the binary executable with input and output parameters)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DispatchMsg {
    /// Which job, in which workflow of the ensemble.
    pub job: EnsembleJobId,
    /// Delivery attempt, starting at 1; incremented by timeout
    /// resubmissions (diagnostic only — any attempt's completion counts).
    pub attempt: u32,
}

impl DispatchMsg {
    /// Dispatch of `job`'s delivery `attempt`.
    pub fn new(job: EnsembleJobId, attempt: u32) -> Self {
        Self { job, attempt }
    }
}

/// Acknowledgment kinds (paper §III.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckKind {
    /// The worker checked the job out and started executing it.
    Running,
    /// The job finished successfully.
    Completed,
    /// The job's execution failed on the worker (crash, nonzero exit). The
    /// master treats this as an immediate timeout: resubmit.
    Failed,
}

impl AckKind {
    /// Compact wire code, used by the master's write-ahead journal and
    /// the TCP frame encoding.
    pub fn code(self) -> u8 {
        match self {
            AckKind::Running => 0,
            AckKind::Completed => 1,
            AckKind::Failed => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes (a
    /// corrupt or truncated journal record or frame).
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AckKind::Running),
            1 => Some(AckKind::Completed),
            2 => Some(AckKind::Failed),
            _ => None,
        }
    }
}

/// Worker lifecycle announcement kinds (liveness plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// The worker came up (or back up) and wants a lease.
    Register,
    /// Periodic proof of life; renews the lease.
    Heartbeat,
    /// Graceful shutdown announcement: the worker will finish its current
    /// jobs and exit; the master must stop counting on it for new work.
    Drain,
}

impl LifecycleKind {
    /// Compact wire code, used by the master's write-ahead journal and
    /// the TCP frame encoding.
    pub fn code(self) -> u8 {
        match self {
            LifecycleKind::Register => 0,
            LifecycleKind::Heartbeat => 1,
            LifecycleKind::Drain => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(LifecycleKind::Register),
            1 => Some(LifecycleKind::Heartbeat),
            2 => Some(LifecycleKind::Drain),
            _ => None,
        }
    }
}

/// Worker lifecycle topic payload (worker → master).
///
/// `generation` distinguishes incarnations of the same worker id: a
/// restarted worker registers with a higher generation, and the master
/// treats messages from older generations as coming from a zombie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct LifecycleMsg {
    /// Worker identity (same id space as [`AckMsg::worker`]).
    pub worker: u32,
    /// Incarnation of this worker id, starting at 0.
    pub generation: u32,
    /// What the worker announces.
    pub kind: LifecycleKind,
}

impl LifecycleMsg {
    /// Lifecycle announcement from `worker`'s incarnation `generation`.
    pub fn new(worker: u32, generation: u32, kind: LifecycleKind) -> Self {
        Self { worker, generation, kind }
    }
}

/// Job acknowledgment topic payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AckMsg {
    /// Which job.
    pub job: EnsembleJobId,
    /// Worker identifier (opaque to the master; the master stays
    /// worker-agnostic by design).
    pub worker: u32,
    /// What happened.
    pub kind: AckKind,
    /// Echo of the dispatch attempt.
    pub attempt: u32,
}

impl AckMsg {
    /// Acknowledgment of `job`'s `attempt` from `worker`.
    pub fn new(job: EnsembleJobId, worker: u32, kind: AckKind, attempt: u32) -> Self {
        Self { job, worker, kind, attempt }
    }
}

/// Workflow announcement (master → workers): the accepted workflow's
/// identity and definition, broadcast so networked workers can mirror
/// the registry — their stand-in for the paper's shared file system.
/// The in-process bus drops these (its workers share the registry).
#[derive(Clone)]
pub struct WorkflowAnnounce {
    /// The dense id the master assigned.
    pub id: WorkflowId,
    /// Human-readable workflow name, echoed from the submission.
    pub name: String,
    /// The parsed workflow DAG.
    pub workflow: Arc<Workflow>,
}

impl std::fmt::Debug for WorkflowAnnounce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowAnnounce")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("jobs", &self.workflow.job_count())
            .finish()
    }
}

/// Decode failure for a TCP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame's leading version byte is not [`PROTOCOL_VERSION`]; the
    /// peer speaks a different protocol revision and the connection must
    /// be dropped.
    Version {
        /// The version byte the peer sent.
        got: u8,
    },
    /// The frame ended before its declared contents.
    Truncated,
    /// Unknown message-type byte (within a known version: a corrupt
    /// frame, not a revision skew).
    UnknownType(u8),
    /// A field failed to parse (bad enum code, invalid UTF-8, …).
    BadPayload(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Version { got } => {
                write!(f, "protocol version mismatch: got {got}, want {PROTOCOL_VERSION}")
            }
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::BadPayload(what) => write!(f, "bad payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// Message-type bytes. Client → master types live below 0x80,
// master → client types at or above it; the split is purely for
// readability in packet dumps.
const T_HELLO: u8 = 0x01;
const T_SUBMITTER_HELLO: u8 = 0x02;
const T_ACK: u8 = 0x03;
const T_LIFECYCLE: u8 = 0x04;
const T_SUBMIT: u8 = 0x05;
const T_RETURN: u8 = 0x06;
const T_WORKFLOW: u8 = 0x81;
const T_DISPATCH: u8 = 0x82;
const T_BYE: u8 = 0x83;
const T_DISPATCH_BATCH: u8 = 0x84;

/// Every message the TCP runtime carries, in both directions. DAGs
/// travel as their text format (`dewe_dag::write_workflow`), which the
/// receiving side parses back — the wire analogue of the paper's
/// "path to the related folder on the shared file system".
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireMsg {
    /// Worker handshake: identity, incarnation, optional shard pin, and
    /// the dispatch window (backpressure credit) this worker offers.
    Hello {
        /// Worker identity.
        worker: u32,
        /// Worker incarnation.
        generation: u32,
        /// Shard pin; `None` serves every shard.
        shard: Option<u32>,
        /// Maximum dispatches this connection holds unsettled.
        window: u32,
    },
    /// Submission-client handshake (`dewectl submit`).
    SubmitterHello,
    /// Job acknowledgment (worker → master).
    Ack(AckMsg),
    /// Lifecycle announcement (worker → master).
    Lifecycle(LifecycleMsg),
    /// Workflow submission (submitter → master).
    Submit {
        /// Human-readable workflow name.
        name: String,
        /// The DAG in `dewe-dag` text format.
        dag: String,
    },
    /// A pulled-but-unstarted dispatch handed back by a stopping worker
    /// (worker → master): redeliver it elsewhere, returning the credit.
    Return(DispatchMsg),
    /// Workflow announcement (master → worker): registry mirror entry.
    Workflow {
        /// The dense workflow id.
        id: WorkflowId,
        /// Human-readable workflow name.
        name: String,
        /// The DAG in `dewe-dag` text format.
        dag: String,
    },
    /// Job dispatch (master → worker).
    Dispatch(DispatchMsg),
    /// A run of job dispatches that became eligible in the same master
    /// poll cycle, coalesced into one frame (master → worker). The
    /// worker executes them exactly as if they had arrived as that many
    /// [`WireMsg::Dispatch`] frames in order; the batch spends one
    /// window credit per contained dispatch.
    DispatchBatch(Vec<DispatchMsg>),
    /// The master is done and will close the connection; the worker may
    /// exit instead of reconnecting.
    Bye,
}

impl WireMsg {
    /// Serialize into a frame payload: `[version, type, body…]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(PROTOCOL_VERSION);
        match self {
            WireMsg::Hello { worker, generation, shard, window } => {
                out.push(T_HELLO);
                put_u32(&mut out, *worker);
                put_u32(&mut out, *generation);
                match shard {
                    Some(s) => {
                        out.push(1);
                        put_u32(&mut out, *s);
                    }
                    None => out.push(0),
                }
                put_u32(&mut out, *window);
            }
            WireMsg::SubmitterHello => out.push(T_SUBMITTER_HELLO),
            WireMsg::Ack(ack) => {
                out.push(T_ACK);
                put_u32(&mut out, ack.job.workflow.0);
                put_u32(&mut out, ack.job.job.0);
                put_u32(&mut out, ack.worker);
                out.push(ack.kind.code());
                put_u32(&mut out, ack.attempt);
            }
            WireMsg::Lifecycle(msg) => {
                out.push(T_LIFECYCLE);
                put_u32(&mut out, msg.worker);
                put_u32(&mut out, msg.generation);
                out.push(msg.kind.code());
            }
            WireMsg::Submit { name, dag } => {
                out.push(T_SUBMIT);
                put_str(&mut out, name);
                put_str(&mut out, dag);
            }
            WireMsg::Return(d) => {
                out.push(T_RETURN);
                put_dispatch(&mut out, d);
            }
            WireMsg::Workflow { id, name, dag } => {
                out.push(T_WORKFLOW);
                put_u32(&mut out, id.0);
                put_str(&mut out, name);
                put_str(&mut out, dag);
            }
            WireMsg::Dispatch(d) => {
                out.push(T_DISPATCH);
                put_dispatch(&mut out, d);
            }
            WireMsg::DispatchBatch(batch) => {
                out.push(T_DISPATCH_BATCH);
                out.reserve(4 + batch.len() * 12);
                put_u32(&mut out, u32::try_from(batch.len()).expect("batch exceeds u32 length"));
                for d in batch {
                    put_dispatch(&mut out, d);
                }
            }
            WireMsg::Bye => out.push(T_BYE),
        }
        out
    }

    /// Parse a frame payload. The version byte is checked before
    /// anything else; see [`WireError::Version`].
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: frame, pos: 0 };
        let version = r.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::Version { got: version });
        }
        let ty = r.u8()?;
        let msg = match ty {
            T_HELLO => {
                let worker = r.u32()?;
                let generation = r.u32()?;
                let shard = match r.u8()? {
                    0 => None,
                    1 => Some(r.u32()?),
                    _ => return Err(WireError::BadPayload("shard flag")),
                };
                let window = r.u32()?;
                WireMsg::Hello { worker, generation, shard, window }
            }
            T_SUBMITTER_HELLO => WireMsg::SubmitterHello,
            T_ACK => {
                let workflow = WorkflowId(r.u32()?);
                let job = JobId(r.u32()?);
                let worker = r.u32()?;
                let kind = AckKind::from_code(r.u8()?).ok_or(WireError::BadPayload("ack kind"))?;
                let attempt = r.u32()?;
                WireMsg::Ack(AckMsg::new(EnsembleJobId::new(workflow, job), worker, kind, attempt))
            }
            T_LIFECYCLE => {
                let worker = r.u32()?;
                let generation = r.u32()?;
                let kind = LifecycleKind::from_code(r.u8()?)
                    .ok_or(WireError::BadPayload("lifecycle kind"))?;
                WireMsg::Lifecycle(LifecycleMsg::new(worker, generation, kind))
            }
            T_SUBMIT => {
                let name = r.string()?;
                let dag = r.string()?;
                WireMsg::Submit { name, dag }
            }
            T_RETURN => WireMsg::Return(r.dispatch()?),
            T_WORKFLOW => {
                let id = WorkflowId(r.u32()?);
                let name = r.string()?;
                let dag = r.string()?;
                WireMsg::Workflow { id, name, dag }
            }
            T_DISPATCH => WireMsg::Dispatch(r.dispatch()?),
            T_DISPATCH_BATCH => {
                let count = r.u32()? as usize;
                // Cap the pre-allocation by what the frame could actually
                // hold (12 bytes per dispatch), so a corrupt count fails
                // as Truncated instead of allocating gigabytes.
                let mut batch = Vec::with_capacity(count.min(r.remaining() / 12 + 1));
                for _ in 0..count {
                    batch.push(r.dispatch()?);
                }
                WireMsg::DispatchBatch(batch)
            }
            T_BYE => WireMsg::Bye,
            other => return Err(WireError::UnknownType(other)),
        };
        Ok(msg)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string exceeds u32 length"));
    out.extend_from_slice(s.as_bytes());
}

fn put_dispatch(out: &mut Vec<u8>, d: &DispatchMsg) {
    put_u32(out, d.job.workflow.0);
    put_u32(out, d.job.job.0);
    put_u32(out, d.attempt);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos.checked_add(4).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u32::from_be_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload("utf-8 string"))
    }

    fn dispatch(&mut self) -> Result<DispatchMsg, WireError> {
        let workflow = WorkflowId(self.u32()?);
        let job = JobId(self.u32()?);
        let attempt = self.u32()?;
        Ok(DispatchMsg::new(EnsembleJobId::new(workflow, job), attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;

    #[test]
    fn submission_debug_is_compact() {
        let wf = Arc::new(WorkflowBuilder::new("w").finish().unwrap());
        let m = SubmissionMsg { name: "w".into(), workflow: wf };
        let s = format!("{m:?}");
        assert!(s.contains("jobs: 0"));
    }

    #[test]
    fn dispatch_is_small_and_copyable() {
        // Dispatch messages flood the queue at ensemble scale (1.7M jobs);
        // keep them trivially copyable and small.
        assert!(std::mem::size_of::<DispatchMsg>() <= 16);
        let d = DispatchMsg::new(EnsembleJobId::new(WorkflowId(1), JobId(2)), 1);
        let d2 = d;
        assert_eq!(d, d2);
    }

    #[test]
    fn ack_kinds_are_distinct() {
        assert_ne!(AckKind::Running, AckKind::Completed);
        assert_ne!(AckKind::Completed, AckKind::Failed);
    }

    #[test]
    fn lifecycle_codes_round_trip() {
        for kind in [LifecycleKind::Register, LifecycleKind::Heartbeat, LifecycleKind::Drain] {
            assert_eq!(LifecycleKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(LifecycleKind::from_code(9), None);
    }

    #[test]
    fn wire_messages_round_trip() {
        let job = EnsembleJobId::new(WorkflowId(7), JobId(11));
        let msgs = vec![
            WireMsg::Hello { worker: 3, generation: 2, shard: Some(1), window: 64 },
            WireMsg::Hello { worker: 0, generation: 0, shard: None, window: 1 },
            WireMsg::SubmitterHello,
            WireMsg::Ack(AckMsg::new(job, 3, AckKind::Completed, 2)),
            WireMsg::Lifecycle(LifecycleMsg::new(3, 2, LifecycleKind::Heartbeat)),
            WireMsg::Submit { name: "montage".into(), dag: "# dag text".into() },
            WireMsg::Return(DispatchMsg::new(job, 4)),
            WireMsg::Workflow { id: WorkflowId(9), name: "m".into(), dag: "# dag".into() },
            WireMsg::Dispatch(DispatchMsg::new(job, 1)),
            WireMsg::DispatchBatch(vec![
                DispatchMsg::new(job, 1),
                DispatchMsg::new(EnsembleJobId::new(WorkflowId(7), JobId(12)), 3),
            ]),
            WireMsg::DispatchBatch(Vec::new()),
            WireMsg::Bye,
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(bytes[0], PROTOCOL_VERSION, "version byte leads every frame");
            assert_eq!(WireMsg::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_version_frames_are_rejected_before_parsing() {
        // The compatibility story: a frame from a future (or corrupt)
        // protocol revision must be refused by the version byte alone,
        // even when the rest of the frame is garbage the body parsers
        // would choke on.
        let mut bytes = WireMsg::Bye.encode();
        bytes[0] = PROTOCOL_VERSION + 1;
        assert_eq!(WireMsg::decode(&bytes), Err(WireError::Version { got: PROTOCOL_VERSION + 1 }));
        let garbage = [0xFFu8, 0xAA, 0xBB];
        assert_eq!(WireMsg::decode(&garbage), Err(WireError::Version { got: 0xFF }));
        // An empty frame is truncated, not a version skew.
        assert_eq!(WireMsg::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn corrupt_frames_fail_loud_within_a_known_version() {
        // Unknown type byte.
        assert_eq!(WireMsg::decode(&[PROTOCOL_VERSION, 0x7F]), Err(WireError::UnknownType(0x7F)));
        // Truncated body.
        let bytes =
            WireMsg::Dispatch(DispatchMsg::new(EnsembleJobId::new(WorkflowId(1), JobId(2)), 1))
                .encode();
        assert_eq!(WireMsg::decode(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
        // Bad enum code.
        let mut ack = WireMsg::Ack(AckMsg::new(
            EnsembleJobId::new(WorkflowId(0), JobId(0)),
            0,
            AckKind::Running,
            1,
        ))
        .encode();
        let kind_at = ack.len() - 5; // kind byte sits before the trailing attempt u32
        ack[kind_at] = 9;
        assert_eq!(WireMsg::decode(&ack), Err(WireError::BadPayload("ack kind")));
    }

    #[test]
    fn dispatch_batch_with_corrupt_count_fails_without_allocating() {
        // A frame claiming u32::MAX dispatches but carrying two must be
        // rejected as Truncated — and must not pre-allocate for the lie.
        let job = EnsembleJobId::new(WorkflowId(1), JobId(2));
        let mut bytes =
            WireMsg::DispatchBatch(vec![DispatchMsg::new(job, 1), DispatchMsg::new(job, 2)])
                .encode();
        bytes[2..6].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(WireMsg::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn workflow_announce_debug_is_compact() {
        let wf = Arc::new(WorkflowBuilder::new("w").finish().unwrap());
        let a = WorkflowAnnounce { id: WorkflowId(3), name: "w".into(), workflow: wf };
        let s = format!("{a:?}");
        assert!(s.contains("jobs: 0"), "{s}");
    }
}
