//! Messages carried on the three DEWE v2 topics (paper §III.C).

use dewe_dag::{EnsembleJobId, Workflow};
use std::sync::Arc;

/// Workflow submission topic payload.
///
/// In the paper this is "the name of the workflow, as well as the path to
/// the related folder on the shared file system"; in-process we carry the
/// parsed DAG directly (the shared-FS folder equivalent).
#[derive(Clone)]
pub struct SubmissionMsg {
    /// Human-readable workflow name.
    pub name: String,
    /// The parsed workflow DAG.
    pub workflow: Arc<Workflow>,
}

impl std::fmt::Debug for SubmissionMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmissionMsg")
            .field("name", &self.name)
            .field("jobs", &self.workflow.job_count())
            .finish()
    }
}

/// Job dispatching topic payload: "meta data about the job (the location of
/// the binary executable with input and output parameters)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchMsg {
    /// Which job, in which workflow of the ensemble.
    pub job: EnsembleJobId,
    /// Delivery attempt, starting at 1; incremented by timeout
    /// resubmissions (diagnostic only — any attempt's completion counts).
    pub attempt: u32,
}

/// Acknowledgment kinds (paper §III.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckKind {
    /// The worker checked the job out and started executing it.
    Running,
    /// The job finished successfully.
    Completed,
    /// The job's execution failed on the worker (crash, nonzero exit). The
    /// master treats this as an immediate timeout: resubmit.
    Failed,
}

impl AckKind {
    /// Compact wire code, used by the master's write-ahead journal.
    pub fn code(self) -> u8 {
        match self {
            AckKind::Running => 0,
            AckKind::Completed => 1,
            AckKind::Failed => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes (a
    /// corrupt or truncated journal record).
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AckKind::Running),
            1 => Some(AckKind::Completed),
            2 => Some(AckKind::Failed),
            _ => None,
        }
    }
}

/// Worker lifecycle announcement kinds (liveness plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// The worker came up (or back up) and wants a lease.
    Register,
    /// Periodic proof of life; renews the lease.
    Heartbeat,
    /// Graceful shutdown announcement: the worker will finish its current
    /// jobs and exit; the master must stop counting on it for new work.
    Drain,
}

impl LifecycleKind {
    /// Compact wire code, used by the master's write-ahead journal.
    pub fn code(self) -> u8 {
        match self {
            LifecycleKind::Register => 0,
            LifecycleKind::Heartbeat => 1,
            LifecycleKind::Drain => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(LifecycleKind::Register),
            1 => Some(LifecycleKind::Heartbeat),
            2 => Some(LifecycleKind::Drain),
            _ => None,
        }
    }
}

/// Worker lifecycle topic payload (worker → master).
///
/// `generation` distinguishes incarnations of the same worker id: a
/// restarted worker registers with a higher generation, and the master
/// treats messages from older generations as coming from a zombie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleMsg {
    /// Worker identity (same id space as [`AckMsg::worker`]).
    pub worker: u32,
    /// Incarnation of this worker id, starting at 0.
    pub generation: u32,
    /// What the worker announces.
    pub kind: LifecycleKind,
}

/// Job acknowledgment topic payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckMsg {
    /// Which job.
    pub job: EnsembleJobId,
    /// Worker identifier (opaque to the master; the master stays
    /// worker-agnostic by design).
    pub worker: u32,
    /// What happened.
    pub kind: AckKind,
    /// Echo of the dispatch attempt.
    pub attempt: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{JobId, WorkflowBuilder, WorkflowId};

    #[test]
    fn submission_debug_is_compact() {
        let wf = Arc::new(WorkflowBuilder::new("w").finish().unwrap());
        let m = SubmissionMsg { name: "w".into(), workflow: wf };
        let s = format!("{m:?}");
        assert!(s.contains("jobs: 0"));
    }

    #[test]
    fn dispatch_is_small_and_copyable() {
        // Dispatch messages flood the queue at ensemble scale (1.7M jobs);
        // keep them trivially copyable and small.
        assert!(std::mem::size_of::<DispatchMsg>() <= 16);
        let d = DispatchMsg { job: EnsembleJobId::new(WorkflowId(1), JobId(2)), attempt: 1 };
        let d2 = d;
        assert_eq!(d, d2);
    }

    #[test]
    fn ack_kinds_are_distinct() {
        assert_ne!(AckKind::Running, AckKind::Completed);
        assert_ne!(AckKind::Completed, AckKind::Failed);
    }

    #[test]
    fn lifecycle_codes_round_trip() {
        for kind in [LifecycleKind::Register, LifecycleKind::Heartbeat, LifecycleKind::Drain] {
            assert_eq!(LifecycleKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(LifecycleKind::from_code(9), None);
    }
}
