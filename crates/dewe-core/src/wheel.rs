//! Hierarchical flat-array deadline wheel: the [`TimerBackend::Wheel`]
//! implementation behind the engine's timeout scans and deferred-retry
//! firing.
//!
//! The engine's deadline structure is append-heavy and lazily validated:
//! every checkout, deferral and (with a checkout timeout) dispatch pushes
//! an entry, and entries are only examined once their deadline region is
//! reached — most are stale by then and discarded against the in-flight
//! slab. A binary heap pays `O(log n)` per push for a total order the
//! engine never needs between scans. The wheel replaces it with `O(1)`
//! placement into fixed slot arrays and recovers exact ordering only for
//! the (few) entries that actually expire in a scan.
//!
//! ## Layout and cascade math
//!
//! Deadlines quantize to ticks of 1/1024 s. The wheel has [`LEVELS`]
//! levels of [`SLOTS`] slots; level `l` buckets ticks by bit group
//! `[6l, 6l+6)`, so a slot at level 0 spans one tick and each level is
//! 64× coarser than the one below. An entry is filed at the *highest*
//! 6-bit group where its tick differs from the wheel's current tick —
//! level 0 holds the current 64-tick window, level 1 the rest of the
//! current 4096-tick block, and so on (`11 × 6 = 66` bits covers the full
//! tick range, so no overflow list is needed). This assignment yields the
//! two invariants everything below relies on: within a level, occupied
//! slot indices increase with tick, and every tick at level `l` is
//! strictly greater than every tick at level `l-1`.
//!
//! Advancing to a scan's target tick drains, per level, the slots whose
//! range was crossed — a contiguous bit run of the occupancy bitmap.
//! Drained entries either expired (returned to the caller) or belong to a
//! finer window of the new current tick and **cascade**: they are
//! re-filed coarse-to-fine relative to the new position. Each entry can
//! cascade at most once per level, so total re-filing work is `O(LEVELS)`
//! per entry over its lifetime.
//!
//! ## Exactness
//!
//! Quantization never affects observable behavior: entries keep their
//! exact `f64` deadline, expiry is decided by comparing that deadline to
//! `now`, and the engine sorts each scan's expired batch by the same
//! `(deadline, workflow, job, attempt, deferred)` order the heap pops in
//! — so heap and wheel produce identical action streams.

use crate::engine::DeadlineEntry;

/// log2 of the slots per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Low-bits mask selecting a slot index.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Levels. `11 × 6 = 66` bits ≥ the full 64-bit tick range, so every
/// deadline files somewhere and there is no overflow case.
const LEVELS: usize = 11;
/// Tick resolution: 1/1024 s. Powers of two keep the seconds→tick
/// conversion exact for the integral deadlines tests use.
const TICKS_PER_SEC: f64 = 1024.0;

/// Quantize a deadline to a tick. Saturating and monotone: `as u64`
/// clamps negatives to 0 and overflow to `u64::MAX`, and `a <= b` implies
/// `tick_of(a) <= tick_of(b)` — the property that makes per-slot minima
/// globally ordered.
#[inline]
fn tick_of(deadline: f64) -> u64 {
    (deadline * TICKS_PER_SEC) as u64
}

/// Level an entry with tick `tick` files at, relative to `current`: the
/// highest 6-bit group where the two differ (0 when equal).
#[inline]
fn level_for(tick: u64, current: u64) -> usize {
    let diff = tick ^ current;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / BITS) as usize
    }
}

/// The flat-array hierarchical deadline wheel. Same lazy-currency
/// contract as the heap: entries are immutable once pushed, never removed
/// eagerly, and validated against the in-flight slab only when they
/// surface (scan expiry or a `next_deadline` prune).
pub(crate) struct DeadlineWheel {
    /// `LEVELS × SLOTS` buckets, flat: slot `s` of level `l` is
    /// `slots[l * SLOTS + s]`.
    slots: Vec<Vec<DeadlineEntry>>,
    /// Per-slot minimum-deadline entry over everything currently filed
    /// in the slot (stale entries included — it is a lower bound on the
    /// *current* minimum, achieved by some filed entry). Maintained O(1)
    /// on placement; meaningful only while the slot's occupancy bit is
    /// set. Lets `next_deadline` re-derive the global minimum without
    /// rescanning the bucket unless the min entry itself went stale.
    mins: Vec<DeadlineEntry>,
    /// Per-level occupancy bitmap (bit `s` ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Tick of the last advance; all filing is relative to it.
    current: u64,
    /// Entries currently filed.
    len: usize,
    /// Entries re-filed coarse-to-fine during advances (observability).
    cascades: u64,
    /// A known-minimal entry: no entry in the wheel has a smaller
    /// deadline. Lets `next_deadline` answer in O(1) until the cached
    /// entry goes stale in the slab or expires, at which point the
    /// minimum is unknown (`None`) and the next query re-derives it from
    /// the first occupied slot. `None` means *unknown*, not *empty* —
    /// only a full slot scan may establish a value; a push may only
    /// tighten an existing one (a pushed entry says nothing about what
    /// is already filed).
    cached_min: Option<DeadlineEntry>,
    /// Reusable scratch for advance-time spills.
    spill: Vec<DeadlineEntry>,
}

impl Default for DeadlineWheel {
    fn default() -> Self {
        let placeholder = DeadlineEntry {
            deadline: f64::INFINITY,
            job: dewe_dag::EnsembleJobId::new(
                dewe_dag::WorkflowId::from_index(0),
                dewe_dag::JobId::from_index(0),
            ),
            attempt: 0,
            deferred: false,
        };
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            mins: vec![placeholder; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            current: 0,
            len: 0,
            cascades: 0,
            cached_min: None,
            spill: Vec::new(),
        }
    }
}

impl DeadlineWheel {
    /// File an entry. O(1): one xor/leading-zeros to pick the level, one
    /// push into its slot. Deadlines already in the past file into the
    /// current slot and surface on the next scan.
    pub(crate) fn push(&mut self, entry: DeadlineEntry) {
        if self.cached_min.is_some_and(|m| entry.deadline < m.deadline) {
            self.cached_min = Some(entry);
        }
        let tick = tick_of(entry.deadline).max(self.current);
        self.place(tick, entry);
        self.len += 1;
    }

    #[inline]
    fn place(&mut self, tick: u64, entry: DeadlineEntry) {
        let level = level_for(tick, self.current);
        let slot = ((tick >> (BITS * level as u32)) & SLOT_MASK) as usize;
        let idx = level * SLOTS + slot;
        if self.occupied[level] & (1 << slot) == 0 || entry.deadline < self.mins[idx].deadline {
            self.mins[idx] = entry;
        }
        self.occupied[level] |= 1 << slot;
        self.slots[idx].push(entry);
    }

    /// Entries currently filed (current and stale alike).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Entries re-filed coarse-to-fine by advances so far.
    pub(crate) fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Advance to `now`, appending every entry with `deadline <= now` to
    /// `out` in slot order (the caller sorts; see the module docs).
    /// Entries in crossed slots that have not expired cascade to their
    /// new level relative to the new current tick.
    pub(crate) fn drain_expired(&mut self, now: f64, out: &mut Vec<DeadlineEntry>) {
        let target = tick_of(now).max(self.current);
        if self.len == 0 {
            self.current = target;
            return;
        }
        let mut spill = std::mem::take(&mut self.spill);
        for level in 0..LEVELS {
            let shift = BITS * level as u32;
            let first = self.current >> shift;
            let last = target >> shift;
            // No boundary crossed at this level: levels above are coarser
            // and crossed none either. (Level 0's own slot must still be
            // examined — re-filed entries from an earlier partial drain
            // can share the current tick.)
            if level > 0 && first == last {
                break;
            }
            if self.occupied[level] == 0 {
                continue;
            }
            // Crossed slots form one contiguous index run inside the
            // level's active 64-slot block.
            let lo = (first & SLOT_MASK) as u32;
            let hi = if last >= (first | SLOT_MASK) { 63 } else { (last & SLOT_MASK) as u32 };
            let mask = (u64::MAX << lo) & (u64::MAX >> (63 - hi));
            let mut bits = self.occupied[level] & mask;
            self.occupied[level] &= !mask;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                spill.append(&mut self.slots[level * SLOTS + slot]);
            }
        }
        self.current = target;
        for e in spill.drain(..) {
            if e.deadline <= now {
                self.len -= 1;
                out.push(e);
            } else {
                self.cascades += 1;
                self.place(tick_of(e.deadline).max(self.current), e);
            }
        }
        self.spill = spill;
        if self.cached_min.is_some_and(|m| m.deadline <= now) {
            self.cached_min = None;
        }
    }

    /// Earliest deadline among entries `keep` says are still current, or
    /// `None`. O(1) while the cached minimum stays current; otherwise
    /// prunes stale entries from the lowest-tick occupied slots until a
    /// current one surfaces (each stale entry is dropped exactly once, so
    /// the prune amortizes like the heap's lazy pop).
    pub(crate) fn next_deadline(
        &mut self,
        mut keep: impl FnMut(&DeadlineEntry) -> bool,
    ) -> Option<f64> {
        if let Some(m) = &self.cached_min {
            if keep(m) {
                return Some(m.deadline);
            }
        }
        self.cached_min = None;
        for level in 0..LEVELS {
            while self.occupied[level] != 0 {
                // Lowest occupied index = lowest tick: slot indices
                // increase with tick within a level, and every tick at
                // this level is below every tick at coarser levels.
                let slot = self.occupied[level].trailing_zeros() as usize;
                let idx = level * SLOTS + slot;
                // Fast path: the slot's tracked minimum is a lower bound
                // over the whole bucket achieved by a filed entry — if
                // that entry is still current it IS the minimum, and the
                // bucket need not be touched at all.
                let min = self.mins[idx];
                if keep(&min) {
                    self.cached_min = Some(min);
                    return Some(min.deadline);
                }
                // The min entry went stale: prune the bucket once and
                // recompute its minimum from the survivors.
                let bucket = &mut self.slots[idx];
                let before = bucket.len();
                bucket.retain(|e| keep(e));
                self.len -= before - bucket.len();
                if bucket.is_empty() {
                    self.occupied[level] &= !(1 << slot);
                    continue;
                }
                let min = *bucket
                    .iter()
                    .min_by(|a, b| a.deadline.total_cmp(&b.deadline))
                    .expect("bucket is non-empty");
                self.mins[idx] = min;
                self.cached_min = Some(min);
                return Some(min.deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::{EnsembleJobId, JobId, WorkflowId};

    fn entry(deadline: f64, job: usize, attempt: u32) -> DeadlineEntry {
        DeadlineEntry {
            deadline,
            job: EnsembleJobId::new(WorkflowId::from_index(0), JobId::from_index(job)),
            attempt,
            deferred: false,
        }
    }

    fn drain_sorted(w: &mut DeadlineWheel, now: f64) -> Vec<DeadlineEntry> {
        let mut out = Vec::new();
        w.drain_expired(now, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn tick_of_is_monotone_and_saturating() {
        assert_eq!(tick_of(-1.0), 0);
        assert_eq!(tick_of(0.0), 0);
        assert_eq!(tick_of(1.0), 1024);
        assert!(tick_of(1e30) == u64::MAX);
        let mut prev = 0;
        for i in 0..10_000 {
            let t = tick_of(f64::from(i) * 0.37);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn level_assignment_matches_cascade_math() {
        // Same tick → level 0; differing within the 64-window → level 0;
        // next block → level 1; and each level is 64× coarser.
        assert_eq!(level_for(5, 5), 0);
        assert_eq!(level_for(63, 0), 0);
        assert_eq!(level_for(64, 0), 1);
        assert_eq!(level_for(64 * 64 - 1, 0), 1);
        assert_eq!(level_for(64 * 64, 0), 2);
        assert_eq!(level_for(u64::MAX, 0), LEVELS - 1);
    }

    #[test]
    fn expires_in_deadline_order_across_levels() {
        let mut w = DeadlineWheel::default();
        // Deadlines spanning level 0 (ms apart), level 1+ (minutes), and
        // a far-future one that must not surface.
        let deadlines = [0.001, 0.05, 1.0, 90.0, 4000.0, 1e6];
        for (i, &d) in deadlines.iter().enumerate() {
            w.push(entry(d, i, 1));
        }
        let fired = drain_sorted(&mut w, 5000.0);
        let got: Vec<f64> = fired.iter().map(|e| e.deadline).collect();
        assert_eq!(got, vec![0.001, 0.05, 1.0, 90.0, 4000.0]);
        assert_eq!(w.len(), 1, "the far-future entry stays filed");
        assert!(drain_sorted(&mut w, 5000.0).is_empty(), "no double fire");
        let late = drain_sorted(&mut w, 2e6);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].deadline, 1e6);
    }

    #[test]
    fn incremental_advance_fires_exactly_once_each() {
        let mut w = DeadlineWheel::default();
        for i in 0..500 {
            w.push(entry(f64::from(i) * 0.73, i as usize, 1));
        }
        let mut seen = Vec::new();
        let mut now = 0.0;
        while now < 400.0 {
            seen.extend(drain_sorted(&mut w, now));
            now += 3.1;
        }
        assert_eq!(seen.len(), 500);
        // Firing respected deadline order across scan boundaries.
        for pair in seen.windows(2) {
            assert!(pair[0].deadline <= pair[1].deadline);
        }
        assert!(w.cascades() > 0, "far entries must have cascaded down");
    }

    #[test]
    fn same_tick_entries_all_fire_together() {
        let mut w = DeadlineWheel::default();
        for i in 0..64 {
            w.push(entry(10.0, i, 1));
        }
        assert_eq!(drain_sorted(&mut w, 9.999).len(), 0);
        assert_eq!(drain_sorted(&mut w, 10.0).len(), 64);
    }

    #[test]
    fn quantization_boundary_respects_exact_deadlines() {
        // Two deadlines in the same 1/1024 s tick: only the one at or
        // before `now` fires; the other re-files and fires later.
        let base = 7.0;
        let eps = 1.0 / 4096.0; // quarter tick
        let mut w = DeadlineWheel::default();
        w.push(entry(base, 0, 1));
        w.push(entry(base + eps, 1, 1));
        let first = drain_sorted(&mut w, base);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].deadline, base);
        let second = drain_sorted(&mut w, base + eps);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].deadline, base + eps);
    }

    #[test]
    fn next_deadline_prunes_stale_and_caches_current() {
        let mut w = DeadlineWheel::default();
        w.push(entry(5.0, 0, 1));
        w.push(entry(9.0, 1, 1));
        w.push(entry(700.0, 2, 1));
        // All current: the minimum wins and is served from cache.
        assert_eq!(w.next_deadline(|_| true), Some(5.0));
        assert_eq!(w.next_deadline(|_| true), Some(5.0));
        // Entry 0 goes stale: pruned, next current minimum surfaces.
        assert_eq!(w.next_deadline(|e| e.job.job.index() != 0), Some(9.0));
        assert_eq!(w.len(), 2, "the stale entry was dropped exactly once");
        // Everything stale: empty.
        assert_eq!(w.next_deadline(|_| false), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn push_onto_unknown_min_does_not_shadow_filed_entries() {
        // Regression: after a drain invalidates the cached minimum, a
        // push must not install itself as the known minimum — a smaller
        // entry may still be filed.
        let mut w = DeadlineWheel::default();
        w.push(entry(5.0, 0, 1));
        w.push(entry(9.0, 1, 1));
        assert_eq!(drain_sorted(&mut w, 5.0).len(), 1); // fires 5.0, min now unknown
        w.push(entry(50.0, 2, 1));
        assert_eq!(w.next_deadline(|_| true), Some(9.0));
    }

    #[test]
    fn push_after_advance_files_relative_to_current() {
        let mut w = DeadlineWheel::default();
        w.push(entry(100.0, 0, 1));
        assert_eq!(drain_sorted(&mut w, 150.0).len(), 1);
        // A deadline already in the past files at the current tick and
        // fires on the next scan rather than being lost.
        w.push(entry(120.0, 1, 2));
        let fired = drain_sorted(&mut w, 150.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].attempt, 2);
    }

    #[test]
    fn million_entry_cascade_stress() {
        // 1M+ entries spread over ~17 virtual minutes, drained in coarse
        // steps: every entry fires exactly once, order is non-decreasing,
        // and the far entries provably cascaded through coarse levels.
        let mut w = DeadlineWheel::default();
        let n: usize = 1_048_576;
        for i in 0..n {
            // Deterministic shuffle of deadlines in [0, 1024) s
            // (top 14 bits of a Weyl-style hash, 1/16 s granularity).
            let d = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 50) as f64 / 16.0;
            w.push(entry(d, i, 1));
        }
        assert_eq!(w.len(), n);
        let mut fired = 0usize;
        let mut last = f64::NEG_INFINITY;
        let mut now = 0.0;
        while now < 1100.0 {
            let batch = drain_sorted(&mut w, now);
            for e in &batch {
                assert!(e.deadline >= last || (e.deadline - last).abs() < 1e-12);
                last = last.max(e.deadline);
            }
            fired += batch.len();
            now += 37.0;
        }
        assert_eq!(fired, n);
        assert_eq!(w.len(), 0);
        assert!(w.cascades() > 0);
    }
}
