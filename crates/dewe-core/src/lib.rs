//! # dewe-core
//!
//! **DEWE v2** — the pulling-based workflow ensemble execution system of
//! *Executing Large Scale Scientific Workflow Ensembles in Public Clouds*
//! (ICPP 2015) — reimplemented in Rust.
//!
//! ## Design (paper §III)
//!
//! DEWE v2 has three components wired through a message queue with three
//! topics (workflow submission, job dispatching, job acknowledgment):
//!
//! * the **master daemon** parses workflow DAGs, tracks precedence, and
//!   publishes jobs that are eligible to run to the dispatch topic. It
//!   knows *nothing* about the worker nodes — there is no scheduling at any
//!   stage;
//! * stateless **worker daemons** pull the dispatch topic first-come
//!   first-served, run jobs against a shared file system, and acknowledge
//!   `Running` / `Completed` on the ack topic. A worker stops pulling when
//!   its concurrent job threads equal its CPU count;
//! * the **workflow submission application** publishes workflow metadata to
//!   the submission topic, from any node at any time.
//!
//! A timeout mechanism makes the system robust: a checked-out job whose
//! completion ack does not arrive within its timeout is republished, so any
//! worker may fail at any time (§III.B, §V.A.3).
//!
//! ## Architecture of this crate
//!
//! The protocol logic lives in the sans-IO [`EnsembleEngine`]: events in
//! ([`AckMsg`], timeout scans, submissions), [`Action`]s out (dispatches,
//! completion notices). Two runtimes drive it:
//!
//! * [`realtime`] — actual threads over the [`dewe_mq`] broker with
//!   pluggable [`realtime::JobRunner`]s: a *real* in-process workflow
//!   engine (used by the examples and fault-injection tests);
//! * [`sim`] — the `dewe-simcloud` discrete-event cluster, which reproduces
//!   the paper's 1,000-core EC2 experiments on a laptop.
//!
//! Both runtimes share every line of coordination logic, which is the
//! point: the paper's claims are about coordination, not hardware.
//!
//! Drivers code against the [`EngineCore`] trait, so the single-threaded
//! [`EnsembleEngine`], the partitioned [`ShardedEngine`] (N shards routed
//! by a [`ShardRouter`]) and the thread-parallel
//! [`ParallelShardedEngine`] (one worker thread per shard, batched
//! cross-shard routing) are interchangeable behind shard/thread config
//! knobs.

mod engine;
mod protocol;
mod sharded;
mod wheel;

pub mod fault;
pub mod realtime;
pub mod sim;

pub use engine::{
    Action, EngineConfig, EngineCore, EngineStats, EnsembleEngine, RetryPolicy, TimerBackend,
};
pub use protocol::{
    AckKind, AckMsg, DispatchMsg, LifecycleKind, LifecycleMsg, SubmissionMsg, WireError, WireMsg,
    WorkflowAnnounce, PROTOCOL_VERSION,
};
pub use sharded::parallel::{DispatchSink, ParallelOptions, ParallelShardedEngine};
pub use sharded::{HashRouter, LeastLoadedRouter, ShardLoad, ShardRouter, ShardedEngine};
