//! Property tests for the lease/requeue plane composed with the engine:
//! **requeue idempotence**. After a worker's lease expires and its jobs
//! are requeued and completed elsewhere, no storm of late acks from the
//! dead worker — Running, Completed, Failed, repeated, in any order,
//! even after the worker revives — may double-complete a job, trigger a
//! spurious redispatch, or corrupt the attempt accounting. Duplicate
//! deliveries of the synthetic requeue acks themselves must be fenced by
//! the engine's attempt check (the `InflightLanes` generation), not
//! burned as extra resubmissions.

use std::sync::Arc;

use dewe_core::realtime::LivenessTable;
use dewe_core::{AckKind, AckMsg, Action, DispatchMsg, EngineConfig, LifecycleKind, LifecycleMsg};
use dewe_dag::{Workflow, WorkflowBuilder};
use proptest::prelude::*;

const WORKER_A: u32 = 0;
const WORKER_B: u32 = 1;
const LEASE_SECS: f64 = 1.0;

/// `n` independent jobs — every dispatch is immediate, so worker A can
/// hold the whole ensemble in flight when its lease lapses.
fn independent_jobs(n: usize) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("storm");
    for j in 0..n {
        b.job(format!("j{j}"), "t", 1.0).build();
    }
    Arc::new(b.finish().expect("edge-free DAG is trivially topological"))
}

fn hb(worker: u32) -> LifecycleMsg {
    LifecycleMsg::new(worker, 0, LifecycleKind::Heartbeat)
}

/// Route one ack the way the master does: the liveness fence first, the
/// engine only if admitted.
fn feed(
    table: &mut LivenessTable,
    engine: &mut dewe_core::EnsembleEngine,
    ack: AckMsg,
    now: f64,
    actions: &mut Vec<Action>,
) -> bool {
    let mut transitions = Vec::new();
    if !table.admit_ack(&ack, now, &mut transitions) {
        return false;
    }
    engine.on_ack(ack, now, actions);
    true
}

fn dispatches(actions: &[Action]) -> Vec<DispatchMsg> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Dispatch(d) => Some(*d),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Worker A checks out every job, goes silent past its lease, the
    /// jobs are requeued (with a duplicated requeue delivery) and
    /// completed by worker B — then A unleashes a shuffled late-ack
    /// storm, optionally after reviving. The ensemble must stay
    /// completed exactly once per job with exactly one resubmission per
    /// job, and a final expiry pass over whatever the storm re-asserted
    /// must requeue nothing the engine accepts.
    #[test]
    fn late_ack_storm_never_double_completes(
        n_jobs in 2usize..10,
        storm in prop::collection::vec((any::<usize>(), 0u8..3, 1usize..3), 0..40),
        revive in any::<bool>(),
    ) {
        let n = n_jobs as u64;
        let mut engine = EngineConfig::default().timeout(1000.0).build();
        let mut table = LivenessTable::new(LEASE_SECS);
        let mut actions = Vec::new();
        let (mut tr, mut rq) = (Vec::new(), Vec::new());

        // A registers and checks out the whole ensemble.
        table.on_lifecycle(&hb(WORKER_A), 0.0, &mut tr, &mut rq);
        engine.submit_workflow(independent_jobs(n_jobs), 0.0, &mut actions);
        let first_wave = dispatches(&actions);
        prop_assert_eq!(first_wave.len(), n_jobs);
        actions.clear();
        for d in &first_wave {
            let ack =
                AckMsg::new(d.job, WORKER_A, AckKind::Running, d.attempt);
            prop_assert!(feed(&mut table, &mut engine, ack, 0.1, &mut actions));
        }
        prop_assert_eq!(table.assignment_count(), n_jobs);

        // Lease lapses: every in-flight job is requeued through the
        // retry machinery; a duplicated delivery of each synthetic ack
        // must be fenced as stale, not resubmitted again.
        table.expire_due(2.0, &mut tr, &mut rq);
        prop_assert_eq!(rq.len(), n_jobs);
        prop_assert_eq!(table.stats().workers_expired, 1);
        prop_assert_eq!(table.stats().jobs_requeued_on_expiry, n);
        for entry in &rq {
            prop_assert!(feed(&mut table, &mut engine, entry.as_failed_ack(), 2.0, &mut actions));
            prop_assert!(feed(&mut table, &mut engine, entry.as_failed_ack(), 2.0, &mut actions));
        }
        let second_wave = dispatches(&actions);
        actions.clear();
        prop_assert_eq!(second_wave.len(), n_jobs, "one resubmission per requeued job");
        prop_assert_eq!(engine.stats().resubmissions, n);
        prop_assert_eq!(engine.stats().stale_failures_ignored, n,
            "duplicate requeue deliveries must be fenced");

        // B completes the second attempts.
        table.on_lifecycle(&hb(WORKER_B), 2.1, &mut tr, &mut rq);
        for d in &second_wave {
            let run =
                AckMsg::new(d.job, WORKER_B, AckKind::Running, d.attempt);
            let done = AckMsg::new(run.job, run.worker, AckKind::Completed, run.attempt);
            prop_assert!(feed(&mut table, &mut engine, run, 2.2, &mut actions));
            prop_assert!(feed(&mut table, &mut engine, done, 2.3, &mut actions));
        }
        prop_assert!(engine.all_complete());
        prop_assert_eq!(engine.stats().jobs_completed, n);
        prop_assert_eq!(table.assignment_count(), 0);

        // The late-ack storm from A, all echoing first attempts.
        if revive {
            table.on_lifecycle(&hb(WORKER_A), 3.0, &mut tr, &mut rq);
        }
        let before = engine.stats();
        let fenced_before = table.stats().stale_acks_rejected;
        let mut sent = 0u64;
        for (idx, kind, repeat) in &storm {
            let d = &first_wave[idx % first_wave.len()];
            let kind = match kind {
                0 => AckKind::Running,
                1 => AckKind::Completed,
                _ => AckKind::Failed,
            };
            for _ in 0..*repeat {
                let ack = AckMsg::new(d.job, WORKER_A, kind, d.attempt);
                let admitted = feed(&mut table, &mut engine, ack, 3.1, &mut actions);
                prop_assert_eq!(admitted, revive, "expired workers are fenced; revived flow");
                sent += 1;
            }
        }
        let after = engine.stats();
        prop_assert!(dispatches(&actions).is_empty(), "storm must not redispatch anything");
        prop_assert_eq!(after.jobs_completed, n, "storm double-completed a job");
        prop_assert_eq!(after.resubmissions, n, "storm burned a retry");
        prop_assert_eq!(after.dispatches, before.dispatches);
        if !revive {
            // Fenced at the door: the engine never even saw the storm.
            prop_assert_eq!(after, before);
            prop_assert_eq!(table.stats().stale_acks_rejected, fenced_before + sent);
        }

        // Whatever assignments the storm re-asserted (revived A's late
        // Running acks) die with A's next silence — and the resulting
        // requeues are all stale to the engine: still no extra work.
        table.expire_due(10.0, &mut tr, &mut rq);
        rq.drain(..).for_each(|entry| {
            let mut t = Vec::new();
            if table.admit_ack(&entry.as_failed_ack(), 10.0, &mut t) {
                engine.on_ack(entry.as_failed_ack(), 10.0, &mut actions);
            }
        });
        prop_assert!(dispatches(&actions).is_empty());
        prop_assert_eq!(engine.stats().resubmissions, n);
        prop_assert_eq!(engine.stats().jobs_completed, n);
        prop_assert!(engine.all_complete());
        prop_assert_eq!(table.assignment_count(), 0);
    }
}
