//! Property-based tests for the master's write-ahead journal: arbitrary
//! record sequences round-trip exactly, a crash-torn tail of *any* byte
//! length never poisons the intact prefix, and mid-file corruption is
//! always detected rather than silently skipped. Every property runs
//! under both commit policies — per-record and group commit — since the
//! on-disk format must be identical once buffered lines reach the file.

use std::path::{Path, PathBuf};

use dewe_core::realtime::{read_journal, Journal, JournalCommitPolicy, JournalRecord, WorkerPhase};
use dewe_core::{AckKind, AckMsg};
use dewe_dag::{EnsembleJobId, JobId, WorkflowId};
use proptest::prelude::*;

fn tmp(tag: &str, case: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dewe-journal-prop-{}-{tag}-{case}", std::process::id()));
    p
}

fn ack_kind() -> impl Strategy<Value = AckKind> {
    prop_oneof![Just(AckKind::Running), Just(AckKind::Completed), Just(AckKind::Failed),]
}

fn record() -> impl Strategy<Value = JournalRecord> {
    // Times as positive finite f64: the format stores raw bits, but the
    // equality checks below need `PartialEq` to behave (no NaN).
    let at = 0.0f64..1.0e9;
    prop_oneof![
        (0u32..64, 0u32..8, at.clone()).prop_map(|(workflow, shard, at)| JournalRecord::Submit {
            workflow,
            at,
            shard
        }),
        (0u32..64, 0u32..256, 0u32..16, ack_kind(), 1u32..10, at.clone()).prop_map(
            |(wf, job, worker, kind, attempt, at)| JournalRecord::Ack {
                ack: AckMsg::new(
                    EnsembleJobId::new(WorkflowId(wf), JobId(job)),
                    worker,
                    kind,
                    attempt,
                ),
                at,
            }
        ),
        at.clone().prop_map(|at| JournalRecord::Scan { at }),
        (0u32..16, 0u32..4, 0u8..4, at).prop_map(|(worker, generation, code, at)| {
            JournalRecord::Worker {
                worker,
                generation,
                phase: WorkerPhase::from_code(code).unwrap(),
                at,
            }
        }),
    ]
}

fn commit_policy() -> impl Strategy<Value = JournalCommitPolicy> {
    prop_oneof![
        Just(JournalCommitPolicy::PerRecord),
        (1usize..16).prop_map(|max_records| JournalCommitPolicy::GroupCommit { max_records }),
    ]
}

fn write_all(path: &Path, records: &[JournalRecord], policy: JournalCommitPolicy) {
    // Dropping the journal flushes any group-commit window still
    // buffered, so both policies leave identical bytes on disk.
    let mut j = Journal::create(path).expect("create journal").with_policy(policy);
    for rec in records {
        match *rec {
            JournalRecord::Submit { workflow, at, shard } => {
                j.record_submit(WorkflowId(workflow), shard as usize, at).unwrap()
            }
            JournalRecord::Ack { ref ack, at } => j.record_ack(ack, at).unwrap(),
            JournalRecord::Scan { at } => j.record_scan(at).unwrap(),
            JournalRecord::Worker { worker, generation, phase, at } => {
                j.record_worker(worker, generation, phase, at).unwrap()
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the master journals, recovery reads back verbatim.
    #[test]
    fn records_round_trip(
        records in prop::collection::vec(record(), 0..40),
        policy in commit_policy(),
        case in any::<u64>(),
    ) {
        let path = tmp("roundtrip", case);
        write_all(&path, &records, policy);
        let read = read_journal(&path);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(read.unwrap(), records);
    }

    /// A crash can tear the file at any byte. Reading the remains must
    /// succeed, return every record whose line survived intact, and at
    /// most one extra record parsed out of the torn tail (the format has
    /// no checksum, so a truncated hex time can still parse — what it can
    /// never do is corrupt an *earlier* record).
    #[test]
    fn truncation_at_any_byte_keeps_the_intact_prefix(
        records in prop::collection::vec(record(), 1..30),
        cut_frac in 0.0f64..1.0,
        policy in commit_policy(),
        case in any::<u64>(),
    ) {
        let path = tmp("truncate", case);
        write_all(&path, &records, policy);
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let read = read_journal(&path);
        std::fs::remove_file(&path).ok();

        let read = read.unwrap();
        let intact = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        prop_assert!(read.len() >= intact, "lost an intact record: {} < {intact}", read.len());
        prop_assert!(read.len() <= intact + 1, "phantom records: {} > {intact}+1", read.len());
        prop_assert_eq!(&read[..intact], &records[..intact]);
    }

    /// Torn tails are only forgiven at end-of-file: garbage anywhere
    /// before another record is corruption and must be reported.
    #[test]
    fn garbage_before_valid_records_is_an_error(
        records in prop::collection::vec(record(), 2..20),
        pos_frac in 0.0f64..1.0,
        policy in commit_policy(),
        case in any::<u64>(),
    ) {
        let path = tmp("garbage", case);
        write_all(&path, &records, policy);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        // Insert strictly before the last line so a valid record follows.
        let pos = ((lines.len() - 1) as f64 * pos_frac) as usize;
        lines.insert(pos, "Z not-a-record");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let read = read_journal(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(read.is_err(), "mid-file garbage accepted: {read:?}");
    }

    /// Blank lines are noise, not corruption — even interleaved.
    #[test]
    fn blank_lines_are_ignored(
        records in prop::collection::vec(record(), 1..20),
        pos_frac in 0.0f64..1.0,
        policy in commit_policy(),
        case in any::<u64>(),
    ) {
        let path = tmp("blank", case);
        write_all(&path, &records, policy);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let pos = (lines.len() as f64 * pos_frac) as usize;
        lines.insert(pos, "");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let read = read_journal(&path);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(read.unwrap(), records);
    }
}
